//! The §2 motivation made concrete: which border routers carry probe
//! traffic to what fraction of the Internet, and how much observed
//! connectivity would an outage of the top interconnection points
//! disrupt.
//!
//! ```sh
//! cargo run --release --example resilience
//! ```

use bdrmap::eval::insights::collect_vp_traces;
use bdrmap::eval::report::TextTable;
use bdrmap::eval::resilience::{critical_routers, disruption_share};
use bdrmap::prelude::*;
use bdrmap_topo::TopoConfig;

fn main() {
    let sc = Scenario::build(
        "large access network",
        &TopoConfig::large_access_scaled(30, 0.1),
    );
    println!(
        "scenario: {} ASes, {} routers, {} routed prefixes",
        sc.net().graph.num_ases(),
        sc.net().routers.len(),
        sc.net().origins.len()
    );

    let per_vp = collect_vp_traces(&sc, 3);
    // One west-coast and one east-coast vantage point.
    for (label, coll) in [
        ("west VP", &per_vp[0]),
        ("east VP", &per_vp[per_vp.len() - 1]),
    ] {
        let ranked = critical_routers(&sc, coll);
        println!("\n[{label}] top border routers by share of routed prefixes carried:");
        let mut t = TextTable::new(&["router", "city", "prefixes", "share"]);
        for r in ranked.iter().take(8) {
            t.row(vec![
                r.router.to_string(),
                r.city.clone(),
                r.prefixes.to_string(),
                format!("{:.1}%", r.share * 100.0),
            ]);
        }
        println!("{}", t.render());
        for k in [1, 3, 5] {
            println!(
                "  outage of top-{k} interconnection router(s) touches ≤{:.1}% of observed paths",
                disruption_share(&ranked, k) * 100.0
            );
        }
    }
}
