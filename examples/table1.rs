//! Regenerate Table 1 and the §5.6 validation for the paper's networks.
//!
//! By default the three scenarios run at a reduced scale so the example
//! finishes in well under a minute; pass `--full` for paper-scale
//! networks (652-customer access network, 1644-customer Tier-1 — takes
//! several minutes).
//!
//! ```sh
//! cargo run --release --example table1 [-- --full]
//! ```

use bdrmap::eval::table1::{render, table1};
use bdrmap::eval::validate::{validate, validate_ixp};
use bdrmap::prelude::*;
use bdrmap_topo::{DnsConfig, DnsDb, TopoConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scenarios: Vec<(&str, TopoConfig)> = if full {
        vec![
            ("R&E network", TopoConfig::re_network(1)),
            ("Large access network", TopoConfig::large_access(2)),
            ("Tier-1 network", TopoConfig::tier1(3)),
            ("Small access network", TopoConfig::small_access(4)),
        ]
    } else {
        vec![
            ("R&E network", TopoConfig::re_network(1)),
            (
                "Large access network (scaled)",
                TopoConfig::large_access_scaled(2, 0.12),
            ),
            ("Tier-1 network (scaled)", TopoConfig::tier1_scaled(3, 0.08)),
            ("Small access network", TopoConfig::small_access(4)),
        ]
    };

    for (name, cfg) in scenarios {
        let sc = Scenario::build(name, &cfg);
        let map = sc.run_vp(0, &BdrmapConfig::default());
        let t = table1(&sc, &map);
        println!("{}", render(&t));

        let neighbors = sc.input.view.neighbors_of(sc.net().vp_as);
        let v = validate(sc.net(), &neighbors, &map);
        println!(
            "§5.6 validation: {}/{} links correct ({:.1}%), owner accuracy {:.1}%, BGP coverage {:.1}% (paper: 96.3–98.9% correct, 92.2–96.8% coverage)",
            v.links_correct,
            v.links_total,
            v.link_accuracy() * 100.0,
            v.owner_accuracy() * 100.0,
            v.bgp_coverage() * 100.0
        );
        // The paper's two other validation styles: the public IXP
        // registry (PeeringDB/PCH) and the advisory DNS cross-check.
        let ixp_v = validate_ixp(sc.net(), &map);
        if ixp_v.ixp_links > 0 {
            println!(
                "IXP registry: {}/{} route-server links confirmed ({:.1}%)",
                ixp_v.member_confirmed,
                ixp_v.ixp_links,
                ixp_v.confirmation_rate() * 100.0
            );
        }
        let dns = DnsDb::synthesize(sc.net(), 1, &DnsConfig::default());
        let net = sc.net();
        let check = bdrmap::eval::devcheck::dns_check(&dns, &map, |a| net.as_info(a).name.clone());
        println!(
            "DNS (advisory, §5.1): {}/{} comparable labels agree\n",
            check.agree, check.comparable
        );
    }
}
