//! Ablation study: what each design choice of bdrmap buys.
//!
//! * alias resolution off → the Figure 13 failure mode (split routers);
//! * one address per block → third-party addresses slip through;
//! * no stop sets → probe cost explodes (§5.3);
//! * ground-truth relationships → how much inference noise costs.
//!
//! ```sh
//! cargo run --release --example ablation
//! ```

use bdrmap::eval::ablation::{run_ablations, stress_config};
use bdrmap::eval::report::TextTable;
use bdrmap::prelude::*;

fn main() {
    let sc = Scenario::build("ablation", &stress_config(55, 0.08));
    println!(
        "scenario: {} ASes, {} routers",
        sc.net().graph.num_ases(),
        sc.net().routers.len()
    );
    let results = run_ablations(&sc, 0);

    let mut t = TextTable::new(&[
        "variant",
        "links",
        "accuracy",
        "placement",
        "coverage",
        "routers",
        "links/neighbor",
        "packets",
    ]);
    for r in &results {
        t.row(vec![
            r.name.clone(),
            r.validation.links_total.to_string(),
            format!("{:.1}%", r.validation.link_accuracy() * 100.0),
            format!("{:.1}%", r.validation.placement_accuracy() * 100.0),
            format!("{:.1}%", r.validation.bgp_coverage() * 100.0),
            r.routers.to_string(),
            format!("{:.2}", r.links_per_neighbor),
            r.packets.to_string(),
        ]);
    }
    println!("\n{}", t.render());
}
