//! The application bdrmap was built for (§2): mapping interdomain
//! congestion. "With each of these techniques, the greatest measurement
//! challenge is not detecting the presence of congestion, but
//! identifying interdomain links to probe."
//!
//! This example closes the loop:
//! 1. inject diurnal congestion on a few of the hosting network's
//!    interdomain links (ground truth);
//! 2. run bdrmap to discover the network's borders — without it, we
//!    would not know which (near, far) address pairs to probe;
//! 3. run time-series latency probing (TSLP) on every discovered link;
//! 4. compare the flagged links against the injected ground truth.
//!
//! ```sh
//! cargo run --release --example congestion
//! ```

use bdrmap::eval::report::TextTable;
use bdrmap::prelude::*;
use bdrmap_dataplane::CongestionProfile;
use bdrmap_probe::tslp::tslp;
use bdrmap_topo::TopoConfig;
use bdrmap_types::LinkId;

/// One simulated "day" (compressed for the demo).
const PERIOD_MS: u64 = 3_600_000;
/// Flag links whose far side swings this much more than the near side.
const THRESHOLD_US: u32 = 8_000;

fn main() {
    let sc = Scenario::build("congestion", &TopoConfig::re_network(88));
    let net = sc.net();

    // -------------------------------------------- 1. discover the map
    // The weather map comes first: without bdrmap we would not know
    // which (near, far) pairs identify the network's borders.
    let map = sc.run_vp(0, &BdrmapConfig::default());
    println!(
        "bdrmap discovered {} interdomain links ({} with probeable far addresses)",
        map.links.len(),
        map.links.iter().filter(|l| l.far_addr.is_some()).count()
    );

    // ------------------------------------------------- 2. ground truth
    // Congestion strikes three of the links that actually carry this
    // VP's traffic (in reality too, TSLP can only watch links on the
    // paths the VP uses).
    let mut congested: Vec<LinkId> = Vec::new();
    for l in &map.links {
        if congested.len() == 3 {
            break;
        }
        let Some(far) = l.far_addr else { continue };
        // Ground truth: the physical link behind the observed far
        // address (evaluation-side knowledge only).
        let Some(link_id) = net.iface_of_addr(far).and_then(|i| i.link) else {
            continue;
        };
        if congested.contains(&link_id) {
            continue;
        }
        sc.dp.congest(
            link_id,
            CongestionProfile {
                peak_us: 40_000,
                period_ms: PERIOD_MS,
            },
        );
        congested.push(link_id);
    }
    println!("injected diurnal congestion (40 ms peak) on links: {congested:?}\n");

    // ------------------------------------------------------- 3. TSLP
    let engine = sc.engine(0);
    let mut table = TextTable::new(&["near", "far", "neighbor", "excess (µs)", "verdict", "truth"]);
    let mut tp = 0;
    let mut fp = 0;
    let mut fnn = 0;
    for l in &map.links {
        let (Some(near), Some(far)) = (l.near_addr, l.far_addr) else {
            continue;
        };
        let r = tslp(&engine, near, far, PERIOD_MS, 2, 24);
        if r.far.samples.is_empty() {
            continue; // unresponsive far side: TSLP cannot see this link
        }
        let flagged = r.congested(THRESHOLD_US);
        // Ground truth: is the physical link behind `far` congested?
        let truth = net
            .iface_of_addr(far)
            .and_then(|i| i.link)
            .map(|lid| congested.contains(&lid))
            .unwrap_or(false);
        match (flagged, truth) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fnn += 1,
            _ => {}
        }
        if flagged || truth {
            table.row(vec![
                near.to_string(),
                far.to_string(),
                l.far_as.to_string(),
                r.excess_amplitude_us().to_string(),
                if flagged { "CONGESTED" } else { "clear" }.to_string(),
                if truth { "congested" } else { "clear" }.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "detection: {tp} true positives, {fp} false positives, {fnn} missed \
         (unresponsive far sides cannot be probed — the paper's silent-neighbor caveat)"
    );
    if fp > 0 {
        println!(
            "note: false positives arise when the probe toward one link's far address \
             hot-potatoes across a *different*, genuinely congested link to the same \
             neighbor — a known TSLP confounder the IMC 2014 paper discusses."
        );
    }
}
