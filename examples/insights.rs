//! §6 interconnection insights: Figures 14, 15, and 16 over a large
//! access network with 19 vantage points.
//!
//! ```sh
//! cargo run --release --example insights [-- --full]
//! ```

use bdrmap::eval::insights::{collect_vp_traces, fig14, fig15, fig16, fig16_dns};
use bdrmap::prelude::*;
use bdrmap_topo::{DnsConfig, DnsDb, TopoConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        TopoConfig::large_access(20)
    } else {
        TopoConfig::large_access_scaled(20, 0.1)
    };
    let sc = Scenario::build("large access network", &cfg);
    println!(
        "scenario: {} ASes, {} routers, 19 VPs",
        sc.net().graph.num_ases(),
        sc.net().routers.len()
    );

    let per_vp = collect_vp_traces(&sc, if full { 5 } else { 3 });

    // ---------------------------------------------------------- Fig 14
    let f14 = fig14(&sc, &per_vp);
    println!(
        "\nFigure 14 — per-prefix diversity across 19 VPs ({} prefixes, {} far):",
        f14.all.per_prefix.len(),
        f14.far.per_prefix.len()
    );
    for (label, d) in [("all", &f14.all), ("far", &f14.far)] {
        println!(
            "  [{label}] 1 router: {:.1}% (paper <2%) | 5-15: {:.1}% (paper 73%) | >15: {:.1}% (paper 13%) | same next-hop: {:.1}% (paper 67%)",
            d.frac_routers(|r| r == 1) * 100.0,
            d.frac_routers(|r| (5..=15).contains(&r)) * 100.0,
            d.frac_routers(|r| r > 15) * 100.0,
            d.frac_same_next_hop() * 100.0
        );
    }
    let (routers_cdf, nh_cdf) = f14.far.cdfs();
    println!("  border-router CDF: {:?}", truncate(&routers_cdf));
    println!("  next-hop-AS  CDF: {:?}", truncate(&nh_cdf));

    // ---------------------------------------------------------- Fig 15
    let f15 = fig15(&sc, &per_vp);
    println!("\nFigure 15 — marginal utility of VPs (cumulative links by #VPs):");
    for c in &f15 {
        println!(
            "  {:<24} truth={:<3} {:?}",
            c.name, c.true_links, c.cumulative
        );
    }

    // ---------------------------------------------------------- Fig 16
    // The paper geolocates border routers from reverse DNS; compare the
    // DNS-derived view (70% PTR coverage, default staleness) with the
    // ground-truth one.
    let dns = DnsDb::synthesize(sc.net(), 7, &DnsConfig::default());
    let via_dns = fig16_dns(&sc, &per_vp, &dns);
    let dns_points: usize = via_dns
        .iter()
        .map(|r| r.links.values().map(Vec::len).sum::<usize>())
        .sum();
    let f16 = fig16(&sc, &per_vp);
    let truth_points: usize = f16
        .iter()
        .map(|r| r.links.values().map(Vec::len).sum::<usize>())
        .sum();
    println!(
        "\nFigure 16 — DNS geolocation recovers {dns_points}/{truth_points} link observations \
         (the rest lack usable PTR records, as in the paper)"
    );
    println!("Figure 16 — longitudes of observed interconnections per VP:");
    for row in &f16 {
        print!("  vp{:<2} @ {:>7.1}:", row.vp, row.vp_longitude);
        for (name, lons) in &row.links {
            let s: Vec<String> = lons.iter().map(|l| format!("{l:.0}")).collect();
            print!("  {}=[{}]", name, s.join(","));
        }
        println!();
    }
}

fn truncate(v: &[(usize, f64)]) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = v
        .iter()
        .take(8)
        .map(|&(x, y)| (x, (y * 1000.0).round() / 1000.0))
        .collect();
    if v.len() > 8 {
        out.push(*v.last().unwrap());
    }
    out
}
