//! Quickstart: generate a small Internet, run bdrmap from one vantage
//! point, and print the inferred border map with its ground-truth score.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bdrmap::eval::validate::validate;
use bdrmap::prelude::*;

fn main() {
    // 1. A small synthetic Internet: an R&E-style hosting network with
    //    customers, peers, a provider, an IXP, and a populated core.
    let scenario = Scenario::build("quickstart", &TopoConfig::tiny(2016));
    let net = scenario.net();
    println!(
        "generated: {} ASes, {} routers, {} links, {} routed prefixes",
        net.graph.num_ases(),
        net.routers.len(),
        net.links.len(),
        net.origins.len()
    );

    // 2. Run the full pipeline: targets → traces → alias resolution →
    //    router graph → ownership heuristics → border links.
    let map = scenario.run_vp(0, &BdrmapConfig::default());
    println!(
        "\nbdrmap: {} packets, {:.2} simulated hours at 100 pps",
        map.packets,
        map.elapsed_ms as f64 / 3.6e6
    );

    // 3. The border map.
    println!("\ninferred interdomain links ({}):", map.links.len());
    for (neighbor, links) in map.links_by_neighbor() {
        let tags: Vec<String> = links.iter().map(|l| format!("{:?}", l.heuristic)).collect();
        println!(
            "  {neighbor}: {} link(s) via {}",
            links.len(),
            tags.join(", ")
        );
    }

    // 4. Score against ground truth — possible only because the
    //    generator is the operator.
    let neighbors = scenario.input.view.neighbors_of(net.vp_as);
    let v = validate(net, &neighbors, &map);
    println!(
        "\nvalidation: {}/{} links correct ({:.1}%), BGP coverage {:.1}%, owner accuracy {:.1}%",
        v.links_correct,
        v.links_total,
        v.link_accuracy() * 100.0,
        v.bgp_coverage() * 100.0,
        v.owner_accuracy() * 100.0
    );
}
