//! §5.8: run bdrmap with the probing offloaded to a resource-limited
//! device over the binary wire protocol, and compare the state each
//! side must hold.
//!
//! ```sh
//! cargo run --release --example remote_offload
//! ```

use bdrmap::eval::resources::resources;
use bdrmap::eval::validate::validate;
use bdrmap::prelude::*;
use bdrmap_probe::remote::Controller;
use bdrmap_topo::TopoConfig;
use std::sync::Arc;

fn main() {
    let sc = Scenario::build("remote-offload", &TopoConfig::re_network(77));
    let net = sc.net();
    let vp = net.vps[0].addr;

    // The device holds only a command buffer and a packet pacer; the
    // controller owns the BGP view, targets, stop sets, and traces.
    let (ctl, device, handle) = Controller::spawn_local(Arc::clone(&sc.dp), vp, 100, 256);
    let map = run_bdrmap(
        &ctl,
        &sc.input,
        &BdrmapConfig {
            parallelism: 1,
            ..Default::default()
        },
    );
    ctl.shutdown();
    handle.join().expect("device thread");

    println!(
        "offloaded run: {} links to {} neighbors, {} device packets",
        map.links.len(),
        map.neighbors().len(),
        device.packets()
    );
    let neighbors = sc.input.view.neighbors_of(net.vp_as);
    let v = validate(net, &neighbors, &map);
    println!(
        "validation: {:.1}% links correct, {:.1}% BGP coverage",
        v.link_accuracy() * 100.0,
        v.bgp_coverage() * 100.0
    );

    // Dedicated accounting run (R2).
    let r = resources(&sc, 0);
    println!("\n§5.8 state accounting ({} traces):", r.traces);
    println!("  central bdrmap state: {:>10} bytes", r.central_bytes);
    println!("  device-resident state:{:>10} bytes", r.device_bytes);
    println!(
        "  ratio: {:.0}× (paper: ~150 MB central vs 3.5 MB device ≈ 43×)",
        r.ratio()
    );
}
