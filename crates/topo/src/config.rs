//! Generator configuration and scenario presets.
//!
//! Each preset corresponds to one of the networks the paper validates
//! against (§5.6): a research-and-education network, a large U.S. access
//! network (the §6 interconnection study), a Tier-1, and a small access
//! network. A `tiny` preset keeps unit tests fast.

use crate::model::AsKind;
pub use crate::model::ExportStrategy;
use serde::{Deserialize, Serialize};

/// Mix of probe-response policies assigned to routers.
///
/// Fractions are cumulative-sampled; whatever remains is `Normal`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PolicyMix {
    /// Fraction of neighbor edge routers that firewall transit but answer
    /// TTL-expired (drives the paper's dominant "firewall" heuristic row).
    pub firewall: f64,
    /// Fraction that are completely silent (heuristic 8.1).
    pub silent: f64,
    /// Fraction that send only non-TTL-expired ICMP (heuristic 8.2).
    pub echo_other: f64,
    /// Fraction that rate-limit TTL-expired responses.
    pub rate_limited: f64,
}

impl PolicyMix {
    /// Mix typical of customer edges: most enterprises firewall.
    pub fn customer_edge() -> PolicyMix {
        PolicyMix {
            firewall: 0.58,
            silent: 0.045,
            echo_other: 0.025,
            rate_limited: 0.04,
        }
    }

    /// Mix typical of backbone/peer routers: almost everything responds.
    pub fn backbone() -> PolicyMix {
        PolicyMix {
            firewall: 0.0,
            silent: 0.0,
            echo_other: 0.0,
            rate_limited: 0.03,
        }
    }

    /// Everything responds normally (for focused tests).
    pub fn all_normal() -> PolicyMix {
        PolicyMix {
            firewall: 0.0,
            silent: 0.0,
            echo_other: 0.0,
            rate_limited: 0.0,
        }
    }
}

/// Shape of the rest-of-world AS population.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AsMix {
    /// Tier-1 clique size.
    pub tier1: usize,
    /// Mid-tier transit providers.
    pub transit: usize,
    /// Content networks (each gets an [`ExportStrategy`]).
    pub cdn: usize,
    /// Stub ASes not attached to the measured network.
    pub extra_stubs: usize,
}

/// Full generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopoConfig {
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Business type of the network hosting the VPs.
    pub vp_kind: AsKind,
    /// Number of vantage points to place (paper §6 uses 19).
    pub num_vps: usize,
    /// Customer ASes of the VP network.
    pub vp_customers: usize,
    /// Peer ASes of the VP network (beyond CDNs, which always peer).
    pub vp_peers: usize,
    /// Provider ASes of the VP network (0 for a Tier-1).
    pub vp_providers: usize,
    /// PoPs of the VP network (drawn from the US city catalogue).
    pub vp_pops: usize,
    /// IXPs the VP network participates in.
    pub vp_ixps: usize,
    /// Whether the VP network has a sibling AS (§5.2 "VP ASes").
    pub vp_sibling: bool,
    /// Rest-of-world population.
    pub world: AsMix,
    /// Interconnections with each *major* peer (the paper's Level3-like
    /// peer had 45 router-level links).
    pub major_peer_links: usize,
    /// How many of the VP network's peers are "major" (many links).
    pub major_peers: usize,
    /// Response-policy mix at neighbor customer edges.
    pub customer_policy: PolicyMix,
    /// Response-policy mix in backbones.
    pub backbone_policy: PolicyMix,
    /// Fraction of routers using RFC1812 egress-interface sourcing
    /// (third-party addresses, §4 challenge 2).
    pub third_party_frac: f64,
    /// Fraction of routers with virtual-router response behaviour
    /// (§4 challenge 4).
    pub virtual_router_frac: f64,
    /// Fraction of VP-network customers that number internal routers from
    /// provider-aggregatable space (the Figure 12 limitation).
    pub pa_space_frac: f64,
    /// Fraction of ASes whose infrastructure space is not announced in
    /// BGP (§5.4.3).
    pub unrouted_infra_frac: f64,
    /// Fraction of stub prefixes announced by two ASes (MOAS, §4 item 7).
    pub moas_frac: f64,
    /// Fraction of routers with a shared IPID counter (Ally/MIDAR can
    /// resolve their aliases).
    pub ipid_shared_frac: f64,
    /// Fraction with per-interface counters.
    pub ipid_per_iface_frac: f64,
    /// Fraction with random IPIDs (remainder send constant IDs).
    pub ipid_random_frac: f64,
    /// Fraction of routers answering UDP probes from a canonical source
    /// address (Mercator-resolvable).
    pub mercator_frac: f64,
    /// Fraction answering UDP from the probed address.
    pub mercator_probed_frac: f64,
    /// Average announced prefixes per stub/customer AS.
    pub prefixes_per_stub: f64,
    /// Announced prefixes for each CDN (more prefixes → finer-grained
    /// anchoring, matters for Figures 15/16).
    pub prefixes_per_cdn: usize,
    /// Place one additional VP in each of this many *other* networks
    /// (transits and multi-router customers), enabling the paper's §5.7
    /// "25 other networks" fleet experiment. These VPs do not belong to
    /// the measured network; `Internet::vps` lists them after the main
    /// deployment with their own `host_as`.
    pub extra_vp_hosts: usize,
}

impl TopoConfig {
    /// Tiny Internet for unit tests: a handful of each kind.
    pub fn tiny(seed: u64) -> TopoConfig {
        TopoConfig {
            seed,
            vp_kind: AsKind::ResearchEdu,
            num_vps: 2,
            vp_customers: 6,
            vp_peers: 2,
            vp_providers: 1,
            vp_pops: 3,
            vp_ixps: 1,
            vp_sibling: false,
            world: AsMix {
                tier1: 2,
                transit: 3,
                cdn: 2,
                extra_stubs: 8,
            },
            major_peer_links: 3,
            major_peers: 1,
            customer_policy: PolicyMix::customer_edge(),
            backbone_policy: PolicyMix::backbone(),
            third_party_frac: 0.15,
            virtual_router_frac: 0.05,
            pa_space_frac: 0.0,
            unrouted_infra_frac: 0.15,
            moas_frac: 0.02,
            ipid_shared_frac: 0.55,
            ipid_per_iface_frac: 0.20,
            ipid_random_frac: 0.15,
            mercator_frac: 0.5,
            mercator_probed_frac: 0.3,
            prefixes_per_stub: 1.3,
            prefixes_per_cdn: 8,
            extra_vp_hosts: 0,
        }
    }

    /// The paper's research-and-education network: 17 routers, BGP
    /// sessions with ~48 ASes and 3 IXPs (§5.6).
    pub fn re_network(seed: u64) -> TopoConfig {
        TopoConfig {
            vp_kind: AsKind::ResearchEdu,
            num_vps: 1,
            vp_customers: 30,
            vp_peers: 2,
            vp_providers: 1,
            vp_pops: 4,
            vp_ixps: 3,
            vp_sibling: false,
            world: AsMix {
                tier1: 4,
                transit: 10,
                cdn: 4,
                extra_stubs: 80,
            },
            major_peer_links: 4,
            major_peers: 1,
            prefixes_per_stub: 1.4,
            prefixes_per_cdn: 12,
            ..TopoConfig::tiny(seed)
        }
    }

    /// The paper's large U.S. access network: 652 customers, 26 peers,
    /// 5 providers; 19 VPs; a major peer with 45 interconnections.
    pub fn large_access(seed: u64) -> TopoConfig {
        TopoConfig {
            vp_kind: AsKind::Access,
            num_vps: 19,
            vp_customers: 652,
            vp_peers: 26,
            vp_providers: 5,
            vp_pops: 25,
            vp_ixps: 3,
            vp_sibling: true,
            world: AsMix {
                tier1: 8,
                transit: 30,
                cdn: 5,
                extra_stubs: 900,
            },
            major_peer_links: 45,
            major_peers: 2,
            pa_space_frac: 0.02,
            prefixes_per_stub: 1.5,
            prefixes_per_cdn: 120,
            ..TopoConfig::tiny(seed)
        }
    }

    /// A scaled-down large access network for integration tests: same
    /// shape, an order of magnitude fewer ASes.
    pub fn large_access_scaled(seed: u64, scale: f64) -> TopoConfig {
        let mut c = TopoConfig::large_access(seed);
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(1);
        c.vp_customers = s(c.vp_customers);
        c.vp_peers = s(c.vp_peers).max(4);
        c.vp_providers = s(c.vp_providers).max(2);
        c.world.transit = s(c.world.transit).max(3);
        // Keep enough tier-1s that some collectors sit outside the VP
        // network's peering set — otherwise its provider links are never
        // observed from above and the relationship labels degrade.
        c.world.tier1 = s(c.world.tier1).max(4);
        c.world.extra_stubs = s(c.world.extra_stubs);
        c.major_peer_links = s(c.major_peer_links).max(3);
        c.prefixes_per_cdn = s(c.prefixes_per_cdn).max(4);
        c
    }

    /// The paper's Tier-1 network: 1644 customers, 70 peers, no
    /// providers.
    pub fn tier1(seed: u64) -> TopoConfig {
        TopoConfig {
            vp_kind: AsKind::Tier1,
            num_vps: 4,
            vp_customers: 1644,
            vp_peers: 70,
            vp_providers: 0,
            vp_pops: 25,
            vp_ixps: 2,
            vp_sibling: true,
            world: AsMix {
                tier1: 8,
                transit: 40,
                cdn: 5,
                extra_stubs: 400,
            },
            major_peer_links: 20,
            major_peers: 4,
            prefixes_per_stub: 1.5,
            prefixes_per_cdn: 30,
            ..TopoConfig::tiny(seed)
        }
    }

    /// A scaled-down Tier-1 for integration tests.
    pub fn tier1_scaled(seed: u64, scale: f64) -> TopoConfig {
        let mut c = TopoConfig::tier1(seed);
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(1);
        c.vp_customers = s(c.vp_customers);
        c.vp_peers = s(c.vp_peers).max(4);
        c.world.tier1 = s(c.world.tier1).max(4);
        c.world.transit = s(c.world.transit).max(3);
        c.world.extra_stubs = s(c.world.extra_stubs);
        c
    }

    /// The paper's small access network: 14 routers, most
    /// interconnections at three interconnection facilities (IXPs).
    pub fn small_access(seed: u64) -> TopoConfig {
        TopoConfig {
            vp_kind: AsKind::SmallAccess,
            num_vps: 1,
            vp_customers: 10,
            vp_peers: 8,
            vp_providers: 2,
            vp_pops: 3,
            vp_ixps: 3,
            vp_sibling: false,
            world: AsMix {
                tier1: 4,
                transit: 12,
                cdn: 4,
                extra_stubs: 120,
            },
            major_peer_links: 3,
            major_peers: 1,
            prefixes_per_stub: 1.3,
            prefixes_per_cdn: 15,
            ..TopoConfig::tiny(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for c in [
            TopoConfig::tiny(1),
            TopoConfig::re_network(1),
            TopoConfig::large_access(1),
            TopoConfig::tier1(1),
            TopoConfig::small_access(1),
        ] {
            assert!(c.num_vps >= 1);
            assert!(c.vp_pops >= c.num_vps.min(3), "need PoPs for VPs");
            assert!(c.world.tier1 >= 2, "need a clique");
            let f = c.customer_policy;
            assert!(f.firewall + f.silent + f.echo_other + f.rate_limited < 1.0);
        }
    }

    #[test]
    fn scaled_preset_shrinks() {
        let full = TopoConfig::large_access(1);
        let small = TopoConfig::large_access_scaled(1, 0.1);
        assert!(small.vp_customers < full.vp_customers / 5);
        assert!(small.vp_customers >= 1);
        assert_eq!(small.vp_kind, AsKind::Access);
    }
}
