//! Geography: the PoP city catalogue.
//!
//! Figure 16 of the paper plots interdomain links by the *longitude* of
//! the VP-side border router, so the generator places PoPs in real cities
//! with real coordinates. The catalogue is a fixed list; scenarios draw a
//! prefix of it (US cities first, sorted roughly west→east, then a few
//! international sites for Tier-1 footprints).

/// (name, longitude, latitude).
pub const US_CITIES: &[(&str, f64, f64)] = &[
    ("Seattle", -122.33, 47.61),
    ("Portland", -122.68, 45.52),
    ("San Jose", -121.89, 37.34),
    ("Los Angeles", -118.24, 34.05),
    ("Las Vegas", -115.14, 36.17),
    ("Phoenix", -112.07, 33.45),
    ("Salt Lake City", -111.89, 40.76),
    ("Denver", -104.99, 39.74),
    ("Albuquerque", -106.65, 35.08),
    ("Dallas", -96.80, 32.78),
    ("Houston", -95.37, 29.76),
    ("Kansas City", -94.58, 39.10),
    ("Minneapolis", -93.27, 44.98),
    ("Chicago", -87.63, 41.88),
    ("St. Louis", -90.20, 38.63),
    ("Nashville", -86.78, 36.16),
    ("Atlanta", -84.39, 33.75),
    ("Miami", -80.19, 25.76),
    ("Charlotte", -80.84, 35.23),
    ("Ashburn", -77.49, 39.04),
    ("Philadelphia", -75.17, 39.95),
    ("New York", -74.01, 40.71),
    ("Boston", -71.06, 42.36),
    ("Pittsburgh", -79.99, 40.44),
    ("Detroit", -83.05, 42.33),
];

/// International sites used by Tier-1 and CDN footprints.
pub const WORLD_CITIES: &[(&str, f64, f64)] = &[
    ("London", -0.13, 51.51),
    ("Amsterdam", 4.90, 52.37),
    ("Frankfurt", 8.68, 50.11),
    ("Paris", 2.35, 48.86),
    ("Tokyo", 139.69, 35.69),
    ("Singapore", 103.85, 1.29),
    ("Sydney", 151.21, -33.87),
    ("São Paulo", -46.63, -23.55),
    ("Toronto", -79.38, 43.65),
    ("Hong Kong", 114.17, 22.32),
];

/// Number of cities available in total.
pub fn catalogue_len() -> usize {
    US_CITIES.len() + WORLD_CITIES.len()
}

/// Fetch city `i` from the combined catalogue (US cities first).
pub fn city(i: usize) -> (&'static str, f64, f64) {
    if i < US_CITIES.len() {
        US_CITIES[i]
    } else {
        WORLD_CITIES[(i - US_CITIES.len()) % WORLD_CITIES.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_enough_cities() {
        assert!(catalogue_len() >= 30);
    }

    #[test]
    fn us_cities_span_the_country() {
        let min = US_CITIES.iter().map(|c| c.1).fold(f64::INFINITY, f64::min);
        let max = US_CITIES
            .iter()
            .map(|c| c.1)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min < -120.0, "need a west-coast city");
        assert!(max > -75.0, "need an east-coast city");
    }

    #[test]
    fn city_indexing_wraps_into_world_list() {
        assert_eq!(city(0).0, "Seattle");
        assert_eq!(city(US_CITIES.len()).0, "London");
    }
}
