//! The Internet generator.
//!
//! Builds a ground-truth [`Internet`] from a [`TopoConfig`], in phases:
//!
//! 1. PoPs from the city catalogue;
//! 2. ASes: the VP network (plus optional sibling), the Tier-1 clique,
//!    transit providers, CDNs, the VP network's customers / peers /
//!    providers, and unrelated stubs — with RIR-recorded address space;
//! 3. routers and intra-AS topologies (backbone ring over PoPs, access
//!    aggregation, stub edges) with per-router response quirks;
//! 4. physical interdomain links for every AS adjacency, numbered from
//!    /30 or /31 subnets supplied by the provider (or a random side for
//!    peers), plus IXP peering LANs;
//! 5. prefix originations (eyeball and infrastructure space, CDN
//!    per-prefix scoping, MOAS, PA delegations);
//! 6. destination homing, VP placement, and validation.

use crate::alloc::{SpaceAllocator, SubnetCarver};
use crate::config::TopoConfig;
use crate::geo;
use crate::model::*;
use bdrmap_bgp::{AsGraph, OriginTable};
use bdrmap_types::{Asn, IfaceId, LinkId, PopId, Prefix, RouterId, VpId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Generate a ground-truth Internet from a configuration.
///
/// # Examples
///
/// ```
/// use bdrmap_topo::{generate, TopoConfig};
///
/// let net = generate(&TopoConfig::tiny(42));
/// assert!(net.graph.num_ases() > 10);
/// assert!(net.routers.len() > 10);
/// // Same seed, same Internet.
/// let again = generate(&TopoConfig::tiny(42));
/// assert_eq!(net.ifaces.len(), again.ifaces.len());
/// ```
///
/// # Panics
/// Panics if the configuration is internally inconsistent (e.g. more VPs
/// than PoPs) or if generated structures fail validation — both indicate
/// bugs, not recoverable conditions.
pub fn generate(cfg: &TopoConfig) -> Internet {
    let mut b = Builder::new(cfg);
    b.build_pops();
    b.build_ases();
    b.build_routers();
    b.build_interdomain_links();
    b.build_ixps();
    b.build_originations();
    b.build_dest_homing();
    b.place_vps();
    let net = b.finish();
    net.validate().expect("generated Internet must validate");
    net
}

/// Working state while generating.
struct Builder<'c> {
    cfg: &'c TopoConfig,
    rng: StdRng,
    graph: AsGraph,
    origins: OriginTable,
    as_info: Vec<AsInfo>,
    pops: Vec<Pop>,
    routers: Vec<Router>,
    ifaces: Vec<Iface>,
    links: Vec<Link>,
    ixps: Vec<Ixp>,
    vps: Vec<Vp>,
    alloc: SpaceAllocator,
    /// Per-AS carver over its infrastructure block.
    infra: Vec<Option<SubnetCarver>>,
    /// Per-AS eyeball (announced customer) blocks.
    eyeball: Vec<Vec<Prefix>>,
    /// Backbone router per (AS, PoP).
    backbone: HashMap<(Asn, PopId), RouterId>,
    /// Aggregation router per (AS, PoP) for access-like networks.
    aggregation: HashMap<(Asn, PopId), RouterId>,
    /// Border routers of the VP network per PoP (grown on demand).
    vp_borders: HashMap<PopId, Vec<RouterId>>,
    /// Link count per AS pair, for interdomain ordinals.
    pair_ordinal: HashMap<(Asn, Asn), u32>,
    addr_index: HashMap<bdrmap_types::Addr, IfaceId>,
    dest_home: bdrmap_types::PrefixTrie<RouterId>,
    vp_as: Asn,
    vp_sibling: Option<Asn>,
    /// Role lists.
    tier1s: Vec<Asn>,
    transits: Vec<Asn>,
    cdns: Vec<Asn>,
    vp_customer_list: Vec<Asn>,
    vp_peer_list: Vec<Asn>,
    vp_provider_list: Vec<Asn>,
    stubs: Vec<Asn>,
}

/// Capacity of one VP-network border router (interdomain links per
/// router) before a new one is created at the same PoP.
const VP_BORDER_CAPACITY: usize = 6;

impl<'c> Builder<'c> {
    fn new(cfg: &'c TopoConfig) -> Builder<'c> {
        Builder {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            graph: AsGraph::new(),
            origins: OriginTable::new(),
            as_info: vec![AsInfo {
                asn: Asn::RESERVED,
                kind: AsKind::Stub,
                name: "reserved".into(),
                routers: vec![],
                pops: vec![],
                delegated: vec![],
                unannounced: vec![],
                export: ExportStrategy::Everywhere,
                pa_parent: None,
            }],
            pops: Vec::new(),
            routers: Vec::new(),
            ifaces: Vec::new(),
            links: Vec::new(),
            ixps: Vec::new(),
            vps: Vec::new(),
            alloc: SpaceAllocator::new(),
            infra: vec![None],
            eyeball: vec![Vec::new()],
            backbone: HashMap::new(),
            aggregation: HashMap::new(),
            vp_borders: HashMap::new(),
            pair_ordinal: HashMap::new(),
            addr_index: HashMap::new(),
            dest_home: bdrmap_types::PrefixTrie::new(),
            vp_as: Asn::RESERVED,
            vp_sibling: None,
            tier1s: Vec::new(),
            transits: Vec::new(),
            cdns: Vec::new(),
            vp_customer_list: Vec::new(),
            vp_peer_list: Vec::new(),
            vp_provider_list: Vec::new(),
            stubs: Vec::new(),
        }
    }

    // ---------------------------------------------------------------- pops

    fn build_pops(&mut self) {
        let need = geo::US_CITIES.len() + geo::WORLD_CITIES.len();
        for i in 0..need {
            let (name, lon, lat) = geo::city(i);
            self.pops.push(Pop {
                id: PopId(i as u32),
                name: name.to_string(),
                longitude: lon,
                latitude: lat,
            });
        }
        assert!(
            self.cfg.vp_pops <= geo::US_CITIES.len(),
            "vp_pops exceeds the US city catalogue"
        );
        assert!(
            self.cfg.num_vps <= self.cfg.vp_pops,
            "more VPs than VP-network PoPs"
        );
    }

    fn us_pops(&self) -> usize {
        geo::US_CITIES.len()
    }

    // ---------------------------------------------------------------- ases

    /// Allocate a new AS with address space sized for its kind.
    fn new_as(&mut self, kind: AsKind, name: String, sibling_of: Option<Asn>) -> Asn {
        let asn = match sibling_of {
            Some(s) => {
                let org = self.graph.org(s);
                self.graph.add_as_in_org(org)
            }
            None => self.graph.add_as(),
        };
        // Address space: an eyeball block plus an infrastructure block.
        let opaque = asn.0; // opaque org id: stable per AS without naming it
        let (eyeball_len, infra_len) = match kind {
            AsKind::Tier1 => (14, 18),
            AsKind::Transit => (15, 19),
            AsKind::Access => (13, 17),
            AsKind::SmallAccess => (18, 20),
            AsKind::Cdn => (16, 19),
            AsKind::ResearchEdu => (16, 18),
            AsKind::Enterprise => (22, 24),
            AsKind::Stub => (22, 24),
            AsKind::IxpOperator => (24, 24),
        };
        let eyeball = self.alloc.delegate(eyeball_len, opaque);
        let infra = self.alloc.delegate(infra_len, opaque);
        // Large networks almost always announce their infrastructure
        // space; leaving it unrouted is predominantly a small-network
        // economy (§5.4.3 of the paper).
        let unrouted_scale = match kind {
            AsKind::Tier1 => 0.2,
            AsKind::Transit | AsKind::Cdn | AsKind::Access => 0.4,
            _ => 1.0,
        };
        let unrouted_infra = self
            .rng
            .gen_bool((self.cfg.unrouted_infra_frac * unrouted_scale).min(1.0));
        // Networks that keep infrastructure out of BGP still announce
        // *some* of it (§5.4.1: "these networks usually announce other
        // infrastructure addresses that bdrmap observes nearby"), so
        // only the second half of the block goes dark. Addresses are
        // carved in order, so early routers get announced space and
        // later ones the unrouted tail.
        let (delegated, unannounced) = if unrouted_infra && infra.len() < 32 {
            let (lit, dark) = infra.split();
            (vec![eyeball, lit, dark], vec![dark])
        } else {
            (vec![eyeball, infra], vec![])
        };
        self.as_info.push(AsInfo {
            asn,
            kind,
            name,
            routers: vec![],
            pops: vec![],
            delegated,
            unannounced,
            export: ExportStrategy::Everywhere,
            pa_parent: None,
        });
        self.infra.push(Some(SubnetCarver::new(infra)));
        self.eyeball.push(vec![eyeball]);
        asn
    }

    fn info(&self, a: Asn) -> &AsInfo {
        &self.as_info[a.0 as usize]
    }

    fn info_mut(&mut self, a: Asn) -> &mut AsInfo {
        &mut self.as_info[a.0 as usize]
    }

    /// Pick `n` distinct PoPs for an AS footprint.
    fn pick_pops(&mut self, n: usize, include_world: bool) -> Vec<PopId> {
        let limit = if include_world {
            self.pops.len()
        } else {
            self.us_pops()
        };
        let mut idx: Vec<usize> = (0..limit).collect();
        // Fisher–Yates shuffle prefix.
        for i in 0..n.min(limit) {
            let j = self.rng.gen_range(i..limit);
            idx.swap(i, j);
        }
        let mut out: Vec<PopId> = idx[..n.min(limit)]
            .iter()
            .map(|&i| PopId(i as u32))
            .collect();
        out.sort_unstable();
        out
    }

    fn build_ases(&mut self) {
        let cfg = self.cfg;

        // The VP network and optional sibling.
        self.vp_as = self.new_as(cfg.vp_kind, "MeasuredNet".into(), None);
        let vp_pops: Vec<PopId> = (0..cfg.vp_pops).map(|i| PopId(i as u32)).collect();
        self.info_mut(self.vp_as).pops = vp_pops.clone();
        // The VP network always announces its infrastructure space except
        // one extra block we deliberately leave unannounced to exercise
        // the RIR-delegation logic of heuristic §5.4.1.
        self.info_mut(self.vp_as).unannounced.clear();
        let extra_unrouted = self.alloc.delegate(22, self.vp_as.0);
        self.info_mut(self.vp_as).delegated.push(extra_unrouted);
        self.info_mut(self.vp_as).unannounced.push(extra_unrouted);

        if cfg.vp_sibling {
            let sib = self.new_as(cfg.vp_kind, "MeasuredNet-Regional".into(), Some(self.vp_as));
            // Sibling operates the last ~20% of the VP network's PoPs.
            let cut = (cfg.vp_pops as f64 * 0.8).ceil() as usize;
            self.info_mut(sib).pops = vp_pops[cut.min(vp_pops.len() - 1)..].to_vec();
            self.info_mut(sib).unannounced.clear();
            // BGP-wise the regional subsidiary takes transit from the
            // main AS (they interconnect internally, not over an
            // interdomain link — the generator skips same-org pairs when
            // materialising physical links).
            self.graph
                .add_link(self.vp_as, sib, bdrmap_types::Relationship::Customer);
            self.vp_sibling = Some(sib);
        }

        // Tier-1 clique: present everywhere.
        for i in 0..cfg.world.tier1 {
            let a = self.new_as(AsKind::Tier1, format!("Tier1-{i}"), None);
            let all: Vec<PopId> = (0..self.pops.len()).map(|p| PopId(p as u32)).collect();
            self.info_mut(a).pops = all;
            self.info_mut(a).unannounced.clear(); // tier-1s announce infra
            for &b in &self.tier1s.clone() {
                self.graph.add_link(a, b, bdrmap_types::Relationship::Peer);
            }
            self.tier1s.push(a);
        }
        // A Tier-1 VP network joins the clique.
        if cfg.vp_kind == AsKind::Tier1 {
            for &b in &self.tier1s.clone() {
                self.graph
                    .add_link(self.vp_as, b, bdrmap_types::Relationship::Peer);
                self.vp_peer_list.push(b);
            }
        }

        // Transit providers: customers of 1–2 Tier-1s, some peer pairwise.
        for i in 0..cfg.world.transit {
            let a = self.new_as(AsKind::Transit, format!("Transit-{i}"), None);
            let npops = self.rng.gen_range(4..=10.min(self.us_pops()));
            self.info_mut(a).pops = self.pick_pops(npops, false);
            let nup = self.rng.gen_range(1..=2usize);
            let mut ups = self.tier1s.clone();
            for k in 0..nup.min(ups.len()) {
                let j = self.rng.gen_range(k..ups.len());
                ups.swap(k, j);
                self.graph
                    .add_link(ups[k], a, bdrmap_types::Relationship::Customer);
            }
            for &b in &self.transits.clone() {
                if self.rng.gen_bool(0.15) {
                    self.graph.add_link(a, b, bdrmap_types::Relationship::Peer);
                }
            }
            self.transits.push(a);
        }

        // CDNs: broad footprints, customers of a Tier-1, assigned export
        // strategies that reproduce the Figure 15/16 spread.
        let strategies = [
            ExportStrategy::Anchored,   // "Akamai"
            ExportStrategy::Regional,   // "Google"
            ExportStrategy::Everywhere, // "Level3-like CDN"
            ExportStrategy::Subset { percent: 60 },
            ExportStrategy::Anchored,
        ];
        for i in 0..cfg.world.cdn {
            let a = self.new_as(
                AsKind::Cdn,
                format!("CDN-{}", (b'A' + (i % 26) as u8) as char),
                None,
            );
            let npops = self.rng.gen_range(10..=18.min(self.us_pops()));
            self.info_mut(a).pops = self.pick_pops(npops, false);
            self.info_mut(a).export = strategies[i % strategies.len()];
            let up = self.tier1s[self.rng.gen_range(0..self.tier1s.len())];
            self.graph
                .add_link(up, a, bdrmap_types::Relationship::Customer);
            self.cdns.push(a);
        }

        // VP network's providers.
        for i in 0..cfg.vp_providers {
            let pool = if i < cfg.vp_providers.div_ceil(2) && !self.tier1s.is_empty() {
                &self.tier1s
            } else {
                &self.transits
            };
            let mut cand = pool[self.rng.gen_range(0..pool.len())];
            let mut guard = 0;
            while self.graph.relationship(self.vp_as, cand).is_some() && guard < 50 {
                cand = pool[self.rng.gen_range(0..pool.len())];
                guard += 1;
            }
            if self.graph.relationship(self.vp_as, cand).is_none() {
                self.graph
                    .add_link(cand, self.vp_as, bdrmap_types::Relationship::Customer);
                self.vp_provider_list.push(cand);
            }
        }

        // VP network's peers: majors first (Tier-1s or big transits the VP
        // network is not a customer of), then CDNs, then transits.
        let mut peer_pool: Vec<Asn> = Vec::new();
        if cfg.vp_kind != AsKind::Tier1 {
            peer_pool.extend(self.tier1s.iter().copied());
        }
        peer_pool.extend(self.transits.iter().copied());
        peer_pool.retain(|&p| self.graph.relationship(self.vp_as, p).is_none());
        // Major peers: give them the Subset export strategy so that
        // discovering all their interconnections needs many VPs.
        let mut peers_added = 0usize;
        for &p in peer_pool.iter().take(cfg.major_peers) {
            self.graph
                .add_link(self.vp_as, p, bdrmap_types::Relationship::Peer);
            self.info_mut(p).export = ExportStrategy::Subset { percent: 40 };
            self.vp_peer_list.push(p);
            peers_added += 1;
        }
        // All CDNs peer with the VP network.
        for &c in &self.cdns.clone() {
            if self.graph.relationship(self.vp_as, c).is_none() {
                self.graph
                    .add_link(self.vp_as, c, bdrmap_types::Relationship::Peer);
                self.vp_peer_list.push(c);
                peers_added += 1;
            }
        }
        // Remaining peers: mid-tier transits first (an access network
        // peers with many transits but only a couple of tier-1s; the
        // rest of the clique stays strictly upstream, which also keeps
        // some collectors outside the peering set).
        let tail: Vec<Asn> = self
            .transits
            .iter()
            .chain(self.tier1s.iter())
            .copied()
            .filter(|&p| self.graph.relationship(self.vp_as, p).is_none())
            .collect();
        let mut i = 0;
        while peers_added < cfg.vp_peers && i < tail.len() {
            let p = tail[i];
            if self.graph.relationship(self.vp_as, p).is_none() {
                self.graph
                    .add_link(self.vp_as, p, bdrmap_types::Relationship::Peer);
                self.vp_peer_list.push(p);
                peers_added += 1;
            }
            i += 1;
        }

        // VP network's customers: mostly stubs and enterprises, a few
        // small access networks with customers of their own.
        for i in 0..cfg.vp_customers {
            let roll: f64 = self.rng.gen();
            let kind = if roll < 0.80 {
                AsKind::Stub
            } else if roll < 0.93 {
                AsKind::Enterprise
            } else {
                AsKind::SmallAccess
            };
            let a = self.new_as(kind, format!("Cust-{i}"), None);
            // Customers live at one of the VP network's PoPs.
            let pi = self.rng.gen_range(0..cfg.vp_pops);
            let pop = self.info(self.vp_as).pops[pi];
            self.info_mut(a).pops = vec![pop];
            self.graph
                .add_link(self.vp_as, a, bdrmap_types::Relationship::Customer);
            self.vp_customer_list.push(a);
            // A quarter of customers multihome to a transit as well.
            if !self.transits.is_empty() && self.rng.gen_bool(0.25) {
                let t = self.transits[self.rng.gen_range(0..self.transits.len())];
                if self.graph.relationship(t, a).is_none() {
                    self.graph
                        .add_link(t, a, bdrmap_types::Relationship::Customer);
                }
            }
            // Small access customers bring 1–3 stubs of their own
            // (gives bdrmap multi-AS destination cones behind one router).
            if kind == AsKind::SmallAccess {
                for j in 0..self.rng.gen_range(1..=3usize) {
                    let s = self.new_as(AsKind::Stub, format!("Cust-{i}-sub{j}"), None);
                    self.info_mut(s).pops = vec![pop];
                    self.graph
                        .add_link(a, s, bdrmap_types::Relationship::Customer);
                    self.stubs.push(s);
                }
            }
        }

        // Unrelated stubs filling out the Internet.
        for i in 0..cfg.world.extra_stubs {
            let a = self.new_as(AsKind::Stub, format!("Stub-{i}"), None);
            let pop = self.pick_pops(1, false)[0];
            self.info_mut(a).pops = vec![pop];
            let upstreams = if self.rng.gen_bool(0.3) && !self.tier1s.is_empty() {
                &self.tier1s
            } else {
                &self.transits
            };
            let u = upstreams[self.rng.gen_range(0..upstreams.len())];
            self.graph
                .add_link(u, a, bdrmap_types::Relationship::Customer);
            if self.rng.gen_bool(0.4) {
                let u2 = self.transits[self.rng.gen_range(0..self.transits.len())];
                if self.graph.relationship(u2, a).is_none() {
                    self.graph
                        .add_link(u2, a, bdrmap_types::Relationship::Customer);
                }
            }
            self.stubs.push(a);
        }
    }

    // ------------------------------------------------------------- routers

    fn sample_policy(&mut self, edge_of_leaf: bool) -> ResponsePolicy {
        let mix = if edge_of_leaf {
            self.cfg.customer_policy
        } else {
            self.cfg.backbone_policy
        };
        let r: f64 = self.rng.gen();
        if r < mix.firewall {
            ResponsePolicy::Firewall
        } else if r < mix.firewall + mix.silent {
            ResponsePolicy::Silent
        } else if r < mix.firewall + mix.silent + mix.echo_other {
            ResponsePolicy::EchoOtherIcmp
        } else if r < mix.firewall + mix.silent + mix.echo_other + mix.rate_limited {
            ResponsePolicy::RateLimited {
                period: self.rng.gen_range(2..=4),
            }
        } else {
            ResponsePolicy::Normal
        }
    }

    fn sample_src_select(&mut self) -> SrcSelect {
        let r: f64 = self.rng.gen();
        if r < self.cfg.third_party_frac {
            SrcSelect::TowardProber
        } else if r < self.cfg.third_party_frac + self.cfg.virtual_router_frac {
            SrcSelect::TowardDest
        } else {
            SrcSelect::Inbound
        }
    }

    fn sample_ipid(&mut self) -> IpidModel {
        let r: f64 = self.rng.gen();
        let velocity = self.rng.gen_range(1..=30u16);
        if r < self.cfg.ipid_shared_frac {
            IpidModel::SharedCounter {
                init: self.rng.gen(),
                velocity_per_ms: velocity,
            }
        } else if r < self.cfg.ipid_shared_frac + self.cfg.ipid_per_iface_frac {
            IpidModel::PerInterface {
                velocity_per_ms: velocity,
            }
        } else if r < self.cfg.ipid_shared_frac
            + self.cfg.ipid_per_iface_frac
            + self.cfg.ipid_random_frac
        {
            IpidModel::Random
        } else {
            IpidModel::Constant
        }
    }

    fn sample_unreach(&mut self) -> UnreachSrc {
        let r: f64 = self.rng.gen();
        if r < self.cfg.mercator_frac {
            UnreachSrc::Canonical
        } else if r < self.cfg.mercator_frac + self.cfg.mercator_probed_frac {
            UnreachSrc::Probed
        } else {
            UnreachSrc::None
        }
    }

    /// Create a router for `owner` at `pop`. `leaf_edge` selects the
    /// aggressive (customer-edge) policy mix.
    fn add_router(&mut self, owner: Asn, pop: PopId, leaf_edge: bool) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        let policy = self.sample_policy(leaf_edge);
        let src_select = self.sample_src_select();
        let ipid = self.sample_ipid();
        let unreach = self.sample_unreach();
        self.routers.push(Router {
            id,
            owner,
            pop,
            ifaces: vec![],
            policy,
            src_select,
            ipid,
            unreach_src: unreach,
            is_border: false,
        });
        self.info_mut(owner).routers.push(id);
        // Loopback address from infrastructure space.
        if let Some(addr) = self.infra[owner.0 as usize]
            .as_mut()
            .and_then(|c| c.take_addr())
        {
            self.add_iface(id, addr, IfaceKind::Loopback, None);
        }
        id
    }

    fn add_iface(
        &mut self,
        router: RouterId,
        addr: bdrmap_types::Addr,
        kind: IfaceKind,
        link: Option<LinkId>,
    ) -> IfaceId {
        let id = IfaceId(self.ifaces.len() as u32);
        self.ifaces.push(Iface {
            id,
            router,
            addr,
            kind,
            link,
        });
        self.routers[router.index()].ifaces.push(id);
        let prev = self.addr_index.insert(addr, id);
        assert!(prev.is_none(), "address {addr} assigned twice");
        id
    }

    fn metric_between(&self, a: PopId, b: PopId) -> u32 {
        let pa = &self.pops[a.index()];
        let pb = &self.pops[b.index()];
        let dx = pa.longitude - pb.longitude;
        let dy = pa.latitude - pb.latitude;
        ((dx * dx + dy * dy).sqrt() * 10.0) as u32 + 1
    }

    /// Join two routers with an internal /31 from `space_of`'s
    /// infrastructure block.
    fn connect_internal(&mut self, a: RouterId, b: RouterId, space_of: Asn) {
        let subnet = self.infra[space_of.0 as usize]
            .as_mut()
            .and_then(|c| c.take(31))
            .unwrap_or_else(|| self.alloc.take(31)); // overflow: unregistered space
        let id = LinkId(self.links.len() as u32);
        let metric = self.metric_between(self.routers[a.index()].pop, self.routers[b.index()].pop);
        let i1 = self.add_iface(a, subnet.nth(0), IfaceKind::Internal, Some(id));
        let i2 = self.add_iface(b, subnet.nth(1), IfaceKind::Internal, Some(id));
        self.links.push(Link {
            id,
            kind: LinkKind::Internal,
            subnet,
            ifaces: vec![i1, i2],
            metric,
        });
    }

    /// Backbone router for (AS, PoP), creating it on first use.
    fn backbone_router(&mut self, a: Asn, pop: PopId) -> RouterId {
        if let Some(&r) = self.backbone.get(&(a, pop)) {
            return r;
        }
        let r = self.add_router(a, pop, false);
        self.backbone.insert((a, pop), r);
        r
    }

    /// Build the intra-AS topology for every AS.
    fn build_routers(&mut self) {
        for asn in self.graph.ases().collect::<Vec<_>>() {
            let info = self.info(asn).clone();
            match info.kind {
                AsKind::Tier1 | AsKind::Transit | AsKind::Cdn => {
                    self.build_backbone(asn, &info.pops);
                }
                AsKind::Access | AsKind::ResearchEdu | AsKind::SmallAccess => {
                    self.build_backbone(asn, &info.pops);
                    // Aggregation routers hang off the backbone.
                    for &pop in &info.pops {
                        let bb = self.backbone_router(asn, pop);
                        let agg = self.add_router(asn, pop, false);
                        self.connect_internal(bb, agg, asn);
                        self.aggregation.insert((asn, pop), agg);
                    }
                }
                AsKind::Stub | AsKind::Enterprise => {
                    let pop = info.pops[0];
                    let edge = self.add_router(asn, pop, true);
                    self.backbone.insert((asn, pop), edge);
                    // 0–2 internal routers behind the edge: these are what
                    // let bdrmap see one or two consecutive hops inside
                    // the neighbor (heuristics §5.4.4 / §5.4.5).
                    let internal = {
                        let r: f64 = self.rng.gen();
                        if r < 0.4 {
                            0
                        } else if r < 0.8 {
                            1
                        } else {
                            2
                        }
                    };
                    let mut prev = edge;
                    for _ in 0..internal {
                        let r = self.add_router(asn, pop, false);
                        self.connect_internal(prev, r, asn);
                        prev = r;
                    }
                    self.aggregation.insert((asn, pop), prev);
                }
                AsKind::IxpOperator => { /* IXPs get no routers of their own */ }
            }
        }
        // VP-network sibling routers join the main backbone: connect each
        // sibling PoP backbone to the nearest main-AS backbone PoP.
        if let Some(sib) = self.vp_sibling {
            let sib_pops = self.info(sib).pops.clone();
            let main_pops = self.info(self.vp_as).pops.clone();
            for &sp in &sib_pops {
                let nearest = main_pops
                    .iter()
                    .copied()
                    .filter(|p| !sib_pops.contains(p))
                    .min_by_key(|&p| self.metric_between(sp, p))
                    .unwrap_or(main_pops[0]);
                let a = self.backbone_router(sib, sp);
                let b = self.backbone_router(self.vp_as, nearest);
                self.connect_internal(a, b, self.vp_as);
            }
        }
    }

    /// Ring over PoPs in longitude order plus a few chords.
    fn build_backbone(&mut self, asn: Asn, pops: &[PopId]) {
        if pops.is_empty() {
            return;
        }
        let mut ordered: Vec<PopId> = pops.to_vec();
        ordered.sort_by(|a, b| {
            self.pops[a.index()]
                .longitude
                .partial_cmp(&self.pops[b.index()].longitude)
                .unwrap()
                .then(a.cmp(b))
        });
        let routers: Vec<RouterId> = ordered
            .iter()
            .map(|&p| self.backbone_router(asn, p))
            .collect();
        if routers.len() == 1 {
            return;
        }
        for w in routers.windows(2) {
            self.connect_internal(w[0], w[1], asn);
        }
        if routers.len() > 2 {
            // Close the ring.
            self.connect_internal(routers[routers.len() - 1], routers[0], asn);
            // Chords for path diversity (ECMP / Figure 13 scenarios).
            let chords = routers.len() / 4;
            for _ in 0..chords {
                let i = self.rng.gen_range(0..routers.len());
                let j = self.rng.gen_range(0..routers.len());
                if i != j && i.abs_diff(j) > 1 {
                    self.connect_internal(routers[i], routers[j], asn);
                }
            }
        }
    }

    // --------------------------------------------------- interdomain links

    /// A border router of the VP network at `pop`, creating more as they
    /// fill up.
    fn vp_border_router(&mut self, pop: PopId) -> RouterId {
        // Sibling PoPs get sibling-owned border routers.
        let owner = match self.vp_sibling {
            Some(sib) if self.info(sib).pops.contains(&pop) => sib,
            _ => self.vp_as,
        };
        let existing = self.vp_borders.entry(pop).or_default().clone();
        for r in existing {
            let links = self.routers[r.index()]
                .ifaces
                .iter()
                .filter(|i| self.ifaces[i.index()].kind == IfaceKind::Interdomain)
                .count();
            if links < VP_BORDER_CAPACITY && self.routers[r.index()].owner == owner {
                return r;
            }
        }
        let r = self.add_router(owner, pop, false);
        let bb = self.backbone_router(owner, pop);
        self.connect_internal(bb, r, owner);
        self.vp_borders.get_mut(&pop).unwrap().push(r);
        r
    }

    /// Number an interdomain link between routers of `near` and `far`,
    /// with the subnet supplied by `space_from`.
    fn connect_interdomain(
        &mut self,
        near_router: RouterId,
        far_router: RouterId,
        space_from: Asn,
    ) -> LinkId {
        let near = self.routers[near_router.index()].owner;
        let far = self.routers[far_router.index()].owner;
        let len = if self.rng.gen_bool(0.5) { 31 } else { 30 };
        let subnet = self.infra[space_from.0 as usize]
            .as_mut()
            .and_then(|c| c.take(len))
            .unwrap_or_else(|| self.alloc.take(len));
        let key = if near < far { (near, far) } else { (far, near) };
        let ordinal = *self
            .pair_ordinal
            .entry(key)
            .and_modify(|o| *o += 1)
            .or_insert(0);
        let id = LinkId(self.links.len() as u32);
        let metric = self.metric_between(
            self.routers[near_router.index()].pop,
            self.routers[far_router.index()].pop,
        );
        // /31: both addresses usable; /30: skip network/broadcast.
        let (a1, a2) = if len == 31 {
            (subnet.nth(0), subnet.nth(1))
        } else {
            (subnet.nth(1), subnet.nth(2))
        };
        // The address-space supplier takes the lower address by custom.
        let (near_addr, far_addr) = if space_from == near {
            (a1, a2)
        } else {
            (a2, a1)
        };
        let i1 = self.add_iface(near_router, near_addr, IfaceKind::Interdomain, Some(id));
        let i2 = self.add_iface(far_router, far_addr, IfaceKind::Interdomain, Some(id));
        self.routers[near_router.index()].is_border = true;
        self.routers[far_router.index()].is_border = true;
        self.links.push(Link {
            id,
            kind: LinkKind::Interdomain {
                space_from,
                ordinal,
            },
            subnet,
            ifaces: vec![i1, i2],
            metric,
        });
        id
    }

    /// The router an AS uses to touch down at a PoP (or its nearest PoP).
    fn attachment_router(&mut self, a: Asn, pop: PopId) -> RouterId {
        if let Some(&r) = self.backbone.get(&(a, pop)) {
            return r;
        }
        // Nearest of its PoPs.
        let pops = self.info(a).pops.clone();
        let nearest = pops
            .iter()
            .copied()
            .min_by_key(|&p| self.metric_between(p, pop))
            .expect("AS has at least one PoP");
        self.backbone_router(a, nearest)
    }

    /// How many parallel interconnects an AS pair gets.
    fn interconnect_count(&mut self, a: Asn, b: Asn) -> usize {
        let (ia, ib) = (self.info(a), self.info(b));
        let vp_involved = a == self.vp_as || b == self.vp_as;
        let big = |k: AsKind| {
            matches!(
                k,
                AsKind::Tier1 | AsKind::Transit | AsKind::Access | AsKind::Cdn
            )
        };
        if vp_involved {
            let other = if a == self.vp_as { b } else { a };
            let oi = self.info(other);
            let rel = self.graph.relationship(self.vp_as, other);
            match (oi.kind, rel) {
                // Major peers and CDNs spread over shared PoPs.
                (AsKind::Cdn, _) => {
                    let shared = self.shared_pops(self.vp_as, other).len();
                    shared.clamp(1, self.cfg.major_peer_links)
                }
                (AsKind::Tier1 | AsKind::Transit, Some(bdrmap_types::Relationship::Peer)) => {
                    if matches!(oi.export, ExportStrategy::Subset { .. }) {
                        self.cfg.major_peer_links
                    } else {
                        // Settlement-free peers of a large network meet
                        // at several cities (drives the Figure 14
                        // egress-diversity mode).
                        self.rng.gen_range(3..=8)
                    }
                }
                // Providers connect at several places.
                (_, Some(bdrmap_types::Relationship::Provider)) => self.rng.gen_range(3..=6),
                _ => {
                    // Customers: usually one link; occasionally two
                    // (multihomed-to-VP, the §5.4.1 step-1.1 case).
                    if self.rng.gen_bool(0.05) {
                        2
                    } else {
                        1
                    }
                }
            }
        } else if big(ia.kind) && big(ib.kind) {
            self.rng.gen_range(2..=4)
        } else {
            1
        }
    }

    fn shared_pops(&self, a: Asn, b: Asn) -> Vec<PopId> {
        let pa = &self.info(a).pops;
        let pb = &self.info(b).pops;
        pa.iter().copied().filter(|p| pb.contains(p)).collect()
    }

    fn build_interdomain_links(&mut self) {
        // Materialize physical links for every AS adjacency. Iterate in
        // ASN order for determinism.
        let ases: Vec<Asn> = self.graph.ases().collect();
        for &a in &ases {
            let neighbors: Vec<(Asn, bdrmap_types::Relationship)> =
                self.graph.neighbors(a).to_vec();
            for (b, rel) in neighbors {
                if b < a {
                    continue; // each pair once
                }
                // Sibling ASes of the VP network are internally connected.
                if self.graph.same_org(a, b) {
                    continue;
                }
                let count = self.interconnect_count(a, b);
                // Which side supplies address space: the provider on c2p
                // links, a coin flip on peer links (§4 challenge 1).
                let space_from = match rel {
                    bdrmap_types::Relationship::Customer => a,
                    bdrmap_types::Relationship::Provider => b,
                    bdrmap_types::Relationship::Peer => {
                        if self.rng.gen_bool(0.5) {
                            a
                        } else {
                            b
                        }
                    }
                };
                // Spread interconnects over shared PoPs (or the smaller
                // side's PoPs), sampled evenly across the country so the
                // Figure 16 geography is realistic.
                let mut sites = self.shared_pops(a, b);
                if sites.is_empty() {
                    sites = if self.info(a).pops.len() <= self.info(b).pops.len() {
                        self.info(a).pops.clone()
                    } else {
                        self.info(b).pops.clone()
                    };
                }
                sites.sort_by(|x, y| {
                    self.pops[x.index()]
                        .longitude
                        .partial_cmp(&self.pops[y.index()].longitude)
                        .unwrap()
                });
                for i in 0..count {
                    let pop = if count >= sites.len() {
                        sites[i % sites.len()]
                    } else {
                        sites[(i * sites.len()) / count]
                    };
                    let vp_as = self.vp_as;
                    let vp_sibling = self.vp_sibling;
                    let vp_org_member = move |x: Asn| x == vp_as || Some(x) == vp_sibling;
                    let ra = if vp_org_member(a) {
                        self.vp_border_router(pop)
                    } else {
                        self.attachment_router(a, pop)
                    };
                    let rb = if vp_org_member(b) {
                        self.vp_border_router(pop)
                    } else {
                        self.attachment_router(b, pop)
                    };
                    self.connect_interdomain(ra, rb, space_from);
                }
            }
        }
    }

    // ----------------------------------------------------------------- ixps

    fn build_ixps(&mut self) {
        let vp_pops = self.info(self.vp_as).pops.clone();
        for x in 0..self.cfg.vp_ixps {
            let op = self.new_as(AsKind::IxpOperator, format!("IXP-{x}"), None);
            let lan = self.alloc.delegate(24, op.0);
            let pop = vp_pops[x % vp_pops.len()];
            self.info_mut(op).pops = vec![pop];
            let mut carver = SubnetCarver::new(lan);
            carver.take_addr(); // skip the network address
                                // Members: the VP network plus ASes present near this PoP.
            let mut members = vec![self.vp_as];
            let cand: Vec<Asn> = self
                .graph
                .ases()
                .filter(|&a| {
                    a != self.vp_as
                        && Some(a) != self.vp_sibling
                        // Tier-1s famously do not join open peering
                        // fabrics — they would be peering away their
                        // transit product.
                        && !matches!(
                            self.info(a).kind,
                            AsKind::IxpOperator
                                | AsKind::Stub
                                | AsKind::Enterprise
                                | AsKind::Tier1
                        )
                })
                .collect();
            for a in cand {
                if self.rng.gen_bool(0.35) {
                    members.push(a);
                }
            }
            // Also a few stubs join IXPs.
            let stubs = self.stubs.clone();
            for s in stubs {
                if self.rng.gen_bool(0.03) {
                    members.push(s);
                }
            }
            members.dedup();
            // Guarantee a viable exchange: at least three members.
            for cand in self.transits.clone().into_iter().chain(self.tier1s.clone()) {
                if members.len() >= 3 {
                    break;
                }
                if !members.contains(&cand) {
                    members.push(cand);
                }
            }

            let id = LinkId(self.links.len() as u32);
            let mut ports = Vec::new();
            let mut actual_members = Vec::new();
            for &m in &members {
                let Some(addr) = carver.take_addr() else {
                    break;
                };
                let r = if m == self.vp_as {
                    self.vp_border_router(pop)
                } else {
                    self.attachment_router(m, pop)
                };
                let ifc = self.add_iface(r, addr, IfaceKind::IxpLan, Some(id));
                self.routers[r.index()].is_border = true;
                ports.push(ifc);
                actual_members.push(m);
            }
            self.links.push(Link {
                id,
                kind: LinkKind::IxpLan { ixp: x },
                subnet: lan,
                ifaces: ports,
                metric: 1,
            });

            // Route-server peerings: the VP network peers with every
            // member; members peer with each other sparsely.
            for i in 0..actual_members.len() {
                for j in (i + 1)..actual_members.len() {
                    let (a, b) = (actual_members[i], actual_members[j]);
                    if self.graph.relationship(a, b).is_some() {
                        continue;
                    }
                    let involves_vp = a == self.vp_as || b == self.vp_as;
                    if involves_vp || self.rng.gen_bool(0.25) {
                        self.graph.add_link(a, b, bdrmap_types::Relationship::Peer);
                    }
                }
            }
            let lan_announced = self.rng.gen_bool(0.5);
            self.ixps.push(Ixp {
                name: format!("IXP-{x}"),
                operator: op,
                lan,
                pop,
                members: actual_members,
                lan_announced,
            });
        }
    }

    // --------------------------------------------------------- origination

    fn build_originations(&mut self) {
        let ases: Vec<Asn> = self.graph.ases().collect();
        for &a in &ases {
            let info = self.info(a).clone();
            if info.kind == AsKind::IxpOperator {
                continue; // LAN announcement handled below
            }
            let eyeball = self.eyeball[a.0 as usize].clone();
            // Announce eyeball space, split by kind.
            for block in eyeball {
                match info.kind {
                    AsKind::Stub | AsKind::Enterprise => {
                        // 1–2 prefixes out of the /22.
                        let extra = self
                            .rng
                            .gen_bool((self.cfg.prefixes_per_stub - 1.0).clamp(0.0, 1.0));
                        let (l, r) = block.split();
                        if extra {
                            self.announce_maybe_moas(l, a);
                            self.announce_maybe_moas(r, a);
                        } else {
                            self.announce_maybe_moas(block, a);
                        }
                    }
                    AsKind::Cdn => {
                        // Many /24s, leaving the rest of the block dark.
                        let n = self.cfg.prefixes_per_cdn.min((block.size() / 256) as usize);
                        for i in 0..n {
                            let p = Prefix::new(block.nth((i as u32) * 256), 24);
                            self.origins.announce(p, a);
                        }
                    }
                    _ => {
                        // A handful of large prefixes.
                        let n = match info.kind {
                            AsKind::Tier1 => 4,
                            AsKind::Access => 4,
                            _ => 2,
                        };
                        let mut parts = vec![block];
                        while parts.len() < n {
                            let p = parts.remove(0);
                            if p.len() >= 24 {
                                parts.push(p);
                                break;
                            }
                            let (l, r) = p.split();
                            parts.push(l);
                            parts.push(r);
                        }
                        for p in parts {
                            self.origins.announce(p, a);
                        }
                    }
                }
            }
            // Announce infrastructure space unless deliberately unrouted.
            for block in info.delegated.iter().skip(1) {
                if !info.unannounced.contains(block) {
                    self.origins.announce(*block, a);
                }
            }
        }
        // IXP LANs: announced by the operator for half the IXPs
        // (§4 challenge 6: inconsistent announcement practice).
        for ixp in &self.ixps.clone() {
            if ixp.lan_announced {
                self.origins.announce(ixp.lan, ixp.operator);
            }
        }
        // PA-space customers (the Figure 12 limitation): renumber some VP
        // customers' internals from a VP-network sub-block.
        let mut pa_customers: Vec<Asn> = Vec::new();
        let cust = self.vp_customer_list.clone();
        for a in cust {
            if self.rng.gen_bool(self.cfg.pa_space_frac) {
                pa_customers.push(a);
            }
        }
        for a in pa_customers {
            self.info_mut(a).pa_parent = Some(self.vp_as);
            // Renumber the customer's internal link interfaces (not its
            // announced eyeball space) from VP-network eyeball space, so
            // they map to the VP network's aggregate in BGP.
            let vp_block = self.eyeball[self.vp_as.0 as usize][0];
            let routers = self.info(a).routers.clone();
            for r in routers {
                let ifcs = self.routers[r.index()].ifaces.clone();
                for i in ifcs {
                    let ifc = self.ifaces[i.index()].clone();
                    if ifc.kind == IfaceKind::Internal {
                        // Move to a fresh address inside the VP block.
                        let mut carver = SubnetCarver::new(vp_block);
                        // Skip forward deterministically based on iface id
                        // to avoid collisions: each iface gets its own /32
                        // offset region.
                        let mut fresh = None;
                        for _ in 0..=(i.0 % 4096) {
                            fresh = carver.take_addr();
                        }
                        if let Some(addr) = fresh {
                            if !self.addr_index.contains_key(&addr) {
                                self.addr_index.remove(&ifc.addr);
                                self.ifaces[i.index()].addr = addr;
                                self.addr_index.insert(addr, i);
                                // Keep the link subnet consistent: widen
                                // it to the VP block (the link is now
                                // numbered from PA space).
                                if let Some(l) = ifc.link {
                                    self.links[l.index()].subnet = vp_block;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn announce_maybe_moas(&mut self, p: Prefix, a: Asn) {
        if self.rng.gen_bool(self.cfg.moas_frac) {
            // Second origin: the AS's first provider (common MOAS cause).
            if let Some(prov) = self.graph.providers(a).next() {
                self.origins
                    .announce_scoped(p, vec![a, prov], bdrmap_bgp::AdvertisementScope::All);
                return;
            }
        }
        self.origins.announce(p, a);
    }

    // ------------------------------------------------------------- homing

    fn build_dest_homing(&mut self) {
        // Link subnets home at their first endpoint's router.
        for l in &self.links {
            if let Some(&i0) = l.ifaces.first() {
                self.dest_home
                    .insert(l.subnet, self.ifaces[i0.index()].router);
            }
        }
        // Announced prefixes home at routers of the origin AS. For
        // multi-PoP networks, split the prefix across PoPs.
        let origs: Vec<(Prefix, Asn)> = self
            .origins
            .iter()
            .map(|o| (o.prefix, o.origins[0]))
            .collect();
        for (p, a) in origs {
            let info = self.info(a);
            if info.routers.is_empty() {
                // IXP operator LAN: home at the first member port.
                if let Some(ixp) = self.ixps.iter().find(|x| x.lan == p) {
                    let link = self
                        .links
                        .iter()
                        .find(|l| matches!(l.kind, LinkKind::IxpLan { .. }) && l.subnet == p);
                    if let Some(l) = link {
                        if let Some(&i0) = l.ifaces.first() {
                            self.dest_home.insert(p, self.ifaces[i0.index()].router);
                        }
                    }
                    let _ = ixp;
                }
                continue;
            }
            // Prefer aggregation routers for eyeball space.
            let homes: Vec<RouterId> = {
                let aggs: Vec<RouterId> = info
                    .pops
                    .iter()
                    .filter_map(|&pop| self.aggregation.get(&(a, pop)).copied())
                    .collect();
                if aggs.is_empty() {
                    info.routers.clone()
                } else {
                    aggs
                }
            };
            if homes.len() == 1 || p.len() >= 22 {
                let h = homes[(p.network().octets()[2] as usize) % homes.len()];
                self.dest_home.insert(p, h);
            } else {
                // Split across up to 4 sub-prefixes homed at different
                // PoPs, giving per-destination egress diversity.
                let splits = 4.min(homes.len());
                let mut parts = vec![p];
                while parts.len() < splits {
                    let q = parts.remove(0);
                    if q.len() >= 24 {
                        parts.push(q);
                        break;
                    }
                    let (l, r) = q.split();
                    parts.push(l);
                    parts.push(r);
                }
                for (i, q) in parts.into_iter().enumerate() {
                    self.dest_home.insert(q, homes[i % homes.len()]);
                }
            }
        }
    }

    // ----------------------------------------------------------------- vps

    fn place_vps(&mut self) {
        // Spread VPs over distinct PoPs, west to east, attached to
        // aggregation routers.
        let mut pops = self.info(self.vp_as).pops.clone();
        pops.sort_by(|a, b| {
            self.pops[a.index()]
                .longitude
                .partial_cmp(&self.pops[b.index()].longitude)
                .unwrap()
        });
        // Evenly sample num_vps of the PoPs.
        let n = self.cfg.num_vps;
        let step = pops.len() as f64 / n as f64;
        let vp_block = self.eyeball[self.vp_as.0 as usize][0];
        let mut carver = SubnetCarver::new(vp_block);
        // Reserve a chunk far from PA renumbering: skip ahead.
        for _ in 0..8192 {
            carver.take_addr();
        }
        for k in 0..n {
            let pop = pops[((k as f64 + 0.5) * step) as usize % pops.len()];
            let attach = self
                .aggregation
                .get(&(self.vp_as, pop))
                .copied()
                .or_else(|| self.backbone.get(&(self.vp_as, pop)).copied())
                .expect("VP PoP must have a router");
            let mut addr = carver.take_addr().expect("VP address");
            while self.addr_index.contains_key(&addr) {
                addr = carver.take_addr().expect("VP address");
            }
            self.vps.push(Vp {
                id: VpId(k as u32),
                addr,
                attach,
                host_as: self.vp_as,
            });
        }
        // Fleet VPs: one in each of `extra_vp_hosts` other networks
        // (the §5.7 "25 other networks" deployment). Hosts are chosen
        // deterministically from transits first, then multi-router
        // customers; each VP gets an address from its host's eyeball
        // space.
        let mut hosts: Vec<Asn> = self
            .transits
            .iter()
            .chain(self.vp_customer_list.iter())
            .copied()
            .filter(|&a| !self.info(a).routers.is_empty())
            .collect();
        hosts.dedup();
        hosts.truncate(self.cfg.extra_vp_hosts);
        for (i, host) in hosts.into_iter().enumerate() {
            let attach = *self.info(host).routers.last().expect("host has routers");
            let block = self.eyeball[host.0 as usize][0];
            let mut hc = SubnetCarver::new(block);
            // Skip ahead so fleet VP addresses never collide with
            // announced-prefix interface numbering.
            for _ in 0..1024 {
                hc.take_addr();
            }
            let mut addr = hc.take_addr().expect("fleet VP address");
            while self.addr_index.contains_key(&addr) {
                addr = hc.take_addr().expect("fleet VP address");
            }
            self.vps.push(Vp {
                id: VpId((n + i) as u32),
                addr,
                attach,
                host_as: host,
            });
        }
    }

    fn finish(self) -> Internet {
        let mut vp_siblings = vec![self.vp_as];
        if let Some(s) = self.vp_sibling {
            vp_siblings.push(s);
        }
        Internet {
            graph: self.graph,
            origins: self.origins,
            as_info: self.as_info,
            pops: self.pops,
            routers: self.routers,
            ifaces: self.ifaces,
            links: self.links,
            ixps: self.ixps,
            vps: self.vps,
            rir: self.alloc.into_records(),
            addr_index: self.addr_index,
            dest_home: self.dest_home,
            vp_as: self.vp_as,
            vp_siblings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopoConfig;

    fn tiny() -> Internet {
        generate(&TopoConfig::tiny(42))
    }

    #[test]
    fn generates_and_validates() {
        let net = tiny();
        assert!(net.graph.num_ases() > 10);
        assert!(net.routers.len() > 10);
        assert!(net.origins.len() > 10);
        assert_eq!(net.vps.len(), 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&TopoConfig::tiny(7));
        let b = generate(&TopoConfig::tiny(7));
        assert_eq!(a.routers.len(), b.routers.len());
        assert_eq!(a.links.len(), b.links.len());
        assert_eq!(a.ifaces.len(), b.ifaces.len());
        let c = generate(&TopoConfig::tiny(8));
        // Different seed should (overwhelmingly) differ somewhere.
        assert!(
            a.routers.len() != c.routers.len()
                || a.links.len() != c.links.len()
                || a.ifaces
                    .iter()
                    .zip(&c.ifaces)
                    .any(|(x, y)| x.addr != y.addr)
        );
    }

    #[test]
    fn every_as_adjacency_has_a_physical_link() {
        let net = tiny();
        for a in net.graph.ases() {
            for &(b, _) in net.graph.neighbors(a) {
                if a < b && !net.graph.same_org(a, b) {
                    // IXP-derived peerings may ride the shared LAN; count
                    // LAN co-membership as connectivity.
                    let direct = !net.interdomain_links_between(a, b).is_empty();
                    let via_ixp = net
                        .ixps
                        .iter()
                        .any(|x| x.members.contains(&a) && x.members.contains(&b));
                    assert!(direct || via_ixp, "no physical path for {a}-{b}");
                }
            }
        }
    }

    #[test]
    fn c2p_links_numbered_from_provider_space() {
        let net = tiny();
        let mut checked = 0;
        for l in net.interdomain_links() {
            let LinkKind::Interdomain { space_from, .. } = l.kind else {
                continue;
            };
            let parties = net.link_parties(l.id);
            if parties.len() != 2 {
                continue;
            }
            let rel = net.graph.relationship(parties[0], parties[1]);
            if rel == Some(bdrmap_types::Relationship::Customer) {
                // parties[1] is customer of parties[0]: space from provider.
                assert_eq!(space_from, parties[0], "{}: c2p space supplier", l.id);
                checked += 1;
            } else if rel == Some(bdrmap_types::Relationship::Provider) {
                assert_eq!(space_from, parties[1], "{}: c2p space supplier", l.id);
                checked += 1;
            }
        }
        assert!(checked > 5, "need c2p links to check");
    }

    #[test]
    fn vp_network_has_border_routers_and_vps_attach_inside() {
        let net = tiny();
        let borders: Vec<_> = net
            .routers
            .iter()
            .filter(|r| net.vp_siblings.contains(&r.owner) && r.is_border)
            .collect();
        assert!(!borders.is_empty());
        for vp in &net.vps {
            assert_eq!(net.routers[vp.attach.index()].owner, net.vp_as);
            assert!(
                !net.addr_index.contains_key(&vp.addr),
                "VP addr must not collide"
            );
        }
    }

    #[test]
    fn ixps_have_lans_and_members() {
        let net = tiny();
        assert_eq!(net.ixps.len(), 1);
        let ixp = &net.ixps[0];
        assert!(ixp.members.contains(&net.vp_as));
        assert!(ixp.members.len() >= 2);
        // Every member has a port on the LAN.
        let lan_link = net
            .links
            .iter()
            .find(|l| matches!(l.kind, LinkKind::IxpLan { .. }))
            .expect("LAN link");
        assert_eq!(lan_link.ifaces.len(), ixp.members.len());
        for i in &lan_link.ifaces {
            assert!(ixp.lan.contains(net.ifaces[i.index()].addr));
        }
    }

    #[test]
    fn vp_as_relationship_counts_match_config() {
        let cfg = TopoConfig::tiny(3);
        let net = generate(&cfg);
        let custs = net.graph.customers(net.vp_as).count();
        // Configured customers (IXP peering adds peers, not customers).
        assert!(custs >= cfg.vp_customers, "customers: {custs}");
        let provs = net.graph.providers(net.vp_as).count();
        assert_eq!(provs, cfg.vp_providers);
        let peers = net.graph.peers(net.vp_as).count();
        assert!(peers >= cfg.vp_peers.min(2));
    }

    #[test]
    fn origin_table_covers_stub_eyeballs() {
        let net = tiny();
        let mut stub_count = 0;
        for a in net.graph.ases() {
            if net.as_info(a).kind == AsKind::Stub {
                assert!(
                    !net.origins.prefixes_of(a).is_empty(),
                    "{a} announces nothing"
                );
                stub_count += 1;
            }
        }
        assert!(stub_count > 3);
    }

    #[test]
    fn unrouted_infra_is_absent_from_origins() {
        let net = generate(&TopoConfig::tiny(11));
        for a in net.graph.ases() {
            for p in &net.as_info(a).unannounced {
                assert!(net.origins.get(*p).is_none(), "{p} should be unrouted");
            }
        }
    }

    #[test]
    fn larger_preset_scales() {
        let net = generate(&TopoConfig::large_access_scaled(5, 0.05));
        assert!(net.graph.num_ases() > 50);
        assert_eq!(net.vps.len(), 19);
        assert!(net.validate().is_ok());
        // The major peer exists: some peer of the VP AS has many links.
        let max_links = net
            .graph
            .peers(net.vp_as)
            .map(|p| net.interdomain_links_between(net.vp_as, p).len())
            .max()
            .unwrap_or(0);
        assert!(max_links >= 3, "major peer links: {max_links}");
    }
}
