//! The ground-truth data model of the simulated Internet.

use bdrmap_types::{Addr, Asn, IfaceId, LinkId, PopId, Prefix, PrefixTrie, RouterId, VpId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Business type of an AS. Drives the generated router topology,
/// geography, interconnection density, and response-policy mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// Settlement-free top of the hierarchy; many PoPs, many customers.
    Tier1,
    /// Mid-tier transit provider.
    Transit,
    /// Large residential/eyeball access network (the paper's main
    /// measured network).
    Access,
    /// Small regional access network.
    SmallAccess,
    /// Content distribution network: many PoPs, peers widely, may anchor
    /// prefixes to individual interconnects.
    Cdn,
    /// Research and education network.
    ResearchEdu,
    /// Enterprise edge network: firewalls aggressively.
    Enterprise,
    /// Single-homed or dual-homed stub.
    Stub,
    /// An IXP's own AS (route server, peering LAN).
    IxpOperator,
}

/// How a router treats probe packets. Mirrors the behaviours in §4 and
/// §5.4.8 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponsePolicy {
    /// Answers TTL-expired, forwards everything.
    Normal,
    /// Answers TTL-expired, but discards packets that would transit
    /// deeper into its own network (enterprise edge firewall): the router
    /// is the last hop observable on paths into its AS.
    Firewall,
    /// Sends no ICMP at all and firewalls inbound probes (the paper's
    /// "silent neighbor", heuristic 8.1).
    Silent,
    /// Does not send TTL-expired, firewalls transit, but answers packets
    /// addressed *into* its network with destination-unreachable from its
    /// own address space (heuristic 8.2, the "other ICMP" row).
    EchoOtherIcmp,
    /// Answers only every `period`-th TTL-expired (ICMP rate limiting).
    RateLimited {
        /// Respond to one in `period` expired probes.
        period: u16,
    },
}

impl ResponsePolicy {
    /// Does this policy ever emit TTL-expired messages?
    pub fn sends_ttl_expired(self) -> bool {
        !matches!(self, ResponsePolicy::Silent | ResponsePolicy::EchoOtherIcmp)
    }

    /// Does this policy discard packets transiting into its network?
    pub fn firewalls_transit(self) -> bool {
        matches!(
            self,
            ResponsePolicy::Firewall | ResponsePolicy::Silent | ResponsePolicy::EchoOtherIcmp
        )
    }
}

/// How a router picks the source address of an ICMP time-exceeded
/// response (§4 challenges 2 and 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrcSelect {
    /// Use the address of the interface the probe arrived on (the common
    /// behaviour; time-exceeded "usually identifies ingress interfaces").
    Inbound,
    /// RFC 1812: use the address of the interface that transmits the
    /// response, i.e. the egress toward the prober — the mechanism that
    /// produces third-party addresses.
    TowardProber,
    /// Virtual-router behaviour: use the address of the interface that
    /// would have forwarded the probe onward (toward the *destination*),
    /// regardless of where the response leaves.
    TowardDest,
}

/// How a router assigns IP-ID values to the packets it originates. This
/// is what the Ally and MIDAR alias-resolution tests key on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IpidModel {
    /// One central counter shared by all interfaces (aliases resolvable).
    SharedCounter {
        /// Initial value.
        init: u16,
        /// Background increment per millisecond of simulated time
        /// (traffic the router sends besides our probes).
        velocity_per_ms: u16,
    },
    /// An independent counter per interface (Ally finds nothing).
    PerInterface {
        /// Background increment per millisecond.
        velocity_per_ms: u16,
    },
    /// Pseudo-random IDs (Ally must reject).
    Random,
    /// Always zero (some routers send constant IDs).
    Constant,
}

/// Source address a router uses for UDP port-unreachable responses — the
/// Mercator alias-resolution signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnreachSrc {
    /// Always the same address (its first/loopback interface): Mercator
    /// can resolve aliases.
    Canonical,
    /// The address that was probed: Mercator learns nothing.
    Probed,
    /// Does not answer UDP probes at all.
    None,
}

/// A point of presence: a location that houses routers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Pop {
    /// Identifier (dense index).
    pub id: PopId,
    /// City name (for reporting).
    pub name: String,
    /// Longitude in degrees (negative = west), the x-axis of Figure 16.
    pub longitude: f64,
    /// Latitude in degrees.
    pub latitude: f64,
}

/// A physical router.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Router {
    /// Identifier (dense index).
    pub id: RouterId,
    /// Ground-truth operator.
    pub owner: Asn,
    /// Where it sits.
    pub pop: PopId,
    /// Its interfaces.
    pub ifaces: Vec<IfaceId>,
    /// Probe-response policy.
    pub policy: ResponsePolicy,
    /// Time-exceeded source-address selection.
    pub src_select: SrcSelect,
    /// IP-ID assignment behaviour.
    pub ipid: IpidModel,
    /// UDP unreachable source behaviour (Mercator).
    pub unreach_src: UnreachSrc,
    /// True if this router has at least one interdomain interface.
    pub is_border: bool,
}

/// What role an interface plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IfaceKind {
    /// Loopback / canonical address.
    Loopback,
    /// One end of an intra-AS point-to-point link.
    Internal,
    /// One end of an interdomain point-to-point link.
    Interdomain,
    /// A port on an IXP peering LAN.
    IxpLan,
}

/// An interface: one IP address on one router.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Iface {
    /// Identifier (dense index).
    pub id: IfaceId,
    /// The router it belongs to.
    pub router: RouterId,
    /// Its address (globally unique in the simulation).
    pub addr: Addr,
    /// Role.
    pub kind: IfaceKind,
    /// The link it attaches to (`None` for loopbacks).
    pub link: Option<LinkId>,
}

/// What a link connects.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    /// Intra-AS link.
    Internal,
    /// Interdomain point-to-point link between two ASes.
    Interdomain {
        /// The AS that supplied the link subnet's address space.
        space_from: Asn,
        /// Ordinal among the interconnections between this AS pair
        /// (generator order), used for link-scoped advertisement.
        ordinal: u32,
    },
    /// A shared IXP peering LAN (more than two attached interfaces).
    IxpLan {
        /// Which IXP.
        ixp: usize,
    },
}

/// A link: a subnet joining two (or, for IXP LANs, many) interfaces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Link {
    /// Identifier (dense index).
    pub id: LinkId,
    /// What it connects.
    pub kind: LinkKind,
    /// The subnet it is numbered from (/31 or /30 point-to-point,
    /// /24 for IXP LANs).
    pub subnet: Prefix,
    /// Attached interfaces (2 for point-to-point).
    pub ifaces: Vec<IfaceId>,
    /// IGP metric (geographic distance between the endpoints' PoPs,
    /// plus a constant; used for hot-potato egress selection).
    pub metric: u32,
}

/// An Internet exchange point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ixp {
    /// IXP name.
    pub name: String,
    /// The operator's AS (may or may not originate the LAN prefix).
    pub operator: Asn,
    /// The shared peering LAN subnet.
    pub lan: Prefix,
    /// Where it is.
    pub pop: PopId,
    /// Member ASes.
    pub members: Vec<Asn>,
    /// True if the LAN prefix is announced in BGP by the operator
    /// (inconsistent in the wild, §4 challenge 6).
    pub lan_announced: bool,
}

/// A measurement vantage point: a host attached to an access router of
/// the hosting network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vp {
    /// Identifier.
    pub id: VpId,
    /// The VP host's own address.
    pub addr: Addr,
    /// The first-hop router it attaches to.
    pub attach: RouterId,
    /// The network hosting it.
    pub host_as: Asn,
}

/// How a neighbor AS spreads prefixes across its interconnections with
/// another network — the mechanism behind Figures 15 and 16 of the paper.
/// The data plane consults the *next-hop* AS's strategy when choosing
/// which of several parallel interconnections may carry a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExportStrategy {
    /// Advertise every prefix over every session (classic hot-potato
    /// handoff; the paper's Level3 needed 17 VPs because of this).
    Everywhere,
    /// Advertise each prefix over a deterministic pseudo-random subset of
    /// sessions covering roughly `percent`% of them.
    Subset {
        /// Percentage of sessions carrying each prefix.
        percent: u8,
    },
    /// Advertise each prefix over exactly one session (the paper's
    /// Akamai: one VP anywhere discovers every interconnection).
    Anchored,
    /// Split prefixes between the western and eastern halves of the
    /// session footprint (the paper's Google: west- plus east-coast VPs
    /// suffice).
    Regional,
}

/// Per-AS ground-truth info.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsInfo {
    /// The ASN.
    pub asn: Asn,
    /// Business type.
    pub kind: AsKind,
    /// Display name.
    pub name: String,
    /// Routers operated by this AS.
    pub routers: Vec<RouterId>,
    /// PoPs where this AS is present.
    pub pops: Vec<PopId>,
    /// Address space delegated to this AS by the RIR (announced or not).
    pub delegated: Vec<Prefix>,
    /// Space the AS holds but deliberately does not announce
    /// (infrastructure addressing, §5.4.3).
    pub unannounced: Vec<Prefix>,
    /// How this AS spreads prefixes across parallel interconnections.
    pub export: ExportStrategy,
    /// If this AS numbers its internal routers from provider-aggregatable
    /// space, the provider that delegated it (the Figure 12 limitation);
    /// evaluation treats border misplacements here as expected.
    pub pa_parent: Option<Asn>,
}

pub use bdrmap_types::RirRecord;

/// The generated Internet: ground truth for everything.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Internet {
    /// AS-level relationships (ground truth).
    pub graph: bdrmap_bgp::AsGraph,
    /// Prefix originations.
    pub origins: bdrmap_bgp::OriginTable,
    /// Per-AS info, indexed by ASN (slot 0 unused).
    pub as_info: Vec<AsInfo>,
    /// All PoPs.
    pub pops: Vec<Pop>,
    /// All routers.
    pub routers: Vec<Router>,
    /// All interfaces.
    pub ifaces: Vec<Iface>,
    /// All links.
    pub links: Vec<Link>,
    /// All IXPs.
    pub ixps: Vec<Ixp>,
    /// Vantage points available in the measured network.
    pub vps: Vec<Vp>,
    /// RIR delegation records (public input data for bdrmap).
    pub rir: Vec<RirRecord>,
    /// Address → interface lookup.
    pub addr_index: HashMap<Addr, IfaceId>,
    /// Destination "homing": the router that owns / is closest to a
    /// given covered prefix (link subnets and announced blocks).
    pub dest_home: PrefixTrie<RouterId>,
    /// The measured network (the AS hosting the VPs).
    pub vp_as: Asn,
    /// Sibling ASes of the measured network, including itself (the
    /// manually curated "VP ASes" input of §5.2).
    pub vp_siblings: Vec<Asn>,
}

impl Internet {
    /// The router an address belongs to, if any.
    pub fn router_of_addr(&self, a: Addr) -> Option<RouterId> {
        self.addr_index
            .get(&a)
            .map(|i| self.ifaces[i.index()].router)
    }

    /// Ground-truth owner of the router an address is on.
    pub fn owner_of_addr(&self, a: Addr) -> Option<Asn> {
        self.router_of_addr(a)
            .map(|r| self.routers[r.index()].owner)
    }

    /// Interface record for an address.
    pub fn iface_of_addr(&self, a: Addr) -> Option<&Iface> {
        self.addr_index.get(&a).map(|i| &self.ifaces[i.index()])
    }

    /// All interdomain links where one side is `a` and the other `b`.
    pub fn interdomain_links_between(&self, a: Asn, b: Asn) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| {
                matches!(l.kind, LinkKind::Interdomain { .. }) && {
                    let owners: Vec<Asn> = l
                        .ifaces
                        .iter()
                        .map(|i| self.routers[self.ifaces[i.index()].router.index()].owner)
                        .collect();
                    owners.contains(&a) && owners.contains(&b)
                }
            })
            .map(|l| l.id)
            .collect()
    }

    /// All ground-truth interdomain links adjacent to AS `a` (including
    /// IXP LAN memberships represented by the LAN link).
    pub fn border_links_of(&self, a: Asn) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| match &l.kind {
                LinkKind::Interdomain { .. } => l
                    .ifaces
                    .iter()
                    .any(|i| self.routers[self.ifaces[i.index()].router.index()].owner == a),
                _ => false,
            })
            .map(|l| l.id)
            .collect()
    }

    /// Owner ASes on an interdomain link: (near, far) sorted by ASN.
    pub fn link_parties(&self, l: LinkId) -> Vec<Asn> {
        let mut out: Vec<Asn> = self.links[l.index()]
            .ifaces
            .iter()
            .map(|i| self.routers[self.ifaces[i.index()].router.index()].owner)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Great-circle-ish distance between two PoPs (degrees, flat-earth
    /// approximation — only relative order matters for hot-potato).
    pub fn pop_distance(&self, a: PopId, b: PopId) -> f64 {
        let pa = &self.pops[a.index()];
        let pb = &self.pops[b.index()];
        let dx = pa.longitude - pb.longitude;
        let dy = pa.latitude - pb.latitude;
        (dx * dx + dy * dy).sqrt()
    }

    /// Info for one AS.
    pub fn as_info(&self, a: Asn) -> &AsInfo {
        &self.as_info[a.0 as usize]
    }

    /// Iterate over interdomain links.
    pub fn interdomain_links(&self) -> impl Iterator<Item = &Link> {
        self.links
            .iter()
            .filter(|l| matches!(l.kind, LinkKind::Interdomain { .. }))
    }

    /// Sanity checks on internal consistency; used by tests and run by
    /// the generator before returning.
    pub fn validate(&self) -> Result<(), String> {
        // Interfaces point at valid routers and are indexed.
        for ifc in &self.ifaces {
            let r = self
                .routers
                .get(ifc.router.index())
                .ok_or_else(|| format!("{}: bad router", ifc.id))?;
            if !r.ifaces.contains(&ifc.id) {
                return Err(format!("{} not listed on its router", ifc.id));
            }
            if self.addr_index.get(&ifc.addr) != Some(&ifc.id) {
                return Err(format!("{} ({}) not in addr index", ifc.id, ifc.addr));
            }
        }
        // Links have consistent subnets and endpoints.
        for l in &self.links {
            match l.kind {
                LinkKind::IxpLan { .. } => {
                    if l.ifaces.len() < 2 {
                        return Err(format!("{}: IXP LAN with < 2 ports", l.id));
                    }
                }
                _ => {
                    if l.ifaces.len() != 2 {
                        return Err(format!("{}: point-to-point with != 2 ends", l.id));
                    }
                }
            }
            for i in &l.ifaces {
                let ifc = &self.ifaces[i.index()];
                if !l.subnet.contains(ifc.addr) {
                    return Err(format!(
                        "{}: {} outside subnet {}",
                        l.id, ifc.addr, l.subnet
                    ));
                }
                if ifc.link != Some(l.id) {
                    return Err(format!("{}: back-pointer mismatch on {}", l.id, ifc.id));
                }
            }
        }
        // Routers' border flag is consistent.
        for r in &self.routers {
            let has_ext = r.ifaces.iter().any(|i| {
                matches!(
                    self.ifaces[i.index()].kind,
                    IfaceKind::Interdomain | IfaceKind::IxpLan
                )
            });
            if has_ext != r.is_border {
                return Err(format!("{}: border flag wrong", r.id));
            }
        }
        // VP AS is set and has VPs.
        if !self.vp_as.is_assigned() {
            return Err("vp_as unset".into());
        }
        if !self.vp_siblings.contains(&self.vp_as) {
            return Err("vp_siblings must include vp_as".into());
        }
        Ok(())
    }
}
