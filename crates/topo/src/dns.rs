//! Reverse-DNS synthesis.
//!
//! Operators often (but inconsistently) encode router role, city, and
//! interconnection partner into interface hostnames. The paper leans on
//! this twice: during development, DNS names were the only sanity check
//! available (§5.1 — "we found interdomain links labeled incorrectly as
//! well as links labeled with organization names rather than AS
//! numbers"); and Figure 16 geolocates border routers from the location
//! strings embedded in their reverse DNS.
//!
//! This module synthesizes a PTR database with exactly those properties:
//! configurable coverage, city codes derived from PoPs, partner labels
//! on interdomain interfaces, a fraction of *stale* labels pointing at
//! the previous partner, and a fraction of labels that use an
//! organisation nickname instead of an AS number.

use crate::model::{IfaceKind, Internet};
use bdrmap_types::{Addr, Asn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Knobs for hostname synthesis.
#[derive(Clone, Copy, Debug)]
pub struct DnsConfig {
    /// Fraction of interfaces that have a PTR record at all.
    pub coverage: f64,
    /// Fraction of interdomain interface labels that are stale (name a
    /// different network than the actual partner).
    pub stale_frac: f64,
    /// Fraction of partner labels that use an organisation nickname
    /// instead of `asNNNN`.
    pub org_name_frac: f64,
}

impl Default for DnsConfig {
    fn default() -> Self {
        DnsConfig {
            coverage: 0.7,
            stale_frac: 0.05,
            org_name_frac: 0.35,
        }
    }
}

/// A synthesized PTR database.
#[derive(Clone, Debug, Default)]
pub struct DnsDb {
    ptr: HashMap<Addr, String>,
}

/// Three-letter city code from a PoP name ("Kansas City" → "kan").
pub fn city_code(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphabetic())
        .take(3)
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Domain suffix for an AS ("CDN-A", AS17 → "cdn-a.net").
pub fn domain_of(name: &str) -> String {
    format!("{}.net", name.to_ascii_lowercase().replace([' ', '_'], "-"))
}

impl DnsDb {
    /// Synthesize hostnames for a generated Internet.
    pub fn synthesize(net: &Internet, seed: u64, cfg: &DnsConfig) -> DnsDb {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15);
        let mut ptr = HashMap::new();
        for ifc in &net.ifaces {
            if !rng.gen_bool(cfg.coverage) {
                continue;
            }
            let router = &net.routers[ifc.router.index()];
            let owner = net.as_info(router.owner);
            let pop = &net.pops[router.pop.index()];
            let code = city_code(&pop.name);
            let domain = domain_of(&owner.name);
            let host = match ifc.kind {
                IfaceKind::Loopback => {
                    format!("lo0.r{}.{code}.{domain}", router.id.0)
                }
                IfaceKind::Internal => {
                    format!("ae-{}.r{}.{code}.{domain}", ifc.id.0 % 8, router.id.0)
                }
                IfaceKind::IxpLan => {
                    format!("ixp-port.r{}.{code}.{domain}", router.id.0)
                }
                IfaceKind::Interdomain => {
                    // The address-space supplier usually names the
                    // partner on its side of the link.
                    let partner = ifc
                        .link
                        .and_then(|l| {
                            net.links[l.index()]
                                .ifaces
                                .iter()
                                .map(|i| &net.ifaces[i.index()])
                                .find(|other| other.id != ifc.id)
                        })
                        .map(|other| net.routers[other.router.index()].owner);
                    match partner {
                        Some(mut p) => {
                            if rng.gen_bool(cfg.stale_frac) {
                                // Stale record: points at some other AS
                                // entirely (a previous tenant of the
                                // port).
                                p = Asn(1 + (rng.gen::<u32>() % net.graph.num_ases() as u32));
                            }
                            let label = if rng.gen_bool(cfg.org_name_frac) {
                                net.as_info(p)
                                    .name
                                    .to_ascii_lowercase()
                                    .replace([' ', '_'], "-")
                            } else {
                                format!("as{}", p.0)
                            };
                            format!(
                                "{label}.xe-{}.r{}.{code}.{domain}",
                                ifc.id.0 % 4,
                                router.id.0
                            )
                        }
                        None => format!("xe-{}.r{}.{code}.{domain}", ifc.id.0 % 4, router.id.0),
                    }
                }
            };
            ptr.insert(ifc.addr, host);
        }
        DnsDb { ptr }
    }

    /// The PTR record for an address.
    pub fn lookup(&self, a: Addr) -> Option<&str> {
        self.ptr.get(&a).map(|s| s.as_str())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ptr.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.ptr.is_empty()
    }

    /// Parse the city code out of a hostname (the third-from-last label
    /// in this scheme: `...r7.sea.tier1-0.net`).
    pub fn city_of(host: &str) -> Option<&str> {
        let labels: Vec<&str> = host.split('.').collect();
        if labels.len() < 4 {
            return None;
        }
        Some(labels[labels.len() - 3])
    }

    /// Parse an `asNNNN` partner label out of an interdomain hostname,
    /// if the operator used AS numbers rather than nicknames.
    pub fn partner_asn(host: &str) -> Option<Asn> {
        let first = host.split('.').next()?;
        let digits = first.strip_prefix("as")?;
        digits.parse::<u32>().ok().map(Asn)
    }

    /// The operator's domain embedded in a hostname
    /// (`as1.xe-0.r9.sea.cdn-a.net` → `cdn-a.net`).
    pub fn owner_domain(host: &str) -> Option<String> {
        let labels: Vec<&str> = host.split('.').collect();
        if labels.len() < 2 {
            return None;
        }
        Some(labels[labels.len() - 2..].join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopoConfig;
    use crate::generate::generate;

    #[test]
    fn coverage_fraction_respected() {
        let net = generate(&TopoConfig::tiny(700));
        let full = DnsDb::synthesize(
            &net,
            1,
            &DnsConfig {
                coverage: 1.0,
                ..Default::default()
            },
        );
        let half = DnsDb::synthesize(
            &net,
            1,
            &DnsConfig {
                coverage: 0.5,
                ..Default::default()
            },
        );
        let none = DnsDb::synthesize(
            &net,
            1,
            &DnsConfig {
                coverage: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(full.len(), net.ifaces.len());
        assert!(none.is_empty());
        let ratio = half.len() as f64 / full.len() as f64;
        assert!((0.35..0.65).contains(&ratio), "coverage ratio {ratio}");
    }

    #[test]
    fn city_codes_parse_back() {
        assert_eq!(city_code("Seattle"), "sea");
        assert_eq!(city_code("Kansas City"), "kan");
        assert_eq!(city_code("St. Louis"), "stl");
        let net = generate(&TopoConfig::tiny(701));
        let db = DnsDb::synthesize(
            &net,
            2,
            &DnsConfig {
                coverage: 1.0,
                ..Default::default()
            },
        );
        let mut checked = 0;
        for ifc in &net.ifaces {
            let Some(host) = db.lookup(ifc.addr) else {
                continue;
            };
            let pop = net.routers[ifc.router.index()].pop;
            let expect = city_code(&net.pops[pop.index()].name);
            assert_eq!(DnsDb::city_of(host), Some(expect.as_str()), "{host}");
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn partner_labels_mostly_correct() {
        let net = generate(&TopoConfig::tiny(702));
        let db = DnsDb::synthesize(
            &net,
            3,
            &DnsConfig {
                coverage: 1.0,
                stale_frac: 0.0,
                org_name_frac: 0.0,
            },
        );
        let mut checked = 0;
        for ifc in &net.ifaces {
            if ifc.kind != IfaceKind::Interdomain {
                continue;
            }
            let Some(host) = db.lookup(ifc.addr) else {
                continue;
            };
            let Some(claimed) = DnsDb::partner_asn(host) else {
                continue;
            };
            // Ground truth partner: the other end of the link.
            let link = &net.links[ifc.link.unwrap().index()];
            let other = link
                .ifaces
                .iter()
                .map(|i| &net.ifaces[i.index()])
                .find(|o| o.id != ifc.id)
                .unwrap();
            let truth = net.routers[other.router.index()].owner;
            assert_eq!(claimed, truth, "{host}");
            checked += 1;
        }
        assert!(checked > 10, "need interdomain PTRs, got {checked}");
    }

    #[test]
    fn stale_labels_occur_when_configured() {
        let net = generate(&TopoConfig::tiny(703));
        let db = DnsDb::synthesize(
            &net,
            4,
            &DnsConfig {
                coverage: 1.0,
                stale_frac: 0.5,
                org_name_frac: 0.0,
            },
        );
        let mut wrong = 0;
        let mut total = 0;
        for ifc in &net.ifaces {
            if ifc.kind != IfaceKind::Interdomain {
                continue;
            }
            let Some(host) = db.lookup(ifc.addr) else {
                continue;
            };
            let Some(claimed) = DnsDb::partner_asn(host) else {
                continue;
            };
            let link = &net.links[ifc.link.unwrap().index()];
            let other = link
                .ifaces
                .iter()
                .map(|i| &net.ifaces[i.index()])
                .find(|o| o.id != ifc.id)
                .unwrap();
            total += 1;
            if claimed != net.routers[other.router.index()].owner {
                wrong += 1;
            }
        }
        assert!(total > 10);
        let frac = wrong as f64 / total as f64;
        assert!(
            (0.2..0.8).contains(&frac),
            "stale fraction {frac} of {total} — the §5.1 pitfall must be reproducible"
        );
    }

    #[test]
    fn org_names_defeat_naive_parsing() {
        let net = generate(&TopoConfig::tiny(704));
        let db = DnsDb::synthesize(
            &net,
            5,
            &DnsConfig {
                coverage: 1.0,
                stale_frac: 0.0,
                org_name_frac: 1.0,
            },
        );
        // With nicknames everywhere, the asNNNN parser finds nothing —
        // exactly the paper's complaint about organisation-name labels.
        for ifc in &net.ifaces {
            if ifc.kind != IfaceKind::Interdomain {
                continue;
            }
            if let Some(host) = db.lookup(ifc.addr) {
                assert_eq!(DnsDb::partner_asn(host), None, "{host}");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let net = generate(&TopoConfig::tiny(705));
        let a = DnsDb::synthesize(&net, 9, &DnsConfig::default());
        let b = DnsDb::synthesize(&net, 9, &DnsConfig::default());
        assert_eq!(a.len(), b.len());
        for ifc in &net.ifaces {
            assert_eq!(a.lookup(ifc.addr), b.lookup(ifc.addr));
        }
    }
}
