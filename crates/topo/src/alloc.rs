//! Address-space allocation.
//!
//! A bump allocator that hands out CIDR-aligned blocks from the unicast
//! IPv4 space, mimicking RIR behaviour: every delegation is recorded with
//! an opaque per-organisation ID (the public RIR delegation files bdrmap
//! consumes in §5.2/§5.4.1), and within a delegated block the generator
//! sub-allocates link subnets and loopbacks.

use crate::model::RirRecord;
use bdrmap_types::{addr, addr_bits, Addr, Prefix};

/// Allocates aligned blocks from IPv4 space, recording RIR delegations.
#[derive(Debug)]
pub struct SpaceAllocator {
    cursor: u64,
    records: Vec<RirRecord>,
}

impl Default for SpaceAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl SpaceAllocator {
    /// Start allocating at 1.0.0.0 (0/8 is reserved).
    pub fn new() -> SpaceAllocator {
        SpaceAllocator {
            cursor: 1 << 24,
            records: Vec::new(),
        }
    }

    /// Allocate an aligned `/len` block and record its delegation to
    /// `opaque_org`.
    ///
    /// # Panics
    /// Panics if IPv4 space is exhausted.
    pub fn delegate(&mut self, len: u8, opaque_org: u32) -> Prefix {
        let p = self.take(len);
        self.records.push(RirRecord {
            prefix: p,
            opaque_org,
        });
        p
    }

    /// Allocate an aligned `/len` block without an RIR record (used for
    /// sub-allocations inside an already-delegated block's organisation,
    /// or deliberately unregistered space).
    pub fn take(&mut self, len: u8) -> Prefix {
        assert!(len <= 32);
        let size = 1u64 << (32 - len);
        // Align the cursor up.
        let aligned = (self.cursor + size - 1) & !(size - 1);
        assert!(aligned + size <= 1u64 << 32, "IPv4 space exhausted");
        self.cursor = aligned + size;
        Prefix::new(addr(aligned as u32), len)
    }

    /// The RIR delegation file accumulated so far.
    pub fn records(&self) -> &[RirRecord] {
        &self.records
    }

    /// Consume the allocator, returning the delegation file.
    pub fn into_records(self) -> Vec<RirRecord> {
        self.records
    }
}

/// Sub-allocator carving small subnets (point-to-point links, loopbacks)
/// out of one delegated block, in address order.
#[derive(Debug, Clone)]
pub struct SubnetCarver {
    block: Prefix,
    cursor: u64,
}

impl SubnetCarver {
    /// Carve from `block`.
    pub fn new(block: Prefix) -> SubnetCarver {
        SubnetCarver {
            block,
            cursor: addr_bits(block.network()) as u64,
        }
    }

    /// Take the next aligned `/len` subnet, or `None` if the block is
    /// exhausted.
    pub fn take(&mut self, len: u8) -> Option<Prefix> {
        assert!(len <= 32 && len >= self.block.len());
        let size = 1u64 << (32 - len);
        let aligned = (self.cursor + size - 1) & !(size - 1);
        let end = addr_bits(self.block.broadcast()) as u64;
        if aligned + size - 1 > end {
            return None;
        }
        self.cursor = aligned + size;
        Some(Prefix::new(addr(aligned as u32), len))
    }

    /// Take a single address (a /32).
    pub fn take_addr(&mut self) -> Option<Addr> {
        self.take(32).map(|p| p.network())
    }

    /// How many addresses remain.
    pub fn remaining(&self) -> u64 {
        let end = addr_bits(self.block.broadcast()) as u64;
        (end + 1).saturating_sub(self.cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegations_are_aligned_and_disjoint() {
        let mut a = SpaceAllocator::new();
        let p1 = a.delegate(16, 1);
        let p2 = a.delegate(20, 2);
        let p3 = a.delegate(8, 3);
        for p in [p1, p2, p3] {
            // Aligned: network address is a multiple of the block size.
            assert_eq!(addr_bits(p.network()) % p.size(), 0);
        }
        assert!(!p1.covers(p2) && !p2.covers(p1));
        assert!(!p1.covers(p3) && !p3.covers(p1));
        assert_eq!(a.records().len(), 3);
    }

    #[test]
    fn take_leaves_no_record() {
        let mut a = SpaceAllocator::new();
        a.take(24);
        assert!(a.records().is_empty());
    }

    #[test]
    fn carver_exhausts_block() {
        let mut c = SubnetCarver::new("10.0.0.0/29".parse().unwrap());
        // 8 addresses: 4 /31s.
        assert!(c.take(31).is_some());
        assert!(c.take(31).is_some());
        assert!(c.take(31).is_some());
        assert!(c.take(31).is_some());
        assert!(c.take(31).is_none());
    }

    #[test]
    fn carver_mixed_sizes_align() {
        let mut c = SubnetCarver::new("10.0.0.0/24".parse().unwrap());
        let a = c.take_addr().unwrap();
        assert_eq!(a, "10.0.0.0".parse::<Addr>().unwrap());
        let s = c.take(30).unwrap();
        // /30 must be aligned: next multiple of 4 after 10.0.0.1 is 10.0.0.4.
        assert_eq!(s, "10.0.0.4/30".parse().unwrap());
        let t = c.take(31).unwrap();
        assert_eq!(t, "10.0.0.8/31".parse().unwrap());
        assert!(c.remaining() > 0);
    }
}
