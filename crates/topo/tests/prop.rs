//! Property-based tests of the generator: every randomly configured
//! Internet must satisfy the structural invariants the rest of the
//! system depends on.

use bdrmap_topo::{generate, AsKind, IfaceKind, LinkKind, PolicyMix, TopoConfig};
use bdrmap_types::Relationship;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = TopoConfig> {
    (
        any::<u64>(),
        2usize..=10, // customers
        1usize..=4,  // peers
        0usize..=2,  // providers
        2usize..=5,  // pops
        1usize..=2,  // ixps
        any::<bool>(),
        0.0f64..=0.4, // unrouted infra
        0.0f64..=0.3, // third party
    )
        .prop_map(
            |(seed, cust, peers, provs, pops, ixps, sibling, unrouted, third)| {
                let mut c = TopoConfig::tiny(seed);
                c.vp_customers = cust;
                c.vp_peers = peers;
                c.vp_providers = provs;
                c.vp_pops = pops;
                c.vp_ixps = ixps;
                c.vp_sibling = sibling;
                c.num_vps = pops.min(2);
                c.unrouted_infra_frac = unrouted;
                c.third_party_frac = third;
                c
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_internet_validates(cfg in arb_config()) {
        let net = generate(&cfg);
        prop_assert!(net.validate().is_ok());
    }

    #[test]
    fn provider_customer_relation_is_acyclic(cfg in arb_config()) {
        let net = generate(&cfg);
        prop_assert!(net.graph.provider_customer_acyclic());
    }

    #[test]
    fn every_interdomain_link_is_a_ptp_subnet(cfg in arb_config()) {
        let net = generate(&cfg);
        for l in net.interdomain_links() {
            prop_assert_eq!(l.ifaces.len(), 2);
            prop_assert!(l.subnet.len() >= 30, "{}: /{}", l.id, l.subnet.len());
            // Endpoints in different organisations.
            let owners: Vec<_> = l
                .ifaces
                .iter()
                .map(|i| net.routers[net.ifaces[i.index()].router.index()].owner)
                .collect();
            prop_assert!(!net.graph.same_org(owners[0], owners[1]));
        }
    }

    #[test]
    fn customer_links_numbered_from_provider(cfg in arb_config()) {
        let net = generate(&cfg);
        for l in net.links.iter() {
            let LinkKind::Interdomain { space_from, .. } = l.kind else { continue };
            let owners: Vec<_> = l
                .ifaces
                .iter()
                .map(|i| net.routers[net.ifaces[i.index()].router.index()].owner)
                .collect();
            if let Some(rel) = net.graph.relationship(owners[0], owners[1]) {
                match rel {
                    Relationship::Customer => prop_assert_eq!(space_from, owners[0]),
                    Relationship::Provider => prop_assert_eq!(space_from, owners[1]),
                    Relationship::Peer => {
                        prop_assert!(space_from == owners[0] || space_from == owners[1])
                    }
                }
            }
        }
    }

    #[test]
    fn loopbacks_have_no_link(cfg in arb_config()) {
        let net = generate(&cfg);
        for ifc in &net.ifaces {
            if ifc.kind == IfaceKind::Loopback {
                prop_assert!(ifc.link.is_none());
            } else {
                prop_assert!(ifc.link.is_some());
            }
        }
    }

    #[test]
    fn vp_org_routers_never_firewall(cfg in arb_config()) {
        // The hosting network must forward probes: its routers draw from
        // the backbone policy mix, which never firewalls.
        let net = generate(&cfg);
        for r in &net.routers {
            if net.vp_siblings.contains(&r.owner) {
                prop_assert!(!r.policy.firewalls_transit(), "{} firewalls", r.id);
            }
        }
    }

    #[test]
    fn stub_eyeballs_have_homes(cfg in arb_config()) {
        let net = generate(&cfg);
        for o in net.origins.iter() {
            // Every announced prefix resolves to a home router.
            let probe = o.prefix.nth(1.min(o.prefix.size() - 1));
            prop_assert!(
                net.dest_home.lookup(probe).is_some(),
                "{} has no destination home",
                o.prefix
            );
        }
    }

    #[test]
    fn all_normal_policy_flows_through(seed in any::<u64>()) {
        let mut cfg = TopoConfig::tiny(seed);
        cfg.customer_policy = PolicyMix::all_normal();
        let net = generate(&cfg);
        let firewalled = net
            .routers
            .iter()
            .filter(|r| r.policy.firewalls_transit())
            .count();
        prop_assert_eq!(firewalled, 0);
    }

    #[test]
    fn sibling_shares_org_and_is_customer(seed in any::<u64>()) {
        let mut cfg = TopoConfig::tiny(seed);
        cfg.vp_sibling = true;
        let net = generate(&cfg);
        prop_assert_eq!(net.vp_siblings.len(), 2);
        let (a, b) = (net.vp_siblings[0], net.vp_siblings[1]);
        prop_assert!(net.graph.same_org(a, b));
        prop_assert_eq!(net.graph.relationship(a, b), Some(Relationship::Customer));
        // No physical interdomain link between the siblings.
        prop_assert!(net.interdomain_links_between(a, b).is_empty());
        // But internal connectivity exists (some internal link joins
        // routers of different owners within the org).
        let joined = net.links.iter().any(|l| {
            l.kind == LinkKind::Internal && {
                let o0 = net.routers[net.ifaces[l.ifaces[0].index()].router.index()].owner;
                let o1 = net.routers[net.ifaces[l.ifaces[1].index()].router.index()].owner;
                o0 != o1
            }
        });
        prop_assert!(joined, "sibling not internally connected");
    }

    #[test]
    fn ixp_members_have_lan_ports(cfg in arb_config()) {
        let net = generate(&cfg);
        for ixp in &net.ixps {
            for &m in &ixp.members {
                // The port may sit on a router of a sibling AS of the
                // member (a conglomerate's exchange presence held by its
                // regional subsidiary).
                let has_port = net.ifaces.iter().any(|i| {
                    i.kind == IfaceKind::IxpLan
                        && ixp.lan.contains(i.addr)
                        && net
                            .graph
                            .same_org(net.routers[i.router.index()].owner, m)
                });
                prop_assert!(has_port, "{m} has no port at {}", ixp.name);
            }
        }
    }

    #[test]
    fn kinds_are_internally_consistent(cfg in arb_config()) {
        let net = generate(&cfg);
        for a in net.graph.ases() {
            let info = net.as_info(a);
            match info.kind {
                AsKind::Tier1 => {
                    prop_assert_eq!(net.graph.providers(a).count(), 0, "{} has a provider", a)
                }
                AsKind::Stub | AsKind::Enterprise => {
                    prop_assert_eq!(
                        net.graph.customers(a).count(),
                        0,
                        "{} has customers",
                        a
                    )
                }
                _ => {}
            }
        }
    }
}
