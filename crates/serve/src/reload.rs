//! Reload circuit breaker.
//!
//! Reloads are the one mutating operation bdrmapd accepts, and a bad
//! snapshot (corrupt file, undecodable store, panicking index build)
//! must not be able to take the daemon down or grind it with futile
//! rebuild attempts. The breaker wraps reload admission:
//!
//! ```text
//!            failure < threshold
//!          ┌───────────────────┐
//!          ▼                   │
//!      ┌────────┐  Nth fail ┌──┴───┐
//!      │ Closed │──────────▶│ Open │◀──┐
//!      └────────┘           └──┬───┘   │ fail
//!          ▲                   │cooldown
//!          │ success        ┌──▼───────┐
//!          └────────────────┤ HalfOpen │
//!                           └──────────┘
//! ```
//!
//! While `Open`, reload requests are refused immediately and the
//! last-good index stays pinned. After the cooldown one probe attempt
//! is admitted (`HalfOpen`); its outcome closes or re-opens the
//! breaker. Time is passed in by the caller so the machine is
//! deterministic under test.

use std::time::{Duration, Instant};

/// Breaker position, reported over the wire as a `u8` code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Reloads flow normally.
    Closed,
    /// Reloads are refused; the last-good snapshot is pinned.
    Open,
    /// One probe reload is admitted after the cooldown.
    HalfOpen,
}

impl BreakerState {
    /// Wire code: 0 closed, 1 open, 2 half-open.
    pub fn code(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// The state machine. Callers gate each attempt on
/// [`allow_attempt`](Breaker::allow_attempt) and report outcomes via
/// [`on_success`](Breaker::on_success) / [`on_failure`](Breaker::on_failure).
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    consecutive: u32,
    state: BreakerState,
    opened_at: Option<Instant>,
}

impl Breaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// admits a probe after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive: 0,
            state: BreakerState::Closed,
            opened_at: None,
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Wire code of the current position.
    pub fn state_code(&self) -> u8 {
        self.state.code()
    }

    /// May a reload run right now? Transitions `Open → HalfOpen` once
    /// the cooldown has elapsed.
    pub fn allow_attempt(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let elapsed_ok = self
                    .opened_at
                    .map(|t| now.duration_since(t) >= self.cooldown)
                    .unwrap_or(true);
                if elapsed_ok {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A reload completed and swapped in: close and reset.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive = 0;
        self.opened_at = None;
    }

    /// A reload failed (after its own retries). In `HalfOpen` the probe
    /// failed, so re-open immediately; in `Closed` count toward the
    /// threshold.
    pub fn on_failure(&mut self, now: Instant) {
        self.consecutive = self.consecutive.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = Some(now);
            }
            BreakerState::Closed => {
                if self.consecutive >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(now);
                }
            }
            BreakerState::Open => {
                self.opened_at = Some(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = Breaker::new(3, Duration::from_secs(60));
        let now = t0();
        for _ in 0..2 {
            assert!(b.allow_attempt(now));
            b.on_failure(now);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.allow_attempt(now));
        b.on_failure(now);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow_attempt(now));
    }

    #[test]
    fn success_resets_the_count() {
        let mut b = Breaker::new(3, Duration::from_secs(60));
        let now = t0();
        b.on_failure(now);
        b.on_failure(now);
        b.on_success();
        b.on_failure(now);
        b.on_failure(now);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_admits_one_probe() {
        let mut b = Breaker::new(1, Duration::from_millis(50));
        let now = t0();
        b.on_failure(now);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow_attempt(now + Duration::from_millis(10)));
        // After the cooldown: exactly one probe admitted, half-open.
        assert!(b.allow_attempt(now + Duration::from_millis(60)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = Breaker::new(1, Duration::from_millis(50));
        let now = t0();
        b.on_failure(now);
        assert!(b.allow_attempt(now + Duration::from_millis(60)));
        b.on_failure(now + Duration::from_millis(61));
        assert_eq!(b.state(), BreakerState::Open);
        // The cooldown restarts from the new failure.
        assert!(!b.allow_attempt(now + Duration::from_millis(80)));
        assert!(b.allow_attempt(now + Duration::from_millis(120)));
    }

    #[test]
    fn half_open_success_closes() {
        let mut b = Breaker::new(1, Duration::from_millis(50));
        let now = t0();
        b.on_failure(now);
        assert!(b.allow_attempt(now + Duration::from_millis(60)));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.state_code(), 0);
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(BreakerState::Closed.code(), 0);
        assert_eq!(BreakerState::Open.code(), 1);
        assert_eq!(BreakerState::HalfOpen.code(), 2);
    }
}
