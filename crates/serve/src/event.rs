//! The epoll readiness-loop backend (Linux only).
//!
//! Shared-nothing event loops replace the blocking worker pool: each
//! loop owns a private epoll instance, a slab of non-blocking
//! connections, and a hashed [`TimerWheel`] for deadlines. All loops
//! register the *shared* listening socket level-triggered and accept
//! until `EAGAIN` — an accept-and-dispatch shard without
//! `SO_REUSEPORT`, so ephemeral-port test servers keep working
//! unchanged. The policy contract is identical to the threads backend:
//!
//! - **Shedding** at `workers + queue` open connections: one
//!   `Overload` frame, then close (the same budget the pool enforces
//!   with its bounded channel).
//! - **Slow-loris eviction**: a partial frame schedules a wheel entry;
//!   expiry re-validates against live state (lazy cancellation), so
//!   idle connections own no timers and cost zero proto work.
//! - **Flood/oversize eviction** per 4 KiB read chunk, exactly like
//!   the blocking [`Conn`](crate::conn::Conn) extraction policy.
//! - **Graceful drain**: on shutdown each loop answers the frames its
//!   connections already delivered, flushes, and closes.
//! - **Chaos rewiring**: `on_accept`/`on_frame`/`write_plan` charge at
//!   the same deterministic events as the threads backend; scripted
//!   panics kill the whole loop and the supervisor attributes the
//!   restart via [`ChaosNet::scripted_fired`].
//!
//! Responses queue into per-connection out-buffers and flush with
//! vectored `writev` bursts; `EPOLLOUT` interest is registered only
//! while bytes are pending. A chaos `Split` plan inserts a flush
//! barrier so the halves leave in separate syscalls.

#![cfg(target_os = "linux")]

use crate::conn::WritePlan;
use crate::http;
use crate::proto::{Request, Response};
use crate::server::{handle, LoopMetrics, Shared, SUPERVISE_POLL};
use crate::timer::TimerWheel;
use bdrmap_core::AnyIndex;
use bdrmap_types::sys::{
    writev_fd, Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use bdrmap_types::wire::write_frame;
use bdrmap_types::{SwapCell, SwapReader};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Epoll wait bound; also the shutdown-notice and timer-advance cadence.
const WAIT_MS: i32 = 25;
/// Timer-wheel granularity.
const WHEEL_TICK: Duration = Duration::from_millis(10);
/// Timer-wheel slots (horizon = slots × tick = 2.56 s per revolution).
const WHEEL_SLOTS: usize = 256;
/// Readiness events drained per `epoll_wait`.
const MAX_EVENTS: usize = 1024;
/// Accepts per listener wakeup, so one flood can't starve served conns.
const ACCEPT_BATCH: usize = 256;
/// Read chunk size — matches the blocking backend so the per-chunk
/// flood/oversize policy triggers at identical byte counts.
const READ_CHUNK: usize = 4096;
/// Per-connection bytes per wakeup before yielding to other conns.
const READ_SWEEP_MAX: usize = 256 * 1024;
/// Concurrent HTTP metrics connections per loop (scrapes are one
/// round trip; anything past this is dropped, not queued).
const HTTP_CAP: usize = 64;
/// How long a loop parks a listener after a fatal `accept` error
/// (EMFILE/ENFILE fd exhaustion). A level-triggered listener with a
/// backlog stays ready forever, so leaving it registered while accept
/// cannot succeed spins the loop at 100% CPU doing nothing.
const ACCEPT_RETRY: Duration = Duration::from_millis(250);

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_METRICS: u64 = u64::MAX - 1;

fn token_of(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn split_token(tok: u64) -> (usize, u32) {
    ((tok & 0xffff_ffff) as usize, (tok >> 32) as u32)
}

/// Spawn `nloops` event loops and supervise them exactly like the
/// threads backend's components: heartbeat, join the dead, respawn
/// after a capped doubling backoff. A loop that died of a scripted
/// chaos panic is attributed to the acceptor/worker restart counter it
/// corresponds to, keeping the watchdog contract byte-compatible.
pub(crate) fn supervise_loops(
    shared: Arc<Shared>,
    listener: Arc<TcpListener>,
    metrics_listener: Option<Arc<TcpListener>>,
    nloops: usize,
    backoff0: Duration,
    backoff_cap: Duration,
) {
    let spawn = |i: usize| -> JoinHandle<()> {
        let shared = Arc::clone(&shared);
        let reader = SwapCell::reader(&shared.cell);
        let listener = Arc::clone(&listener);
        let ml = if i == 0 {
            metrics_listener.clone()
        } else {
            None
        };
        std::thread::spawn(move || run_loop(shared, reader, listener, ml, i))
    };
    let mut loops: Vec<JoinHandle<()>> = (0..nloops).map(spawn).collect();
    let mut backoff = backoff0;
    // Once per scripted panic kind: later deaths attribute as plain
    // worker restarts.
    let mut attributed = [false; 2];
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(SUPERVISE_POLL);
        shared.metrics.watchdog_heartbeats.inc();
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        for (i, slot) in loops.iter_mut().enumerate() {
            if slot.is_finished() && !shared.stop.load(Ordering::SeqCst) {
                let scripted = shared
                    .chaos
                    .as_ref()
                    .map(|c| c.scripted_fired())
                    .unwrap_or((false, false));
                let component = if scripted.0 && !attributed[0] {
                    attributed[0] = true;
                    0 // acceptor
                } else if scripted.1 && !attributed[1] {
                    attributed[1] = true;
                    1 // worker
                } else {
                    1
                };
                shared.metrics.watchdog_restarts[component].inc();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(backoff_cap);
                let dead = std::mem::replace(slot, spawn(i));
                let _ = dead.join();
            }
        }
    }
    for h in loops {
        let _ = h.join();
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnKind {
    Proto,
    Http,
}

/// Out-queue chunk list with a head offset; `barrier` chunks force a
/// flush boundary (chaos split plans) so the next bytes leave in a
/// separate syscall.
#[derive(Default)]
struct OutQueue {
    chunks: VecDeque<(Vec<u8>, bool)>,
    head: usize,
    len: usize,
}

impl OutQueue {
    fn push(&mut self, bytes: Vec<u8>, barrier: bool) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        self.chunks.push_back((bytes, barrier));
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Collect IoSlices up to the first barrier (inclusive) or the
    /// writev fan-in cap. Returns the byte count submitted.
    fn gather<'a>(&'a self, out: &mut Vec<IoSlice<'a>>) -> usize {
        let mut total = 0;
        for (i, (chunk, barrier)) in self.chunks.iter().enumerate() {
            let start = if i == 0 { self.head } else { 0 };
            total += chunk.len() - start;
            out.push(IoSlice::new(&chunk[start..]));
            if *barrier || out.len() >= 64 {
                break;
            }
        }
        total
    }

    fn consume(&mut self, mut n: usize) {
        self.len -= n.min(self.len);
        while n > 0 {
            let Some((front, _)) = self.chunks.front() else {
                return;
            };
            let avail = front.len() - self.head;
            if n >= avail {
                n -= avail;
                self.head = 0;
                self.chunks.pop_front();
            } else {
                self.head += n;
                return;
            }
        }
    }

    /// Remaining bytes as one contiguous buffer (drain-time flush).
    fn take_bytes(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for (i, (chunk, _)) in self.chunks.iter().enumerate() {
            let start = if i == 0 { self.head } else { 0 };
            out.extend_from_slice(&chunk[start..]);
        }
        self.chunks.clear();
        self.head = 0;
        self.len = 0;
        out
    }
}

struct EConn {
    stream: TcpStream,
    fd: RawFd,
    kind: ConnKind,
    inbuf: crate::conn::FrameBuf,
    /// HTTP request head (metrics connections only).
    head: Vec<u8>,
    out: OutQueue,
    /// When the oldest unanswered partial frame started arriving
    /// (for HTTP: when the connection was accepted).
    partial_since: Option<Instant>,
    /// When the out-queue last became non-empty.
    write_since: Option<Instant>,
    /// Currently-registered epoll interest bits.
    interest: u32,
    /// Flush pending bytes, then close; reads are finished.
    closing: bool,
    /// Peer half-closed its sending side (RDHUP / EOF).
    read_shut: bool,
}

enum Fate {
    Keep,
    Close,
}

enum FrameFail {
    /// Policy eviction started; goodbye frame queued, stop reading.
    Evicted,
    /// Chaos reset killed the socket outright.
    Reset,
}

struct Slab {
    entries: Vec<Option<EConn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            entries: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, conn: EConn) -> (usize, u32) {
        if let Some(idx) = self.free.pop() {
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.entries[idx] = Some(conn);
            (idx, self.gens[idx])
        } else {
            self.entries.push(Some(conn));
            self.gens.push(0);
            (self.entries.len() - 1, 0)
        }
    }

    fn get_mut(&mut self, idx: usize, gen: u32) -> Option<&mut EConn> {
        if idx >= self.entries.len() || self.gens[idx] != gen {
            return None;
        }
        self.entries[idx].as_mut()
    }

    fn remove(&mut self, idx: usize) -> Option<EConn> {
        let conn = self.entries.get_mut(idx)?.take()?;
        self.free.push(idx);
        Some(conn)
    }
}

struct LoopState {
    shared: Arc<Shared>,
    reader: SwapReader<AnyIndex>,
    listener: Arc<TcpListener>,
    metrics_listener: Option<Arc<TcpListener>>,
    lm: LoopMetrics,
    ep: Epoll,
    slab: Slab,
    wheel: TimerWheel,
    /// Admitted proto connections alive on this loop; reconciled
    /// against `Shared::open_conns` on drop so a panicking loop (chaos
    /// scripted crash) can't leak budget and shed forever after.
    proto_live: usize,
    http_live: usize,
    /// Listener deregistered after fd exhaustion; a wheel entry
    /// re-registers it once [`ACCEPT_RETRY`] has passed.
    listener_parked: bool,
    metrics_parked: bool,
}

impl Drop for LoopState {
    fn drop(&mut self) {
        self.shared
            .open_conns
            .fetch_sub(self.proto_live, Ordering::SeqCst);
    }
}

fn run_loop(
    shared: Arc<Shared>,
    reader: SwapReader<AnyIndex>,
    listener: Arc<TcpListener>,
    metrics_listener: Option<Arc<TcpListener>>,
    index: usize,
) {
    let lm = shared.loop_metrics[index].clone();
    let ep = match Epoll::new() {
        Ok(ep) => ep,
        Err(_) => {
            shared.metrics.setup_errors.inc();
            return;
        }
    };
    if ep
        .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
        .is_err()
    {
        shared.metrics.setup_errors.inc();
        return;
    }
    if let Some(ml) = &metrics_listener {
        if ep.add(ml.as_raw_fd(), EPOLLIN, TOKEN_METRICS).is_err() {
            shared.metrics.setup_errors.inc();
        }
    }
    let mut st = LoopState {
        shared,
        reader,
        listener,
        metrics_listener,
        lm,
        ep,
        slab: Slab::new(),
        wheel: TimerWheel::new(WHEEL_TICK, WHEEL_SLOTS, Instant::now()),
        proto_live: 0,
        http_live: 0,
        listener_parked: false,
        metrics_parked: false,
    };
    st.run();
}

impl LoopState {
    fn run(&mut self) {
        let mut events = vec![EpollEvent::default(); MAX_EVENTS];
        let mut expired: Vec<u64> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                self.drain();
                return;
            }
            let n = self.ep.wait(&mut events, WAIT_MS).unwrap_or_default();
            self.lm.wakeups.inc();
            if n > 0 {
                self.lm.events.add(n as u64);
                self.lm.batch.record(n as u64);
            }
            for ev in events.iter().take(n) {
                let (bits, tok) = (ev.events, ev.data);
                match tok {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_METRICS => self.accept_metrics_ready(),
                    tok => self.conn_ready(tok, bits),
                }
            }
            expired.clear();
            self.wheel.advance(Instant::now(), &mut expired);
            for &tok in &expired {
                self.timer_fired(tok);
            }
        }
    }

    // ---- admission ---------------------------------------------------

    fn accept_ready(&mut self) {
        for _ in 0..ACCEPT_BATCH {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.lm.accepts.inc();
                    self.admit_proto(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Typically EMFILE/ENFILE: accept cannot succeed
                    // until an fd frees up, but the backlog keeps the
                    // listener level-triggered-ready. Park it and let
                    // the wheel re-register after a breather.
                    self.park_listener();
                    return;
                }
            }
        }
    }

    fn park_listener(&mut self) {
        if self.listener_parked {
            return;
        }
        self.shared.metrics.setup_errors.inc();
        let _ = self.ep.del(self.listener.as_raw_fd());
        self.listener_parked = true;
        self.wheel
            .schedule(Instant::now() + ACCEPT_RETRY, TOKEN_LISTENER);
    }

    fn unpark_listener(&mut self) {
        if !self.listener_parked {
            return;
        }
        match self
            .ep
            .add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
        {
            Ok(()) => {
                self.listener_parked = false;
                self.accept_ready();
            }
            Err(_) => {
                // Epoll itself is out of fds; keep waiting.
                self.wheel
                    .schedule(Instant::now() + ACCEPT_RETRY, TOKEN_LISTENER);
            }
        }
    }

    fn admit_proto(&mut self, mut stream: TcpStream) {
        if let Some(chaos) = &self.shared.chaos {
            let action = chaos.on_accept();
            if action.panic {
                // Scripted crash: the supervisor notices the dead loop,
                // attributes it to the acceptor, and respawns. The
                // accepted connection dies un-acked; clients retry.
                panic!("chaos: scripted acceptor crash");
            }
            if let Some(d) = action.delay {
                std::thread::sleep(d);
            }
        }
        let prev = self.shared.open_conns.fetch_add(1, Ordering::SeqCst);
        if prev >= self.shared.conn_budget {
            self.shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            self.shared.metrics.sheds.inc();
            // Overload shedding: one frame, then close. Freshly accepted
            // sockets are blocking (accept does not inherit the
            // listener's non-blocking flag); the timeout stops a
            // zero-window peer pinning the loop.
            let _ = stream.set_write_timeout(Some(self.shared.limits.write_deadline));
            let _ = write_frame(&mut stream, &Response::Overload.encode());
            return;
        }
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            self.shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            self.shared.metrics.setup_errors.inc();
            return;
        }
        let fd = stream.as_raw_fd();
        let conn = EConn {
            stream,
            fd,
            kind: ConnKind::Proto,
            inbuf: crate::conn::FrameBuf::new(
                self.shared.limits.max_frame,
                self.shared.limits.max_inflight,
            ),
            head: Vec::new(),
            out: OutQueue::default(),
            partial_since: None,
            write_since: None,
            interest: EPOLLIN | EPOLLRDHUP,
            closing: false,
            read_shut: false,
        };
        let (idx, gen) = self.slab.insert(conn);
        self.proto_live += 1;
        if self
            .ep
            .add(fd, EPOLLIN | EPOLLRDHUP, token_of(idx, gen))
            .is_err()
        {
            self.slab.remove(idx);
            self.proto_live -= 1;
            self.shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            self.shared.metrics.setup_errors.inc();
        }
    }

    fn accept_metrics_ready(&mut self) {
        let Some(ml) = self.metrics_listener.clone() else {
            return;
        };
        for _ in 0..ACCEPT_BATCH {
            match ml.accept() {
                Ok((stream, _)) => {
                    if self.http_live >= HTTP_CAP || stream.set_nonblocking(true).is_err() {
                        continue; // drop: scrapers retry
                    }
                    let fd = stream.as_raw_fd();
                    let now = Instant::now();
                    let conn = EConn {
                        stream,
                        fd,
                        kind: ConnKind::Http,
                        inbuf: crate::conn::FrameBuf::new(0, 1),
                        head: Vec::new(),
                        out: OutQueue::default(),
                        partial_since: Some(now),
                        write_since: None,
                        interest: EPOLLIN | EPOLLRDHUP,
                        closing: false,
                        read_shut: false,
                    };
                    let (idx, gen) = self.slab.insert(conn);
                    self.http_live += 1;
                    let tok = token_of(idx, gen);
                    if self.ep.add(fd, EPOLLIN | EPOLLRDHUP, tok).is_err() {
                        self.slab.remove(idx);
                        self.http_live -= 1;
                        continue;
                    }
                    // Scrapes get the request deadline too, so a stalled
                    // scraper can't pin an fd forever.
                    self.wheel
                        .schedule(now + self.shared.limits.request_deadline, tok);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    if !self.metrics_parked {
                        let _ = self.ep.del(ml.as_raw_fd());
                        self.metrics_parked = true;
                        self.wheel
                            .schedule(Instant::now() + ACCEPT_RETRY, TOKEN_METRICS);
                    }
                    return;
                }
            }
        }
    }

    fn unpark_metrics(&mut self) {
        if !self.metrics_parked {
            return;
        }
        let Some(ml) = self.metrics_listener.clone() else {
            return;
        };
        if self.ep.add(ml.as_raw_fd(), EPOLLIN, TOKEN_METRICS).is_ok() {
            self.metrics_parked = false;
            self.accept_metrics_ready();
        } else {
            self.wheel
                .schedule(Instant::now() + ACCEPT_RETRY, TOKEN_METRICS);
        }
    }

    // ---- readiness dispatch ------------------------------------------

    fn conn_ready(&mut self, tok: u64, bits: u32) {
        let (idx, gen) = split_token(tok);
        let Some(conn) = self.slab.get_mut(idx, gen) else {
            return;
        };
        let fate = match conn.kind {
            ConnKind::Proto => proto_ready(
                &self.shared,
                &self.reader,
                &self.lm,
                &mut self.wheel,
                conn,
                tok,
                bits,
            ),
            ConnKind::Http => http_ready(&self.shared, conn, bits),
        };
        match fate {
            Fate::Keep => self.sync_interest(idx, gen, tok),
            Fate::Close => self.close(idx),
        }
    }

    fn sync_interest(&mut self, idx: usize, gen: u32, tok: u64) {
        let Some(conn) = self.slab.get_mut(idx, gen) else {
            return;
        };
        let mut want = 0;
        if !conn.closing {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if !conn.out.is_empty() {
            want |= EPOLLOUT;
        }
        if want == 0 {
            // Closing with nothing left to flush.
            self.close(idx);
            return;
        }
        if want != conn.interest {
            let fd = conn.fd;
            conn.interest = want;
            if self.ep.modify(fd, want, tok).is_err() {
                self.close(idx);
            }
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(conn) = self.slab.remove(idx) else {
            return;
        };
        let _ = self.ep.del(conn.fd);
        match conn.kind {
            ConnKind::Proto => {
                self.proto_live -= 1;
                self.shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            }
            ConnKind::Http => self.http_live -= 1,
        }
        // `conn.stream` drops here and closes the fd.
    }

    // ---- timers ------------------------------------------------------

    fn timer_fired(&mut self, tok: u64) {
        match tok {
            TOKEN_LISTENER => {
                self.unpark_listener();
                return;
            }
            TOKEN_METRICS => {
                self.unpark_metrics();
                return;
            }
            _ => {}
        }
        let (idx, gen) = split_token(tok);
        let deadlines = (
            self.shared.limits.request_deadline,
            self.shared.limits.write_deadline,
        );
        let Some(conn) = self.slab.get_mut(idx, gen) else {
            return; // lazily-cancelled: the conn is gone or reused
        };
        let now = Instant::now();
        let (request_deadline, write_deadline) = deadlines;
        if conn.kind == ConnKind::Http {
            if let Some(t0) = conn.partial_since {
                if now >= t0 + request_deadline {
                    self.close(idx);
                }
            }
            return;
        }
        if let Some(t0) = conn.partial_since {
            if now >= t0 + request_deadline {
                // Slow loris: a started frame outlived its deadline.
                self.shared.metrics.evicted_slow.inc();
                begin_eviction(conn, "request deadline exceeded");
                conn.write_since = Some(now);
                let due = now + write_deadline;
                self.wheel.schedule(due, tok);
                let _ = flush_out(&self.lm, conn);
                if conn.out.is_empty() {
                    self.close(idx);
                } else {
                    self.sync_interest(idx, gen, tok);
                }
                return;
            }
        }
        if let Some(w0) = conn.write_since {
            if now >= w0 + write_deadline {
                // Write-stalled peer: the blocking backend's write
                // timeout would error here; close without ceremony.
                self.close(idx);
                return;
            }
        }
        // Re-validate failed (deadline moved or cleared): reschedule at
        // the earliest still-pending deadline, if any.
        let next = [
            conn.partial_since.map(|t| t + request_deadline),
            conn.write_since.map(|t| t + write_deadline),
        ]
        .into_iter()
        .flatten()
        .min();
        if let Some(due) = next {
            self.wheel.schedule(due, tok);
        }
    }

    // ---- graceful drain ----------------------------------------------

    /// Answer the frames every connection already delivered, flush, and
    /// close. Mirrors the threads backend: requests buffered (or
    /// already sitting in the kernel receive buffer) get answers; the
    /// peer sees them before EOF.
    fn drain(&mut self) {
        let indices: Vec<usize> = (0..self.slab.entries.len())
            .filter(|&i| self.slab.entries[i].is_some())
            .collect();
        for idx in indices {
            let Some(mut conn) = self.slab.remove(idx) else {
                continue;
            };
            let _ = self.ep.del(conn.fd);
            if conn.kind == ConnKind::Proto {
                if !conn.closing {
                    let mut total = 0usize;
                    let mut chunk = [0u8; READ_CHUNK];
                    loop {
                        match conn.stream.read(&mut chunk) {
                            Ok(0) => break,
                            Ok(n) => {
                                self.lm.reads.inc();
                                conn.inbuf.push(&chunk[..n]);
                                if process_frames(&self.shared, &self.reader, &self.lm, &mut conn)
                                    .is_err()
                                {
                                    break;
                                }
                                total += n;
                                if total >= READ_SWEEP_MAX {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                    }
                }
                self.shared.metrics.drained.inc();
                self.proto_live -= 1;
                self.shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            } else {
                self.http_live -= 1;
            }
            let bytes = conn.out.take_bytes();
            if !bytes.is_empty() {
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn
                    .stream
                    .set_write_timeout(Some(self.shared.limits.write_deadline));
                let _ = conn.stream.write_all(&bytes);
            }
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

// ---- per-connection state machines (free functions keep the borrows
// of `LoopState`'s fields disjoint) -----------------------------------

fn proto_ready(
    shared: &Shared,
    reader: &SwapReader<AnyIndex>,
    lm: &LoopMetrics,
    wheel: &mut TimerWheel,
    conn: &mut EConn,
    tok: u64,
    bits: u32,
) -> Fate {
    if bits & EPOLLERR != 0 {
        return Fate::Close;
    }
    if !conn.closing && bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
        let mut total = 0usize;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_shut = true;
                    break;
                }
                Ok(n) => {
                    lm.reads.inc();
                    conn.inbuf.push(&chunk[..n]);
                    // Extract per chunk: the flood/oversize policy fires
                    // at the same byte boundaries as the blocking
                    // backend, and complete frames in one chunk decode
                    // as one batch.
                    match process_frames(shared, reader, lm, conn) {
                        Ok(()) => {}
                        Err(FrameFail::Evicted) => break,
                        Err(FrameFail::Reset) => return Fate::Close,
                    }
                    total += n;
                    if total >= READ_SWEEP_MAX {
                        break; // level-triggered epoll re-notifies
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
        if !conn.closing {
            if conn.inbuf.has_bytes() {
                if conn.partial_since.is_none() {
                    let now = Instant::now();
                    conn.partial_since = Some(now);
                    wheel.schedule(now + shared.limits.request_deadline, tok);
                }
            } else {
                conn.partial_since = None;
            }
        }
    }
    if flush_out(lm, conn).is_err() {
        return Fate::Close;
    }
    if conn.out.is_empty() {
        conn.write_since = None;
    } else if conn.write_since.is_none() {
        let now = Instant::now();
        conn.write_since = Some(now);
        wheel.schedule(now + shared.limits.write_deadline, tok);
    }
    if conn.read_shut && !conn.closing {
        if conn.inbuf.has_bytes() {
            // Mid-frame EOF: nothing useful can follow.
            return Fate::Close;
        }
        // TCP half-close (EPOLLRDHUP): the peer is done sending but
        // still reads; flush the answers, then close our side too.
        conn.closing = true;
    }
    if conn.closing && conn.out.is_empty() {
        return Fate::Close;
    }
    Fate::Keep
}

fn process_frames(
    shared: &Shared,
    reader: &SwapReader<AnyIndex>,
    lm: &LoopMetrics,
    conn: &mut EConn,
) -> Result<(), FrameFail> {
    let frames = match conn.inbuf.extract() {
        Ok(frames) => frames,
        Err(_) => {
            shared.metrics.evicted_flood.inc();
            begin_eviction(conn, "frame limits exceeded");
            return Err(FrameFail::Evicted);
        }
    };
    if frames.is_empty() {
        return Ok(());
    }
    lm.frames.add(frames.len() as u64);
    for payload in frames {
        if let Some(chaos) = &shared.chaos {
            // One draw per received frame — the same deterministic
            // event count the threads backend charges.
            let action = chaos.on_frame();
            if action.panic {
                // Scripted crash before any response: the query is
                // un-acked, the client retries, the supervisor respawns
                // this loop and attributes a worker restart.
                panic!("chaos: scripted worker crash");
            }
            if let Some(d) = action.stall {
                std::thread::sleep(d);
            }
        }
        let response = match Request::decode(&payload) {
            Ok(req) => handle(shared, reader, req),
            Err(e) => {
                shared.metrics.malformed.inc();
                Response::Error(format!("malformed request: {e}"))
            }
        };
        queue_response(shared, conn, &response.encode())?;
    }
    Ok(())
}

/// Frame a response payload into the out-queue, honouring the chaos
/// write plan: splits become flush barriers (two syscalls), resets
/// write the cut prefix and kill the socket.
fn queue_response(shared: &Shared, conn: &mut EConn, payload: &[u8]) -> Result<(), FrameFail> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    let plan = match &shared.chaos {
        Some(c) => c.write_plan(frame.len()),
        None => WritePlan::Intact,
    };
    match plan {
        WritePlan::Intact => {
            conn.out.push(frame, false);
            Ok(())
        }
        WritePlan::Split(cut) if cut > 0 && cut < frame.len() => {
            let tail = frame.split_off(cut);
            conn.out.push(frame, true);
            conn.out.push(tail, false);
            Ok(())
        }
        WritePlan::Split(_) => {
            conn.out.push(frame, false);
            Ok(())
        }
        WritePlan::ResetAfter(cut) => {
            let cut = cut.min(frame.len());
            let _ = (&conn.stream).write(&frame[..cut]);
            let _ = conn.stream.shutdown(Shutdown::Both);
            Err(FrameFail::Reset)
        }
    }
}

/// Queue the goodbye frame and stop reading; the connection closes once
/// the flush lands (or its write deadline expires). Bypasses the chaos
/// write plan, like the blocking backend's `evict`.
fn begin_eviction(conn: &mut EConn, reason: &str) {
    let payload = Response::Error(reason.to_string()).encode();
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    conn.out.push(frame, false);
    conn.closing = true;
}

/// Vectored flush: submit response bursts with `writev` until the
/// queue empties or the kernel buffer fills. `Ok` means "keep the
/// connection"; the caller re-arms `EPOLLOUT` when bytes remain.
fn flush_out(lm: &LoopMetrics, conn: &mut EConn) -> io::Result<()> {
    loop {
        if conn.out.is_empty() {
            return Ok(());
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(16);
        let submitted = conn.out.gather(&mut slices);
        let wrote = match writev_fd(conn.fd, &slices) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        drop(slices);
        lm.writevs.inc();
        conn.out.consume(wrote);
        if wrote < submitted {
            return Ok(()); // kernel send buffer is full; wait for EPOLLOUT
        }
    }
}

fn http_ready(shared: &Shared, conn: &mut EConn, bits: u32) -> Fate {
    if bits & EPOLLERR != 0 {
        return Fate::Close;
    }
    if !conn.closing && bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
        let mut chunk = [0u8; 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_shut = true;
                    break;
                }
                Ok(n) => {
                    conn.head.extend_from_slice(&chunk[..n]);
                    if http::head_complete(&conn.head) || conn.head.len() >= http::MAX_HEAD {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
        if http::head_complete(&conn.head) || conn.head.len() >= http::MAX_HEAD {
            let out = http::respond(&conn.head, || shared.metrics.registry.render());
            conn.out.push(out, false);
            conn.closing = true;
        } else if conn.read_shut {
            return Fate::Close;
        }
    }
    if !conn.out.is_empty() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(4);
        let _ = conn.out.gather(&mut slices);
        match writev_fd(conn.fd, &slices) {
            Ok(n) => {
                drop(slices);
                conn.out.consume(n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Fate::Close,
        }
    }
    if conn.closing && conn.out.is_empty() {
        let _ = conn.stream.shutdown(Shutdown::Both);
        return Fate::Close;
    }
    Fate::Keep
}
