//! The bdrmapd wire protocol.
//!
//! Length-prefixed frames (see [`bdrmap_types::wire`]) carrying one
//! request or response each. Requests open with an opcode byte;
//! responses echo the opcode after a status byte, so both sides can be
//! decoded without out-of-band context.
//!
//! ```text
//! frame    := u32 len | payload
//! request  := u8 op | body
//! response := u8 status | u8 op | body
//! ```
//!
//! Query opcodes cover the three read paths (owner-of-address,
//! border-router-of-link, links-of-neighbor-AS); `Stats`, `Reload`,
//! and `Health` are the control plane.
//!
//! Every decode failure is a typed [`ProtoError`] — a malformed or
//! hostile frame can never panic the worker that parses it, and the
//! error names exactly which invariant the bytes violated.

use bdrmap_core::query::BorderAnswer;
use bdrmap_core::{Heuristic, OwnerAnswer};
use bdrmap_types::wire::{WireError, WireReader, WireWriter};
use bdrmap_types::{addr, addr_bits, Addr, Asn, Prefix};

/// Request opcodes.
const OP_OWNER: u8 = 1;
const OP_BORDER: u8 = 2;
const OP_NEIGHBOR: u8 = 3;
const OP_STATS: u8 = 4;
const OP_RELOAD: u8 = 5;
const OP_HEALTH: u8 = 6;
const OP_METRICS: u8 = 7;

/// Response status bytes.
const ST_OK: u8 = 0;
const ST_NOT_FOUND: u8 = 1;
const ST_OVERLOAD: u8 = 2;
const ST_ERROR: u8 = 3;

/// A typed protocol decode failure. Every way a frame can be malformed
/// maps to a variant here, so the server can answer with a precise
/// error instead of panicking or guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the message did (or a length field
    /// pointed past the end).
    Truncated,
    /// Bytes remained after a complete message — the frame length and
    /// the message disagree.
    TrailingBytes,
    /// The request opcode byte is not one this protocol defines.
    UnknownOpcode(u8),
    /// The response status byte is not one this protocol defines.
    UnknownStatus(u8),
    /// A heuristic code byte that [`Heuristic::from_code`] rejects.
    BadHeuristic(u8),
    /// A prefix length greater than 32.
    BadPrefixLen(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame payload"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after message"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtoError::UnknownStatus(st) => write!(f, "unknown status byte {st}"),
            ProtoError::BadHeuristic(code) => write!(f, "invalid heuristic code {code}"),
            ProtoError::BadPrefixLen(len) => write!(f, "invalid prefix length {len}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<WireError> for ProtoError {
    fn from(_: WireError) -> ProtoError {
        ProtoError::Truncated
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Who owns this address? (longest-prefix match)
    Owner(Addr),
    /// Which border link/router carries this interface address?
    Border(Addr),
    /// All inferred links to this neighbor AS.
    Neighbor(Asn),
    /// Server and snapshot statistics.
    Stats,
    /// Load the snapshot file at this (server-local) path, build the
    /// next index off the hot path, and atomically swap it in. An empty
    /// path means "reload from the server's snapshot store" (verified
    /// newest generation, rolling back past corrupt ones).
    Reload(String),
    /// Liveness/readiness probe: generation, swap epoch, breaker state,
    /// uptime.
    Health,
    /// The server's metric registry, rendered as Prometheus-style text
    /// exposition (see `bdrmap-obs`).
    Metrics,
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Request::Owner(a) => {
                w.put_u8(OP_OWNER);
                w.put_u32(addr_bits(*a));
            }
            Request::Border(a) => {
                w.put_u8(OP_BORDER);
                w.put_u32(addr_bits(*a));
            }
            Request::Neighbor(asn) => {
                w.put_u8(OP_NEIGHBOR);
                w.put_u32(asn.0);
            }
            Request::Stats => w.put_u8(OP_STATS),
            Request::Reload(path) => {
                w.put_u8(OP_RELOAD);
                w.put_str(path);
            }
            Request::Health => w.put_u8(OP_HEALTH),
            Request::Metrics => w.put_u8(OP_METRICS),
        }
        w.into_vec()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut r = WireReader::new(payload);
        let req = match r.get_u8()? {
            OP_OWNER => Request::Owner(addr(r.get_u32()?)),
            OP_BORDER => Request::Border(addr(r.get_u32()?)),
            OP_NEIGHBOR => Request::Neighbor(Asn(r.get_u32()?)),
            OP_STATS => Request::Stats,
            OP_RELOAD => Request::Reload(r.get_str()?.to_string()),
            OP_HEALTH => Request::Health,
            OP_METRICS => Request::Metrics,
            op => return Err(ProtoError::UnknownOpcode(op)),
        };
        r.finish().map_err(|_| ProtoError::TrailingBytes)?;
        Ok(req)
    }

    fn op(&self) -> u8 {
        match self {
            Request::Owner(_) => OP_OWNER,
            Request::Border(_) => OP_BORDER,
            Request::Neighbor(_) => OP_NEIGHBOR,
            Request::Stats => OP_STATS,
            Request::Reload(_) => OP_RELOAD,
            Request::Health => OP_HEALTH,
            Request::Metrics => OP_METRICS,
        }
    }
}

/// One link row in a `Neighbor` answer (the wire view of
/// [`BorderAnswer`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkInfo {
    /// Link id within the serving snapshot.
    pub link: u32,
    /// Near-side border router id.
    pub near_router: u32,
    /// The border router's inferred owner.
    pub near_owner: Option<Asn>,
    /// The neighbor on the far side.
    pub far_as: Asn,
    /// Near-side interface address.
    pub near_addr: Option<Addr>,
    /// Far-side interface address.
    pub far_addr: Option<Addr>,
    /// The heuristic that attributed the link.
    pub heuristic: Heuristic,
}

impl From<BorderAnswer> for LinkInfo {
    fn from(b: BorderAnswer) -> LinkInfo {
        LinkInfo {
            link: b.link,
            near_router: b.near_router,
            near_owner: b.near_owner,
            far_as: b.far_as,
            near_addr: b.near_addr,
            far_addr: b.far_addr,
            heuristic: b.heuristic,
        }
    }
}

/// Server statistics, echoed to clients.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Snapshot generation (increments on every successful reload).
    pub generation: u64,
    /// Routers in the serving snapshot.
    pub routers: u32,
    /// Links in the serving snapshot.
    pub links: u32,
    /// Trie entries in the serving snapshot.
    pub prefixes: u32,
    /// Queries answered since the server started.
    pub queries: u64,
    /// Connections shed at the accept queue since start.
    pub sheds: u64,
    /// Microseconds the last reload spent building the new index.
    pub last_build_us: u64,
    /// Microseconds the last reload spent publishing (pointer swap +
    /// retiring the old snapshot).
    pub last_swap_us: u64,
    /// Connections evicted because a started frame outlived the
    /// per-request deadline (slow-loris defence).
    pub evicted_slow: u64,
    /// Connections evicted for exceeding the max-inflight-frames cap.
    pub evicted_flood: u64,
    /// Connections dropped because socket setup (timeouts, nodelay)
    /// failed.
    pub setup_errors: u64,
    /// Reloads that exhausted their retry budget.
    pub reload_failures: u64,
    /// Connections closed by graceful drain during shutdown.
    pub drained: u64,
    /// Reload circuit breaker: 0 closed, 1 open, 2 half-open.
    pub breaker_state: u8,
}

/// What the `Health` probe reports: enough for a load balancer or CI
/// harness to decide readiness without parsing full statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthInfo {
    /// Snapshot-store generation currently served (0 when the server
    /// was started from an in-memory map rather than a store).
    pub generation: u64,
    /// Hot-swap publication epoch (increments on every swap).
    pub swap_epoch: u64,
    /// Reload circuit breaker: 0 closed, 1 open, 2 half-open.
    pub breaker_state: u8,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Reloads that exhausted their retry budget since start.
    pub reload_failures: u64,
    /// Last acknowledged write-ahead journal LSN (0 without a journal).
    ///
    /// This and `recovered_batches` are append-only wire extensions:
    /// the encoder always writes them, the decoder defaults them to 0
    /// when a pre-journal peer sent the short form.
    pub journal_lsn: u64,
    /// Batches replayed from the journal tail at startup recovery.
    pub recovered_batches: u64,
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Owner answer; `None` when no stored prefix covers the address.
    Owner(Option<OwnerAnswer>),
    /// Border answer; `None` when the address is on no inferred link.
    Border(Option<LinkInfo>),
    /// All links to the queried neighbor (possibly empty).
    Neighbor(Vec<LinkInfo>),
    /// Statistics snapshot.
    Stats(Stats),
    /// Reload completed; the new snapshot is live.
    Reloaded {
        /// New snapshot generation.
        generation: u64,
        /// Microseconds spent building the index.
        build_us: u64,
        /// Microseconds spent publishing the swap.
        swap_us: u64,
        /// Routers in the new snapshot.
        routers: u32,
        /// Links in the new snapshot.
        links: u32,
    },
    /// Health probe answer.
    Health(HealthInfo),
    /// Metric exposition text (Prometheus-style).
    Metrics(String),
    /// The accept queue was full; retry later.
    Overload,
    /// The request failed; human-readable reason.
    Error(String),
}

fn put_opt_addr(w: &mut WireWriter, a: Option<Addr>) {
    match a {
        Some(a) => {
            w.put_u8(1);
            w.put_u32(addr_bits(a));
        }
        None => w.put_u8(0),
    }
}

fn get_opt_addr(r: &mut WireReader) -> Result<Option<Addr>, ProtoError> {
    Ok(if r.get_u8()? != 0 {
        Some(addr(r.get_u32()?))
    } else {
        None
    })
}

fn put_opt_asn(w: &mut WireWriter, a: Option<Asn>) {
    match a {
        Some(a) => {
            w.put_u8(1);
            w.put_u32(a.0);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_asn(r: &mut WireReader) -> Result<Option<Asn>, ProtoError> {
    Ok(if r.get_u8()? != 0 {
        Some(Asn(r.get_u32()?))
    } else {
        None
    })
}

fn put_link(w: &mut WireWriter, l: &LinkInfo) {
    w.put_u32(l.link);
    w.put_u32(l.near_router);
    put_opt_asn(w, l.near_owner);
    w.put_u32(l.far_as.0);
    put_opt_addr(w, l.near_addr);
    put_opt_addr(w, l.far_addr);
    w.put_u8(l.heuristic.code());
}

fn get_link(r: &mut WireReader) -> Result<LinkInfo, ProtoError> {
    Ok(LinkInfo {
        link: r.get_u32()?,
        near_router: r.get_u32()?,
        near_owner: get_opt_asn(r)?,
        far_as: Asn(r.get_u32()?),
        near_addr: get_opt_addr(r)?,
        far_addr: get_opt_addr(r)?,
        heuristic: {
            let code = r.get_u8()?;
            Heuristic::from_code(code).ok_or(ProtoError::BadHeuristic(code))?
        },
    })
}

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Response::Owner(ans) => {
                w.put_u8(if ans.is_some() { ST_OK } else { ST_NOT_FOUND });
                w.put_u8(OP_OWNER);
                if let Some(ans) = ans {
                    w.put_u32(ans.asn.0);
                    w.put_u32(addr_bits(ans.prefix.network()));
                    w.put_u8(ans.prefix.len());
                    match ans.router {
                        Some(rt) => {
                            w.put_u8(1);
                            w.put_u32(rt);
                        }
                        None => w.put_u8(0),
                    }
                }
            }
            Response::Border(ans) => {
                w.put_u8(if ans.is_some() { ST_OK } else { ST_NOT_FOUND });
                w.put_u8(OP_BORDER);
                if let Some(l) = ans {
                    put_link(&mut w, l);
                }
            }
            Response::Neighbor(links) => {
                w.put_u8(ST_OK);
                w.put_u8(OP_NEIGHBOR);
                w.put_u32(links.len() as u32);
                for l in links {
                    put_link(&mut w, l);
                }
            }
            Response::Stats(s) => {
                w.put_u8(ST_OK);
                w.put_u8(OP_STATS);
                w.put_u64(s.generation);
                w.put_u32(s.routers);
                w.put_u32(s.links);
                w.put_u32(s.prefixes);
                w.put_u64(s.queries);
                w.put_u64(s.sheds);
                w.put_u64(s.last_build_us);
                w.put_u64(s.last_swap_us);
                w.put_u64(s.evicted_slow);
                w.put_u64(s.evicted_flood);
                w.put_u64(s.setup_errors);
                w.put_u64(s.reload_failures);
                w.put_u64(s.drained);
                w.put_u8(s.breaker_state);
            }
            Response::Reloaded {
                generation,
                build_us,
                swap_us,
                routers,
                links,
            } => {
                w.put_u8(ST_OK);
                w.put_u8(OP_RELOAD);
                w.put_u64(*generation);
                w.put_u64(*build_us);
                w.put_u64(*swap_us);
                w.put_u32(*routers);
                w.put_u32(*links);
            }
            Response::Health(h) => {
                w.put_u8(ST_OK);
                w.put_u8(OP_HEALTH);
                w.put_u64(h.generation);
                w.put_u64(h.swap_epoch);
                w.put_u8(h.breaker_state);
                w.put_u64(h.uptime_ms);
                w.put_u64(h.reload_failures);
                w.put_u64(h.journal_lsn);
                w.put_u64(h.recovered_batches);
            }
            Response::Metrics(text) => {
                w.put_u8(ST_OK);
                w.put_u8(OP_METRICS);
                w.put_str(text);
            }
            Response::Overload => {
                w.put_u8(ST_OVERLOAD);
                w.put_u8(0);
            }
            Response::Error(msg) => {
                w.put_u8(ST_ERROR);
                w.put_u8(0);
                w.put_str(msg);
            }
        }
        w.into_vec()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut r = WireReader::new(payload);
        let status = r.get_u8()?;
        let op = r.get_u8()?;
        let resp = match (status, op) {
            (ST_OVERLOAD, _) => Response::Overload,
            (ST_ERROR, _) => Response::Error(r.get_str()?.to_string()),
            (ST_NOT_FOUND, OP_OWNER) => Response::Owner(None),
            (ST_NOT_FOUND, OP_BORDER) => Response::Border(None),
            (ST_OK, OP_OWNER) => {
                let asn = Asn(r.get_u32()?);
                let net = addr(r.get_u32()?);
                let len = r.get_u8()?;
                if len > 32 {
                    return Err(ProtoError::BadPrefixLen(len));
                }
                let router = if r.get_u8()? != 0 {
                    Some(r.get_u32()?)
                } else {
                    None
                };
                Response::Owner(Some(OwnerAnswer {
                    asn,
                    prefix: Prefix::new(net, len),
                    router,
                }))
            }
            (ST_OK, OP_BORDER) => Response::Border(Some(get_link(&mut r)?)),
            (ST_OK, OP_NEIGHBOR) => {
                let n = r.get_u32()? as usize;
                if n > payload.len() {
                    return Err(ProtoError::Truncated);
                }
                let mut links = Vec::with_capacity(n);
                for _ in 0..n {
                    links.push(get_link(&mut r)?);
                }
                Response::Neighbor(links)
            }
            (ST_OK, OP_STATS) => Response::Stats(Stats {
                generation: r.get_u64()?,
                routers: r.get_u32()?,
                links: r.get_u32()?,
                prefixes: r.get_u32()?,
                queries: r.get_u64()?,
                sheds: r.get_u64()?,
                last_build_us: r.get_u64()?,
                last_swap_us: r.get_u64()?,
                evicted_slow: r.get_u64()?,
                evicted_flood: r.get_u64()?,
                setup_errors: r.get_u64()?,
                reload_failures: r.get_u64()?,
                drained: r.get_u64()?,
                breaker_state: r.get_u8()?,
            }),
            (ST_OK, OP_RELOAD) => Response::Reloaded {
                generation: r.get_u64()?,
                build_us: r.get_u64()?,
                swap_us: r.get_u64()?,
                routers: r.get_u32()?,
                links: r.get_u32()?,
            },
            (ST_OK, OP_HEALTH) => {
                let mut h = HealthInfo {
                    generation: r.get_u64()?,
                    swap_epoch: r.get_u64()?,
                    breaker_state: r.get_u8()?,
                    uptime_ms: r.get_u64()?,
                    reload_failures: r.get_u64()?,
                    journal_lsn: 0,
                    recovered_batches: 0,
                };
                // Append-only extension: a pre-journal peer stops here.
                if r.remaining() > 0 {
                    h.journal_lsn = r.get_u64()?;
                    h.recovered_batches = r.get_u64()?;
                }
                Response::Health(h)
            }
            (ST_OK, OP_METRICS) => Response::Metrics(r.get_str()?.to_string()),
            (ST_OK | ST_NOT_FOUND, op) => return Err(ProtoError::UnknownOpcode(op)),
            (st, _) => return Err(ProtoError::UnknownStatus(st)),
        };
        r.finish().map_err(|_| ProtoError::TrailingBytes)?;
        Ok(resp)
    }

    /// True when this response answers `req` (op bytes agree).
    pub fn answers(&self, req: &Request) -> bool {
        match self {
            Response::Owner(_) => req.op() == OP_OWNER,
            Response::Border(_) => req.op() == OP_BORDER,
            Response::Neighbor(_) => req.op() == OP_NEIGHBOR,
            Response::Stats(_) => req.op() == OP_STATS,
            Response::Reloaded { .. } => req.op() == OP_RELOAD,
            Response::Health(_) => req.op() == OP_HEALTH,
            Response::Metrics(_) => req.op() == OP_METRICS,
            Response::Overload | Response::Error(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Owner(a("192.0.2.1")),
            Request::Border(a("10.9.8.7")),
            Request::Neighbor(Asn(64500)),
            Request::Stats,
            Request::Reload("/tmp/map.bdrm".into()),
            Request::Reload(String::new()),
            Request::Health,
            Request::Metrics,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        assert_eq!(Request::decode(&[99]), Err(ProtoError::UnknownOpcode(99)));
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        // Trailing bytes are rejected with the precise variant.
        let mut buf = Request::Stats.encode();
        buf.push(0);
        assert_eq!(Request::decode(&buf), Err(ProtoError::TrailingBytes));
    }

    #[test]
    fn responses_round_trip() {
        let link = LinkInfo {
            link: 3,
            near_router: 7,
            near_owner: Some(Asn(1)),
            far_as: Asn(2),
            near_addr: Some(a("10.0.0.1")),
            far_addr: None,
            heuristic: Heuristic::OneNet,
        };
        let resps = [
            Response::Owner(Some(OwnerAnswer {
                asn: Asn(5),
                prefix: "10.0.0.0/8".parse().unwrap(),
                router: Some(2),
            })),
            Response::Owner(None),
            Response::Border(Some(link)),
            Response::Border(None),
            Response::Neighbor(vec![link, link]),
            Response::Neighbor(vec![]),
            Response::Stats(Stats {
                generation: 2,
                routers: 10,
                links: 4,
                prefixes: 40,
                queries: 999,
                sheds: 1,
                last_build_us: 1200,
                last_swap_us: 15,
                evicted_slow: 2,
                evicted_flood: 1,
                setup_errors: 0,
                reload_failures: 3,
                drained: 4,
                breaker_state: 1,
            }),
            Response::Reloaded {
                generation: 3,
                build_us: 800,
                swap_us: 9,
                routers: 11,
                links: 5,
            },
            Response::Health(HealthInfo {
                generation: 7,
                swap_epoch: 3,
                breaker_state: 2,
                uptime_ms: 123456,
                reload_failures: 1,
                journal_lsn: 42,
                recovered_batches: 6,
            }),
            Response::Metrics("# TYPE x counter\nx 1\n".into()),
            Response::Metrics(String::new()),
            Response::Overload,
            Response::Error("bad path".into()),
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn health_decodes_pre_journal_short_form() {
        // A payload from a server built before the journal fields
        // existed: the two trailing u64s default to zero.
        let mut w = WireWriter::new();
        w.put_u8(ST_OK);
        w.put_u8(OP_HEALTH);
        w.put_u64(7); // generation
        w.put_u64(3); // swap_epoch
        w.put_u8(2); // breaker_state
        w.put_u64(123456); // uptime_ms
        w.put_u64(1); // reload_failures
        let got = Response::decode(&w.into_vec()).unwrap();
        assert_eq!(
            got,
            Response::Health(HealthInfo {
                generation: 7,
                swap_epoch: 3,
                breaker_state: 2,
                uptime_ms: 123456,
                reload_failures: 1,
                journal_lsn: 0,
                recovered_batches: 0,
            })
        );
        // A partial extension (one trailing u64) is still truncation.
        let mut w = WireWriter::new();
        w.put_u8(ST_OK);
        w.put_u8(OP_HEALTH);
        w.put_u64(7);
        w.put_u64(3);
        w.put_u8(2);
        w.put_u64(123456);
        w.put_u64(1);
        w.put_u64(9);
        assert!(Response::decode(&w.into_vec()).is_err());
    }

    #[test]
    fn decode_errors_are_typed() {
        // Unknown status byte.
        assert_eq!(Response::decode(&[9, 0]), Err(ProtoError::UnknownStatus(9)));
        // OK status with an unknown opcode.
        assert_eq!(
            Response::decode(&[0, 77]),
            Err(ProtoError::UnknownOpcode(77))
        );
        // Prefix length over 32.
        let mut w = WireWriter::new();
        w.put_u8(0);
        w.put_u8(1);
        w.put_u32(64500);
        w.put_u32(0x0A000000);
        w.put_u8(33);
        w.put_u8(0);
        assert_eq!(
            Response::decode(&w.into_vec()),
            Err(ProtoError::BadPrefixLen(33))
        );
        // A link whose heuristic code is garbage.
        let link = LinkInfo {
            link: 1,
            near_router: 1,
            near_owner: None,
            far_as: Asn(2),
            near_addr: None,
            far_addr: None,
            heuristic: Heuristic::OneNet,
        };
        let mut bytes = Response::Border(Some(link)).encode();
        let last = bytes.len() - 1;
        bytes[last] = 250;
        assert_eq!(Response::decode(&bytes), Err(ProtoError::BadHeuristic(250)));
        // Truncation anywhere never panics; it errors.
        let full = Response::Border(Some(link)).encode();
        for cut in 0..full.len() {
            assert!(Response::decode(&full[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn answers_matches_ops() {
        assert!(Response::Owner(None).answers(&Request::Owner(a("1.2.3.4"))));
        assert!(!Response::Owner(None).answers(&Request::Stats));
        assert!(Response::Overload.answers(&Request::Stats));
        assert!(Response::Health(HealthInfo::default()).answers(&Request::Health));
        assert!(!Response::Health(HealthInfo::default()).answers(&Request::Stats));
        assert!(Response::Metrics(String::new()).answers(&Request::Metrics));
        assert!(!Response::Metrics(String::new()).answers(&Request::Stats));
    }
}
