//! Minimal plain-HTTP `/metrics` endpoint.
//!
//! Stock Prometheus can't speak the bdrmapd wire protocol, so the
//! server optionally exposes its registry over the one HTTP exchange a
//! scraper needs: `GET /metrics` → `200 text/plain`, everything else a
//! terse error. One request per connection, `Connection: close`, no
//! keep-alive — a scrape is a single round trip. The epoll backend
//! serves these connections from loop 0's readiness loop; the threads
//! backend runs [`polling_metrics_loop`] on a small dedicated thread so
//! scrapes stay reachable even when every worker is pinned.

use crate::server::Shared;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Largest request head (request line + headers) we accept.
pub(crate) const MAX_HEAD: usize = 8 * 1024;

/// True once `head` holds a complete request head (blank line seen).
pub(crate) fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

fn response(status: &str, extra_headers: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n{extra_headers}\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Build the full response bytes for one request head. `render` is only
/// invoked for a well-formed `GET /metrics`, so a rejected method never
/// pays for an exposition render.
pub(crate) fn respond(head: &[u8], render: impl FnOnce() -> String) -> Vec<u8> {
    let text = String::from_utf8_lossy(head);
    let line = text.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return response(
            "405 Method Not Allowed",
            "Allow: GET\r\n",
            "method not allowed\n",
        );
    }
    // Scrapers may append query parameters; match on the path alone.
    let path = path.split('?').next().unwrap_or("");
    if path != "/metrics" {
        return response("404 Not Found", "", "not found; try /metrics\n");
    }
    response("200 OK", "", &render())
}

/// Threads-backend `/metrics` server: a polling accept loop that serves
/// one blocking scrape at a time. The listener must be non-blocking so
/// the loop can notice shutdown between connections.
pub(crate) fn polling_metrics_loop(shared: Arc<Shared>, listener: Arc<TcpListener>) {
    const POLL: Duration = Duration::from_millis(25);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let mut head = Vec::new();
                let mut chunk = [0u8; 1024];
                while !head_complete(&head) && head.len() < MAX_HEAD {
                    match stream.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => head.extend_from_slice(&chunk[..n]),
                        Err(_) => break,
                    }
                }
                if head_complete(&head) {
                    let out = respond(&head, || shared.metrics.registry.render());
                    let _ = stream.write_all(&out);
                }
                let _ = stream.shutdown(Shutdown::Both);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body_of(resp: &[u8]) -> &str {
        let text = std::str::from_utf8(resp).unwrap();
        text.split_once("\r\n\r\n").unwrap().1
    }

    #[test]
    fn get_metrics_renders() {
        let out = respond(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", || {
            "bdrmapd_up 1\n".to_string()
        });
        let text = std::str::from_utf8(&out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close"));
        assert_eq!(body_of(&out), "bdrmapd_up 1\n");
    }

    #[test]
    fn non_get_is_405_with_allow() {
        let mut rendered = false;
        let out = respond(b"POST /metrics HTTP/1.1\r\n\r\n", || {
            rendered = true;
            String::new()
        });
        let text = std::str::from_utf8(&out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 "));
        assert!(text.contains("Allow: GET"));
        assert!(!rendered, "405 must not render the exposition");
    }

    #[test]
    fn other_paths_are_404() {
        let out = respond(b"GET / HTTP/1.1\r\n\r\n", String::new);
        assert!(std::str::from_utf8(&out)
            .unwrap()
            .starts_with("HTTP/1.1 404 "));
    }

    #[test]
    fn query_string_is_ignored() {
        let out = respond(b"GET /metrics?x=1 HTTP/1.1\r\n\r\n", || "m 1\n".into());
        assert!(std::str::from_utf8(&out)
            .unwrap()
            .starts_with("HTTP/1.1 200 "));
    }

    #[test]
    fn garbage_head_is_rejected() {
        let out = respond(b"\r\n\r\n", String::new);
        assert!(std::str::from_utf8(&out)
            .unwrap()
            .starts_with("HTTP/1.1 405 "));
    }

    #[test]
    fn head_completion_detects_both_line_endings() {
        assert!(head_complete(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(head_complete(b"GET / HTTP/1.1\n\n"));
        assert!(!head_complete(b"GET / HTTP/1.1\r\n"));
    }
}
