//! Closed-loop load generator for bdrmapd.
//!
//! Each connection is a thread that sends one request, waits for the
//! response, records the round-trip latency, and immediately sends the
//! next — classic closed-loop load, so offered QPS is bounded by server
//! latency rather than a target rate. The query mix round-robins over a
//! set derived from the border map being served (every router address,
//! every link interface, every neighbor AS), touching all three read
//! paths.
//!
//! Optionally, half-way through the run a control connection fires a
//! `Reload`, measuring snapshot build, publish (swap), and end-to-end
//! round-trip times while the query threads keep hammering — the
//! experiment behind the "zero lost queries across a hot swap" claim.
//!
//! Two adversarial modes exercise the server's robustness layers under
//! real load:
//!
//! - `corrupt_rate` makes each connection occasionally replace a valid
//!   request payload with a seeded deterministic mutation (bit flip,
//!   truncation, garbage opcode). The server must answer every one with
//!   a well-formed `Error` frame — never a hang, close, or panic — and
//!   the report counts how many survived that way.
//! - `stall_conns` opens connections that send two bytes of a frame
//!   header and then go silent: textbook slow loris. The report counts
//!   how many the server evicted, and the healthy connections' p99 in
//!   the same run shows the stalls didn't steal their workers.

use crate::proto::{Request, Response};
use crate::server::Client;
use bdrmap_core::BorderMap;
use bdrmap_types::wire::{read_frame, write_frame, MAX_FRAME};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One splitmix64 step — the mixer behind every corruption draw, so a
/// run with the same seed replays the same hostile bytes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Load-generator tunables.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop connections.
    pub conns: usize,
    /// How long to run.
    pub duration: Duration,
    /// Snapshot file to `Reload` half-way through the run (measures
    /// hot-swap behaviour under load).
    pub reload_with: Option<PathBuf>,
    /// Probability (0..=1) that a request is replaced by a corrupted
    /// frame payload.
    pub corrupt_rate: f64,
    /// Seed for the corruption RNG; same seed, same hostile bytes.
    pub corrupt_seed: u64,
    /// Extra connections that stall mid-frame-header (slow loris) and
    /// wait to be evicted.
    pub stall_conns: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            conns: 4,
            duration: Duration::from_secs(2),
            reload_with: None,
            corrupt_rate: 0.0,
            corrupt_seed: 0xb0d4_c0de,
            stall_conns: 0,
        }
    }
}

/// What the mid-run reload reported.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReloadStats {
    /// Client-observed request round trip, microseconds.
    pub round_trip_us: u64,
    /// Server-side index build time, microseconds.
    pub build_us: u64,
    /// Server-side publish (pointer swap + retire) time, microseconds.
    pub swap_us: u64,
    /// Generation after the swap.
    pub generation: u64,
}

/// Aggregated results of one load-generator run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Connections used.
    pub conns: usize,
    /// Wall-clock run time in seconds.
    pub duration_s: f64,
    /// Queries answered `Ok`/`NotFound` with a well-formed payload.
    pub queries_ok: u64,
    /// Subset of `queries_ok` that were `Owner` lookups. The per-opcode
    /// split lets CI cross-check the server's own
    /// `bdrmapd_requests_total{op=...}` counters against what this
    /// closed-loop client actually got answered: on a clean run
    /// (`queries_shed == 0 && queries_error == 0`, no corruption) the
    /// two tallies must match exactly.
    pub ok_owner: u64,
    /// Subset of `queries_ok` that were `Border` lookups.
    pub ok_border: u64,
    /// Subset of `queries_ok` that were `Neighbor` lookups.
    pub ok_neighbor: u64,
    /// Subset of `queries_ok` whose answer was "not found".
    pub queries_not_found: u64,
    /// Connections shed by the server's overload path.
    pub queries_shed: u64,
    /// Protocol or transport failures (a lost in-flight query).
    pub queries_error: u64,
    /// Successful queries per second.
    pub qps: f64,
    /// Latency percentiles over successful queries, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: u64,
    /// Corrupted frames deliberately sent.
    pub corrupt_sent: u64,
    /// Corrupted frames the server answered with a well-formed frame
    /// (an `Error` for malformed payloads, a normal answer when the
    /// mutation happened to stay valid) — the only acceptable outcome.
    pub corrupt_survived: u64,
    /// Slow-loris connections opened.
    pub stalled: u64,
    /// Slow-loris connections the server evicted before the run ended.
    pub stalled_evicted: u64,
    /// Mid-run reload measurements, when one was requested.
    pub reload: Option<ReloadStats>,
}

impl LoadReport {
    /// Stable JSON schema for `BENCH_serve.json`; keys are fixed so CI
    /// and trend tooling can grep/diff across revisions. Schema 2 adds
    /// the hostile-input counters; every schema-1 key is unchanged.
    /// The per-opcode `ok_*` split is deliberately *not* serialized:
    /// it exists for the metrics cross-check on stdout, and the bench
    /// schema stays byte-identical.
    pub fn to_json(&self) -> String {
        let reload = match &self.reload {
            Some(r) => format!(
                "{{\"round_trip_us\": {}, \"build_us\": {}, \"swap_us\": {}, \"generation\": {}}}",
                r.round_trip_us, r.build_us, r.swap_us, r.generation
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"schema\": 2,\n  \"conns\": {},\n  \"duration_s\": {:.3},\n  \"queries_ok\": {},\n  \"queries_not_found\": {},\n  \"queries_shed\": {},\n  \"queries_error\": {},\n  \"qps\": {:.1},\n  \"p50_us\": {},\n  \"p99_us\": {},\n  \"p999_us\": {},\n  \"corrupt_sent\": {},\n  \"corrupt_survived\": {},\n  \"stalled\": {},\n  \"stalled_evicted\": {},\n  \"reload\": {}\n}}\n",
            self.conns,
            self.duration_s,
            self.queries_ok,
            self.queries_not_found,
            self.queries_shed,
            self.queries_error,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.corrupt_sent,
            self.corrupt_survived,
            self.stalled,
            self.stalled_evicted,
            reload
        )
    }

    /// Write the JSON report atomically.
    pub fn write_json(&self, path: &std::path::Path) -> io::Result<()> {
        bdrmap_types::fsutil::write_atomic(path, self.to_json().as_bytes())
    }
}

/// Derive a mixed query set from a border map: one `Owner` per router
/// interface, one `Border` per link interface, one `Neighbor` per
/// distinct far AS. Round-robining over it exercises all three read
/// paths in proportion to the map's own shape.
pub fn queries_for_map(map: &BorderMap) -> Vec<Request> {
    let mut queries = Vec::new();
    for router in &map.routers {
        for &a in router.addrs.iter().chain(&router.other_addrs) {
            queries.push(Request::Owner(a));
        }
    }
    let mut neighbors = Vec::new();
    for link in &map.links {
        for a in [link.near_addr, link.far_addr].into_iter().flatten() {
            queries.push(Request::Border(a));
        }
        neighbors.push(link.far_as);
    }
    neighbors.sort_unstable();
    neighbors.dedup();
    queries.extend(neighbors.into_iter().map(Request::Neighbor));
    queries
}

/// Nearest-rank percentile over an ascending-sorted latency vector.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Tally {
    ok: AtomicU64,
    ok_owner: AtomicU64,
    ok_border: AtomicU64,
    ok_neighbor: AtomicU64,
    not_found: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    corrupt_sent: AtomicU64,
    corrupt_survived: AtomicU64,
    stalled: AtomicU64,
    stalled_evicted: AtomicU64,
}

/// Deterministically mangle a valid request payload. The frame header
/// stays well-formed so the bytes reach the protocol decoder, which is
/// the layer under test.
fn corrupt_payload(payload: &[u8], rng: &mut u64) -> Vec<u8> {
    let mut bytes = payload.to_vec();
    match splitmix64(rng) % 3 {
        0 => {
            // Flip one bit somewhere.
            let i = (splitmix64(rng) as usize) % bytes.len().max(1);
            let bit = (splitmix64(rng) % 8) as u8;
            if bytes.is_empty() {
                bytes.push(1 << bit);
            } else {
                bytes[i] ^= 1 << bit;
            }
        }
        1 => {
            // Truncate to a strict prefix (possibly empty).
            let keep = (splitmix64(rng) as usize) % bytes.len().max(1);
            bytes.truncate(keep);
        }
        _ => {
            // Garbage opcode, valid-looking tail.
            if bytes.is_empty() {
                bytes.push(0);
            }
            bytes[0] = 200u8.wrapping_add((splitmix64(rng) % 55) as u8);
        }
    }
    bytes
}

/// One closed-loop connection: query until the deadline, reconnecting
/// (and counting a shed) whenever the server's overload path drops us.
/// With a nonzero corrupt rate, some requests are replaced by hostile
/// frames that must come back as well-formed `Error` responses.
fn drive(
    addr: SocketAddr,
    queries: &[Request],
    offset: usize,
    deadline: Instant,
    tally: &Tally,
    corrupt_rate: f64,
    mut rng: u64,
) -> Vec<u64> {
    let mut latencies = Vec::new();
    let mut i = offset;
    'reconnect: while Instant::now() < deadline {
        let mut client = match Client::connect(&addr) {
            Ok(c) => c,
            Err(_) => {
                tally.errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        while Instant::now() < deadline {
            let req = &queries[i % queries.len()];
            i += 1;
            if corrupt_rate > 0.0 && (splitmix64(&mut rng) as f64 / u64::MAX as f64) < corrupt_rate
            {
                // Hostile path: mangled payload under a valid frame.
                let mangled = corrupt_payload(&req.encode(), &mut rng);
                tally.corrupt_sent.fetch_add(1, Ordering::Relaxed);
                let outcome = write_frame(client.stream_mut(), &mangled)
                    .and_then(|()| read_frame(client.stream_mut(), MAX_FRAME));
                match outcome {
                    Ok(Some(payload)) => {
                        // Some mutations still decode as valid requests
                        // (a flipped address bit, say); survival means
                        // a well-formed response of *any* kind came
                        // back and the connection is still usable.
                        if Response::decode(&payload).is_ok() {
                            tally.corrupt_survived.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A close or transport error is a lost connection,
                    // not a survival; reconnect and keep going.
                    Ok(None) | Err(_) => continue 'reconnect,
                }
                continue;
            }
            let start = Instant::now();
            match client.call(req) {
                Ok(Response::Overload) => {
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(5));
                    continue 'reconnect;
                }
                Ok(Response::Error(_)) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                }
                Ok(resp) if resp.answers(req) => {
                    latencies.push(start.elapsed().as_micros() as u64);
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                    let per_op = match req {
                        Request::Owner(_) => Some(&tally.ok_owner),
                        Request::Border(_) => Some(&tally.ok_border),
                        Request::Neighbor(_) => Some(&tally.ok_neighbor),
                        _ => None,
                    };
                    if let Some(c) = per_op {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                    if matches!(resp, Response::Owner(None) | Response::Border(None)) {
                        tally.not_found.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                    continue 'reconnect;
                }
            }
        }
        break;
    }
    latencies
}

/// One slow-loris connection: two bytes of a frame header, then
/// silence. Returns once the server closes the socket (an eviction) or
/// the grace deadline passes (not evicted — a robustness failure the
/// report surfaces).
fn stall(addr: SocketAddr, grace_deadline: Instant, tally: &Tally) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    tally.stalled.fetch_add(1, Ordering::Relaxed);
    if stream.write_all(&[0, 0]).is_err() {
        // Closed before we even stalled: still an eviction.
        tally.stalled_evicted.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut byte = [0u8; 16];
    while Instant::now() < grace_deadline {
        match stream.read(&mut byte) {
            // Server closed us (clean EOF) or reset us: evicted.
            Ok(0) => {
                tally.stalled_evicted.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Ok(_) => {
                // An Error frame before the close also counts; keep
                // reading until the close lands.
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                tally.stalled_evicted.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Run the load generator against a live server.
pub fn run(addr: SocketAddr, queries: &[Request], cfg: &LoadgenConfig) -> io::Result<LoadReport> {
    if queries.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "empty query set: the border map has no routers or links",
        ));
    }
    let tally = Arc::new(Tally {
        ok: AtomicU64::new(0),
        ok_owner: AtomicU64::new(0),
        ok_border: AtomicU64::new(0),
        ok_neighbor: AtomicU64::new(0),
        not_found: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        corrupt_sent: AtomicU64::new(0),
        corrupt_survived: AtomicU64::new(0),
        stalled: AtomicU64::new(0),
        stalled_evicted: AtomicU64::new(0),
    });
    let start = Instant::now();
    let deadline = start + cfg.duration;
    let mut handles = Vec::new();
    for c in 0..cfg.conns.max(1) {
        let queries = queries.to_vec();
        let tally = Arc::clone(&tally);
        let rate = cfg.corrupt_rate.clamp(0.0, 1.0);
        let seed = cfg.corrupt_seed ^ (c as u64).wrapping_mul(0x9e37_79b9);
        handles.push(std::thread::spawn(move || {
            drive(addr, &queries, c * 7919, deadline, &tally, rate, seed)
        }));
    }
    // Stall threads get a grace window past the main deadline so an
    // eviction landing near the end is still observed.
    let mut stall_handles = Vec::new();
    let grace_deadline = deadline + Duration::from_secs(2);
    for _ in 0..cfg.stall_conns {
        let tally = Arc::clone(&tally);
        stall_handles.push(std::thread::spawn(move || {
            stall(addr, grace_deadline, &tally)
        }));
    }
    let reload = match &cfg.reload_with {
        Some(path) => {
            // Fire the hot swap once the pool has warmed up.
            std::thread::sleep(cfg.duration / 2);
            let mut client = Client::connect(&addr)?;
            let req = Request::Reload(path.display().to_string());
            let rt_start = Instant::now();
            match client.call(&req)? {
                Response::Reloaded {
                    generation,
                    build_us,
                    swap_us,
                    ..
                } => Some(ReloadStats {
                    round_trip_us: rt_start.elapsed().as_micros() as u64,
                    build_us,
                    swap_us,
                    generation,
                }),
                Response::Error(msg) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, msg))
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected reload response: {other:?}"),
                    ))
                }
            }
        }
        None => None,
    };
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().unwrap_or_default());
    }
    for h in stall_handles {
        let _ = h.join();
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let ok = tally.ok.load(Ordering::Relaxed);
    Ok(LoadReport {
        conns: cfg.conns.max(1),
        duration_s: elapsed,
        queries_ok: ok,
        ok_owner: tally.ok_owner.load(Ordering::Relaxed),
        ok_border: tally.ok_border.load(Ordering::Relaxed),
        ok_neighbor: tally.ok_neighbor.load(Ordering::Relaxed),
        queries_not_found: tally.not_found.load(Ordering::Relaxed),
        queries_shed: tally.shed.load(Ordering::Relaxed),
        queries_error: tally.errors.load(Ordering::Relaxed),
        qps: if elapsed > 0.0 {
            ok as f64 / elapsed
        } else {
            0.0
        },
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        corrupt_sent: tally.corrupt_sent.load(Ordering::Relaxed),
        corrupt_survived: tally.corrupt_survived.load(Ordering::Relaxed),
        stalled: tally.stalled.load(Ordering::Relaxed),
        stalled_evicted: tally.stalled_evicted.load(Ordering::Relaxed),
        reload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.999), 7);
    }

    /// Pins the nearest-rank edge-case semantics: rank is
    /// `ceil(len * q)` clamped to `1..=len`, so `q = 0.0` is the
    /// minimum, `q = 1.0` the maximum, and any quantile of fewer
    /// samples than its resolution (p999 of < 1000) lands on the
    /// maximum rather than interpolating past the data.
    #[test]
    fn percentile_edge_cases() {
        // Empty input: defined as 0 for every q.
        assert_eq!(percentile(&[], 0.0), 0);
        assert_eq!(percentile(&[], 1.0), 0);
        assert_eq!(percentile(&[], 0.999), 0);
        // A single sample answers every quantile.
        assert_eq!(percentile(&[42], 0.0), 42);
        assert_eq!(percentile(&[42], 0.5), 42);
        assert_eq!(percentile(&[42], 1.0), 42);
        // q = 0.0 gives rank 0, clamped up to rank 1: the minimum.
        assert_eq!(percentile(&[3, 8, 20], 0.0), 3);
        // q = 1.0 gives rank = len exactly: the maximum.
        assert_eq!(percentile(&[3, 8, 20], 1.0), 20);
        // p999 with fewer than 1000 samples: ceil rounds the rank up
        // to len, so the answer is the maximum, never out of bounds.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.999), 100);
        assert_eq!(percentile(&[5, 6], 0.999), 6);
        // Duplicate maxima: the tied value is returned for every rank
        // that lands in the run of duplicates.
        let dup = [1, 2, 9, 9, 9];
        assert_eq!(percentile(&dup, 1.0), 9);
        assert_eq!(percentile(&dup, 0.999), 9);
        assert_eq!(percentile(&dup, 0.5), 9); // rank ceil(2.5) = 3
        assert_eq!(percentile(&dup, 0.4), 2); // rank 2
    }

    /// The same nearest-rank semantics must hold for the observability
    /// histogram. `Histogram::quantile` uses the identical rank rule,
    /// and its bucket mapping is monotonic, so for every input the
    /// histogram answer is exactly the upper bucket bound of the exact
    /// nearest-rank answer:
    /// `hist.quantile(q) == Histogram::bucket_bound(percentile(v, q))`.
    #[test]
    fn histogram_quantile_matches_percentile_semantics() {
        use bdrmap_obs::Histogram;
        let cases: &[&[u64]] = &[
            &[],
            &[42],
            &[3, 8, 20],
            &[5, 6],
            &[1, 2, 9, 9, 9],
            &[0, 0, 0, 1],
            &[1, 1_000, 1_000_000, u64::MAX],
        ];
        let hundred: Vec<u64> = (1..=100).collect();
        for samples in cases.iter().copied().chain([hundred.as_slice()]) {
            let hist = Histogram::new();
            for &s in samples {
                hist.record(s);
            }
            for q in [0.0, 0.4, 0.5, 0.99, 0.999, 1.0] {
                assert_eq!(
                    hist.quantile(q),
                    Histogram::bucket_bound(percentile(samples, q)),
                    "samples {samples:?} q {q}"
                );
            }
        }
    }

    #[test]
    fn report_json_is_stable() {
        let report = LoadReport {
            conns: 4,
            duration_s: 2.0,
            queries_ok: 1000,
            ok_owner: 500,
            ok_border: 300,
            ok_neighbor: 200,
            queries_not_found: 10,
            queries_shed: 1,
            queries_error: 0,
            qps: 500.0,
            p50_us: 12,
            p99_us: 90,
            p999_us: 400,
            corrupt_sent: 50,
            corrupt_survived: 50,
            stalled: 2,
            stalled_evicted: 2,
            reload: Some(ReloadStats {
                round_trip_us: 1500,
                build_us: 1200,
                swap_us: 20,
                generation: 2,
            }),
        };
        let json = report.to_json();
        for key in [
            "\"bench\": \"serve\"",
            "\"schema\": 2",
            "\"queries_ok\": 1000",
            "\"queries_shed\": 1",
            "\"qps\": 500.0",
            "\"p999_us\": 400",
            "\"corrupt_sent\": 50",
            "\"corrupt_survived\": 50",
            "\"stalled\": 2",
            "\"stalled_evicted\": 2",
            "\"swap_us\": 20",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The per-opcode split is stdout-only; the bench schema must
        // not grow keys.
        assert!(!json.contains("ok_owner"), "per-op counts leaked into JSON");
        let none = LoadReport::default().to_json();
        assert!(none.contains("\"reload\": null"));
    }

    #[test]
    fn corruption_is_deterministic_and_differs() {
        let payload = Request::Stats.encode();
        let mut a = 42u64;
        let mut b = 42u64;
        let x = corrupt_payload(&payload, &mut a);
        let y = corrupt_payload(&payload, &mut b);
        assert_eq!(x, y, "same seed, same mutation");
        assert_ne!(x, payload, "mutation must change the bytes");
        // Different seeds eventually produce different mutations.
        let mut c = 43u64;
        let z = corrupt_payload(&payload, &mut c);
        let mut c2 = 44u64;
        let z2 = corrupt_payload(&payload, &mut c2);
        assert!(z != x || z2 != x);
    }
}
