//! Closed-loop load generator for bdrmapd.
//!
//! Each connection is a thread that sends one request, waits for the
//! response, records the round-trip latency, and immediately sends the
//! next — classic closed-loop load, so offered QPS is bounded by server
//! latency rather than a target rate. The query mix round-robins over a
//! set derived from the border map being served (every router address,
//! every link interface, every neighbor AS), touching all three read
//! paths.
//!
//! Optionally, half-way through the run a control connection fires a
//! `Reload`, measuring snapshot build, publish (swap), and end-to-end
//! round-trip times while the query threads keep hammering — the
//! experiment behind the "zero lost queries across a hot swap" claim.
//!
//! Two adversarial modes exercise the server's robustness layers under
//! real load:
//!
//! - `corrupt_rate` makes each connection occasionally replace a valid
//!   request payload with a seeded deterministic mutation (bit flip,
//!   truncation, garbage opcode). The server must answer every one with
//!   a well-formed `Error` frame — never a hang, close, or panic — and
//!   the report counts how many survived that way.
//! - `stall_conns` opens connections that send two bytes of a frame
//!   header and then go silent: textbook slow loris. The report counts
//!   how many the server evicted, and the healthy connections' p99 in
//!   the same run shows the stalls didn't steal their workers.

use crate::proto::{Request, Response};
use crate::server::Client;
use bdrmap_core::BorderMap;
use bdrmap_types::wire::{read_frame, write_frame, MAX_FRAME};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One splitmix64 step — the mixer behind every corruption draw, so a
/// run with the same seed replays the same hostile bytes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Load-generator tunables.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop connections.
    pub conns: usize,
    /// How long to run.
    pub duration: Duration,
    /// Snapshot file to `Reload` half-way through the run (measures
    /// hot-swap behaviour under load).
    pub reload_with: Option<PathBuf>,
    /// Probability (0..=1) that a request is replaced by a corrupted
    /// frame payload.
    pub corrupt_rate: f64,
    /// Seed for the corruption RNG; same seed, same hostile bytes.
    pub corrupt_seed: u64,
    /// Extra connections that stall mid-frame-header (slow loris) and
    /// wait to be evicted.
    pub stall_conns: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            conns: 4,
            duration: Duration::from_secs(2),
            reload_with: None,
            corrupt_rate: 0.0,
            corrupt_seed: 0xb0d4_c0de,
            stall_conns: 0,
        }
    }
}

/// What the mid-run reload reported.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReloadStats {
    /// Client-observed request round trip, microseconds.
    pub round_trip_us: u64,
    /// Server-side index build time, microseconds.
    pub build_us: u64,
    /// Server-side publish (pointer swap + retire) time, microseconds.
    pub swap_us: u64,
    /// Generation after the swap.
    pub generation: u64,
}

/// Aggregated results of one load-generator run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Connections used.
    pub conns: usize,
    /// Wall-clock run time in seconds.
    pub duration_s: f64,
    /// Queries answered `Ok`/`NotFound` with a well-formed payload.
    pub queries_ok: u64,
    /// Subset of `queries_ok` that were `Owner` lookups. The per-opcode
    /// split lets CI cross-check the server's own
    /// `bdrmapd_requests_total{op=...}` counters against what this
    /// closed-loop client actually got answered: on a clean run
    /// (`queries_shed == 0 && queries_error == 0`, no corruption) the
    /// two tallies must match exactly.
    pub ok_owner: u64,
    /// Subset of `queries_ok` that were `Border` lookups.
    pub ok_border: u64,
    /// Subset of `queries_ok` that were `Neighbor` lookups.
    pub ok_neighbor: u64,
    /// Subset of `queries_ok` whose answer was "not found".
    pub queries_not_found: u64,
    /// Connections shed by the server's overload path.
    pub queries_shed: u64,
    /// Protocol or transport failures (a lost in-flight query).
    pub queries_error: u64,
    /// Successful queries per second.
    pub qps: f64,
    /// Latency percentiles over successful queries, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: u64,
    /// Corrupted frames deliberately sent.
    pub corrupt_sent: u64,
    /// Corrupted frames the server answered with a well-formed frame
    /// (an `Error` for malformed payloads, a normal answer when the
    /// mutation happened to stay valid) — the only acceptable outcome.
    pub corrupt_survived: u64,
    /// Slow-loris connections opened.
    pub stalled: u64,
    /// Slow-loris connections the server evicted before the run ended.
    pub stalled_evicted: u64,
    /// Mid-run reload measurements, when one was requested.
    pub reload: Option<ReloadStats>,
}

impl LoadReport {
    /// Stable JSON schema for `BENCH_serve.json`; keys are fixed so CI
    /// and trend tooling can grep/diff across revisions. Schema 2 adds
    /// the hostile-input counters; every schema-1 key is unchanged.
    /// The per-opcode `ok_*` split is deliberately *not* serialized:
    /// it exists for the metrics cross-check on stdout, and the bench
    /// schema stays byte-identical.
    pub fn to_json(&self) -> String {
        let reload = match &self.reload {
            Some(r) => format!(
                "{{\"round_trip_us\": {}, \"build_us\": {}, \"swap_us\": {}, \"generation\": {}}}",
                r.round_trip_us, r.build_us, r.swap_us, r.generation
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"schema\": 2,\n  \"conns\": {},\n  \"duration_s\": {:.3},\n  \"queries_ok\": {},\n  \"queries_not_found\": {},\n  \"queries_shed\": {},\n  \"queries_error\": {},\n  \"qps\": {:.1},\n  \"p50_us\": {},\n  \"p99_us\": {},\n  \"p999_us\": {},\n  \"corrupt_sent\": {},\n  \"corrupt_survived\": {},\n  \"stalled\": {},\n  \"stalled_evicted\": {},\n  \"reload\": {}\n}}\n",
            self.conns,
            self.duration_s,
            self.queries_ok,
            self.queries_not_found,
            self.queries_shed,
            self.queries_error,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.corrupt_sent,
            self.corrupt_survived,
            self.stalled,
            self.stalled_evicted,
            reload
        )
    }

    /// Write the JSON report atomically.
    pub fn write_json(&self, path: &std::path::Path) -> io::Result<()> {
        bdrmap_types::fsutil::write_atomic(path, self.to_json().as_bytes())
    }
}

/// Derive a mixed query set from a border map: one `Owner` per router
/// interface, one `Border` per link interface, one `Neighbor` per
/// distinct far AS. Round-robining over it exercises all three read
/// paths in proportion to the map's own shape.
pub fn queries_for_map(map: &BorderMap) -> Vec<Request> {
    let mut queries = Vec::new();
    for router in &map.routers {
        for &a in router.addrs.iter().chain(&router.other_addrs) {
            queries.push(Request::Owner(a));
        }
    }
    let mut neighbors = Vec::new();
    for link in &map.links {
        for a in [link.near_addr, link.far_addr].into_iter().flatten() {
            queries.push(Request::Border(a));
        }
        neighbors.push(link.far_as);
    }
    neighbors.sort_unstable();
    neighbors.dedup();
    queries.extend(neighbors.into_iter().map(Request::Neighbor));
    queries
}

/// Nearest-rank percentile over an ascending-sorted latency vector.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Tally {
    ok: AtomicU64,
    ok_owner: AtomicU64,
    ok_border: AtomicU64,
    ok_neighbor: AtomicU64,
    not_found: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    corrupt_sent: AtomicU64,
    corrupt_survived: AtomicU64,
    stalled: AtomicU64,
    stalled_evicted: AtomicU64,
}

/// Deterministically mangle a valid request payload. The frame header
/// stays well-formed so the bytes reach the protocol decoder, which is
/// the layer under test.
fn corrupt_payload(payload: &[u8], rng: &mut u64) -> Vec<u8> {
    let mut bytes = payload.to_vec();
    match splitmix64(rng) % 3 {
        0 => {
            // Flip one bit somewhere.
            let i = (splitmix64(rng) as usize) % bytes.len().max(1);
            let bit = (splitmix64(rng) % 8) as u8;
            if bytes.is_empty() {
                bytes.push(1 << bit);
            } else {
                bytes[i] ^= 1 << bit;
            }
        }
        1 => {
            // Truncate to a strict prefix (possibly empty).
            let keep = (splitmix64(rng) as usize) % bytes.len().max(1);
            bytes.truncate(keep);
        }
        _ => {
            // Garbage opcode, valid-looking tail.
            if bytes.is_empty() {
                bytes.push(0);
            }
            bytes[0] = 200u8.wrapping_add((splitmix64(rng) % 55) as u8);
        }
    }
    bytes
}

/// One closed-loop connection: query until the deadline, reconnecting
/// (and counting a shed) whenever the server's overload path drops us.
/// With a nonzero corrupt rate, some requests are replaced by hostile
/// frames that must come back as well-formed `Error` responses.
fn drive(
    addr: SocketAddr,
    queries: &[Request],
    offset: usize,
    deadline: Instant,
    tally: &Tally,
    corrupt_rate: f64,
    mut rng: u64,
) -> Vec<u64> {
    let mut latencies = Vec::new();
    let mut i = offset;
    'reconnect: while Instant::now() < deadline {
        let mut client = match Client::connect(&addr) {
            Ok(c) => c,
            Err(_) => {
                tally.errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        while Instant::now() < deadline {
            let req = &queries[i % queries.len()];
            i += 1;
            if corrupt_rate > 0.0 && (splitmix64(&mut rng) as f64 / u64::MAX as f64) < corrupt_rate
            {
                // Hostile path: mangled payload under a valid frame.
                let mangled = corrupt_payload(&req.encode(), &mut rng);
                tally.corrupt_sent.fetch_add(1, Ordering::Relaxed);
                let outcome = write_frame(client.stream_mut(), &mangled)
                    .and_then(|()| read_frame(client.stream_mut(), MAX_FRAME));
                match outcome {
                    Ok(Some(payload)) => {
                        // Some mutations still decode as valid requests
                        // (a flipped address bit, say); survival means
                        // a well-formed response of *any* kind came
                        // back and the connection is still usable.
                        if Response::decode(&payload).is_ok() {
                            tally.corrupt_survived.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A close or transport error is a lost connection,
                    // not a survival; reconnect and keep going.
                    Ok(None) | Err(_) => continue 'reconnect,
                }
                continue;
            }
            let start = Instant::now();
            match client.call(req) {
                Ok(Response::Overload) => {
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(5));
                    continue 'reconnect;
                }
                Ok(Response::Error(_)) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                }
                Ok(resp) if resp.answers(req) => {
                    latencies.push(start.elapsed().as_micros() as u64);
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                    let per_op = match req {
                        Request::Owner(_) => Some(&tally.ok_owner),
                        Request::Border(_) => Some(&tally.ok_border),
                        Request::Neighbor(_) => Some(&tally.ok_neighbor),
                        _ => None,
                    };
                    if let Some(c) = per_op {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                    if matches!(resp, Response::Owner(None) | Response::Border(None)) {
                        tally.not_found.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                    continue 'reconnect;
                }
            }
        }
        break;
    }
    latencies
}

/// One slow-loris connection: two bytes of a frame header, then
/// silence. Returns once the server closes the socket (an eviction) or
/// the grace deadline passes (not evicted — a robustness failure the
/// report surfaces).
fn stall(addr: SocketAddr, grace_deadline: Instant, tally: &Tally) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    tally.stalled.fetch_add(1, Ordering::Relaxed);
    if stream.write_all(&[0, 0]).is_err() {
        // Closed before we even stalled: still an eviction.
        tally.stalled_evicted.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut byte = [0u8; 16];
    while Instant::now() < grace_deadline {
        match stream.read(&mut byte) {
            // Server closed us (clean EOF) or reset us: evicted.
            Ok(0) => {
                tally.stalled_evicted.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Ok(_) => {
                // An Error frame before the close also counts; keep
                // reading until the close lands.
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                tally.stalled_evicted.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Run the load generator against a live server.
pub fn run(addr: SocketAddr, queries: &[Request], cfg: &LoadgenConfig) -> io::Result<LoadReport> {
    if queries.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "empty query set: the border map has no routers or links",
        ));
    }
    let tally = Arc::new(Tally {
        ok: AtomicU64::new(0),
        ok_owner: AtomicU64::new(0),
        ok_border: AtomicU64::new(0),
        ok_neighbor: AtomicU64::new(0),
        not_found: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        corrupt_sent: AtomicU64::new(0),
        corrupt_survived: AtomicU64::new(0),
        stalled: AtomicU64::new(0),
        stalled_evicted: AtomicU64::new(0),
    });
    let start = Instant::now();
    let deadline = start + cfg.duration;
    let mut handles = Vec::new();
    for c in 0..cfg.conns.max(1) {
        let queries = queries.to_vec();
        let tally = Arc::clone(&tally);
        let rate = cfg.corrupt_rate.clamp(0.0, 1.0);
        let seed = cfg.corrupt_seed ^ (c as u64).wrapping_mul(0x9e37_79b9);
        handles.push(std::thread::spawn(move || {
            drive(addr, &queries, c * 7919, deadline, &tally, rate, seed)
        }));
    }
    // Stall threads get a grace window past the main deadline so an
    // eviction landing near the end is still observed.
    let mut stall_handles = Vec::new();
    let grace_deadline = deadline + Duration::from_secs(2);
    for _ in 0..cfg.stall_conns {
        let tally = Arc::clone(&tally);
        stall_handles.push(std::thread::spawn(move || {
            stall(addr, grace_deadline, &tally)
        }));
    }
    let reload = match &cfg.reload_with {
        Some(path) => {
            // Fire the hot swap once the pool has warmed up.
            std::thread::sleep(cfg.duration / 2);
            let mut client = Client::connect(&addr)?;
            let req = Request::Reload(path.display().to_string());
            let rt_start = Instant::now();
            match client.call(&req)? {
                Response::Reloaded {
                    generation,
                    build_us,
                    swap_us,
                    ..
                } => Some(ReloadStats {
                    round_trip_us: rt_start.elapsed().as_micros() as u64,
                    build_us,
                    swap_us,
                    generation,
                }),
                Response::Error(msg) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, msg))
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected reload response: {other:?}"),
                    ))
                }
            }
        }
        None => None,
    };
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().unwrap_or_default());
    }
    for h in stall_handles {
        let _ = h.join();
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let ok = tally.ok.load(Ordering::Relaxed);
    Ok(LoadReport {
        conns: cfg.conns.max(1),
        duration_s: elapsed,
        queries_ok: ok,
        ok_owner: tally.ok_owner.load(Ordering::Relaxed),
        ok_border: tally.ok_border.load(Ordering::Relaxed),
        ok_neighbor: tally.ok_neighbor.load(Ordering::Relaxed),
        queries_not_found: tally.not_found.load(Ordering::Relaxed),
        queries_shed: tally.shed.load(Ordering::Relaxed),
        queries_error: tally.errors.load(Ordering::Relaxed),
        qps: if elapsed > 0.0 {
            ok as f64 / elapsed
        } else {
            0.0
        },
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        corrupt_sent: tally.corrupt_sent.load(Ordering::Relaxed),
        corrupt_survived: tally.corrupt_survived.load(Ordering::Relaxed),
        stalled: tally.stalled.load(Ordering::Relaxed),
        stalled_evicted: tally.stalled_evicted.load(Ordering::Relaxed),
        reload,
    })
}

// ---- high-connection scale mode -------------------------------------
//
// The closed-loop generator above spends a thread per connection; at
// tens of thousands of connections that is exactly the architecture the
// epoll server backend exists to beat. The scale mode drives the same
// protocol from a single epoll loop on the client side: a configurable
// fraction of connections sit idle as keepalive ballast while the rest
// run pipelined closed-loop queries.

/// Scale-mode tunables (`loadgen --connections N --idle-frac F`).
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Total concurrent connections to hold open.
    pub connections: usize,
    /// Fraction (0..=1) of connections that stay idle after connecting:
    /// pure keepalive ballast the server must carry for free.
    pub idle_frac: f64,
    /// How long the active connections keep querying.
    pub duration: Duration,
    /// Frames in flight per active connection (pipelining depth).
    pub pipeline: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            connections: 1000,
            idle_frac: 0.5,
            duration: Duration::from_secs(5),
            pipeline: 4,
        }
    }
}

/// One event loop's counters as reported in `BENCH_serve_scale.json`
/// (mirrors [`crate::server::LoopStat`], owned here so the report can
/// serialize without a live server handle).
#[derive(Clone, Debug, Default)]
pub struct ScaleLoopStat {
    /// Loop index.
    pub index: usize,
    /// `epoll_wait` returns.
    pub wakeups: u64,
    /// Readiness events dispatched.
    pub events: u64,
    /// Socket reads issued.
    pub reads: u64,
    /// Frames decoded.
    pub frames: u64,
    /// Vectored writes issued.
    pub writevs: u64,
    /// Connections accepted.
    pub accepts: u64,
    /// Median events per non-empty wakeup.
    pub batch_p50: u64,
    /// p99 events per non-empty wakeup.
    pub batch_p99: u64,
}

/// Results of one scale-mode run.
#[derive(Clone, Debug, Default)]
pub struct ScaleReport {
    /// Server backend the run targeted (caller-provided label).
    pub backend: String,
    /// Connections requested.
    pub connections: usize,
    /// Connections running closed-loop queries.
    pub active_conns: usize,
    /// Connections parked as keepalive ballast.
    pub idle_conns: usize,
    /// Wall-clock run time in seconds.
    pub duration_s: f64,
    /// Queries answered with a well-formed non-error response.
    pub queries_ok: u64,
    /// Successful queries per second.
    pub qps: f64,
    /// Latency percentiles over successful queries, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: u64,
    /// Queries lost after being acked: the connection had received
    /// responses, then died with queries still in flight. Must be 0.
    pub lost: u64,
    /// In-flight queries on connections the server never served
    /// (shed at admission, or still queued at shutdown). Not losses:
    /// nothing on these connections was ever acknowledged.
    pub unadmitted: u64,
    /// Connections the server shed with an `Overload` frame.
    pub shed_conns: u64,
    /// Idle connections the server closed before the deadline. Must be
    /// 0: idle keepalive ballast is not evictable load.
    pub idle_evicted: u64,
    /// TCP connects that failed outright.
    pub connect_failures: u64,
    /// Per-event-loop server counters (filled by the caller, who holds
    /// the server handle; empty when driving a remote server).
    pub loops: Vec<ScaleLoopStat>,
}

impl ScaleReport {
    /// Stable JSON schema for `BENCH_serve_scale.json`.
    pub fn to_json(&self) -> String {
        let loops = self
            .loops
            .iter()
            .map(|l| {
                format!(
                    "    {{\"loop\": {}, \"wakeups\": {}, \"events\": {}, \"reads\": {}, \
                     \"frames\": {}, \"writevs\": {}, \"accepts\": {}, \"batch_p50\": {}, \
                     \"batch_p99\": {}}}",
                    l.index,
                    l.wakeups,
                    l.events,
                    l.reads,
                    l.frames,
                    l.writevs,
                    l.accepts,
                    l.batch_p50,
                    l.batch_p99
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let loops = if loops.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{loops}\n  ]")
        };
        format!(
            "{{\n  \"bench\": \"serve_scale\",\n  \"schema\": 1,\n  \"backend\": \"{}\",\n  \
             \"connections\": {},\n  \"active_conns\": {},\n  \"idle_conns\": {},\n  \
             \"duration_s\": {:.3},\n  \"queries_ok\": {},\n  \"qps\": {:.1},\n  \
             \"p50_us\": {},\n  \"p99_us\": {},\n  \"p999_us\": {},\n  \"lost\": {},\n  \
             \"unadmitted\": {},\n  \"shed_conns\": {},\n  \"idle_evicted\": {},\n  \
             \"connect_failures\": {},\n  \"loops\": {}\n}}\n",
            self.backend,
            self.connections,
            self.active_conns,
            self.idle_conns,
            self.duration_s,
            self.queries_ok,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.lost,
            self.unadmitted,
            self.shed_conns,
            self.idle_evicted,
            self.connect_failures,
            loops
        )
    }

    /// Write the JSON report atomically.
    pub fn write_json(&self, path: &std::path::Path) -> io::Result<()> {
        bdrmap_types::fsutil::write_atomic(path, self.to_json().as_bytes())
    }
}

/// Client-side state for one scale-mode connection.
#[cfg(target_os = "linux")]
struct ScaleConn {
    stream: TcpStream,
    idle: bool,
    /// Send timestamps of in-flight requests, oldest first.
    pending: std::collections::VecDeque<Instant>,
    inbuf: crate::conn::FrameBuf,
    outbuf: Vec<u8>,
    outpos: usize,
    /// Registered epoll interest bits.
    interest: u32,
    /// Responses received on this connection (0 = never admitted).
    recvd: u64,
    /// The server shed us with an Overload frame.
    shed: bool,
    dead: bool,
    /// Next query index for this connection's round-robin.
    qi: usize,
}

/// Drive a server at high connection counts from one epoll loop.
///
/// `connections × idle_frac` connections park as keepalive ballast; the
/// rest run `pipeline`-deep closed-loop queries until the deadline,
/// then a grace window collects in-flight responses. The returned
/// report distinguishes hard failures (acked-then-lost queries, evicted
/// idle connections) from admission-control outcomes (shed, unadmitted)
/// that are correct behaviour for an overloaded backend.
#[cfg(target_os = "linux")]
pub fn run_scale(
    addr: SocketAddr,
    queries: &[Request],
    cfg: &ScaleConfig,
) -> io::Result<ScaleReport> {
    use bdrmap_types::sys::{Epoll, EpollEvent, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

    if queries.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "empty query set: the border map has no routers or links",
        ));
    }
    let connections = cfg.connections.max(1);
    let idle_target = ((connections as f64) * cfg.idle_frac.clamp(0.0, 1.0)) as usize;
    let pipeline = cfg.pipeline.max(1);
    // Each connection needs a client-side fd (the caller's in-process
    // server doubles that); headroom for listeners and stdio.
    let _ = bdrmap_types::sys::ensure_nofile((connections as u64) * 2 + 512);

    let ep = Epoll::new()?;
    let mut conns: Vec<ScaleConn> = Vec::with_capacity(connections);
    let mut connect_failures = 0u64;
    for c in 0..connections {
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => {
                // One paced retry: a full listen backlog mid-storm is
                // transient while the server's accept loop catches up.
                std::thread::sleep(Duration::from_millis(10));
                match TcpStream::connect(addr) {
                    Ok(s) => s,
                    Err(_) => {
                        connect_failures += 1;
                        continue;
                    }
                }
            }
        };
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let idle = c < idle_target;
        let tok = conns.len() as u64;
        use std::os::unix::io::AsRawFd;
        ep.add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, tok)?;
        conns.push(ScaleConn {
            stream,
            idle,
            pending: std::collections::VecDeque::new(),
            inbuf: crate::conn::FrameBuf::new(MAX_FRAME, pipeline * 2 + 8),
            outbuf: Vec::new(),
            outpos: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            recvd: 0,
            shed: false,
            dead: false,
            qi: c.wrapping_mul(7919),
        });
    }

    let mut ok = 0u64;
    let mut lost = 0u64;
    let mut unadmitted = 0u64;
    let mut shed_conns = 0u64;
    let mut idle_evicted = 0u64;
    let mut latencies: Vec<u64> = Vec::new();

    let enqueue = |conn: &mut ScaleConn, queries: &[Request]| {
        let req = &queries[conn.qi % queries.len()];
        conn.qi = conn.qi.wrapping_add(1);
        let payload = req.encode();
        conn.outbuf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        conn.outbuf.extend_from_slice(&payload);
        conn.pending.push_back(Instant::now());
    };

    // Prime the pipelines.
    for conn in conns.iter_mut().filter(|c| !c.idle) {
        for _ in 0..pipeline {
            enqueue(conn, queries);
        }
    }

    let start = Instant::now();
    let deadline = start + cfg.duration;
    let grace = deadline + Duration::from_secs(2);
    let mut events = vec![EpollEvent::default(); 1024];
    loop {
        let now = Instant::now();
        if now >= grace {
            break;
        }
        let in_flight = conns.iter().any(|c| !c.dead && !c.pending.is_empty());
        let writable = conns.iter().any(|c| !c.dead && c.outpos < c.outbuf.len());
        if now >= deadline && !in_flight && !writable {
            break;
        }
        // Flush pass: push queued request bytes until the kernel pushes
        // back, then lean on EPOLLOUT.
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.dead || conn.outpos >= conn.outbuf.len() {
                continue;
            }
            loop {
                match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.outpos += n;
                        if conn.outpos >= conn.outbuf.len() {
                            conn.outbuf.clear();
                            conn.outpos = 0;
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            let want = if conn.outpos < conn.outbuf.len() {
                EPOLLIN | EPOLLRDHUP | EPOLLOUT
            } else {
                EPOLLIN | EPOLLRDHUP
            };
            if !conn.dead && want != conn.interest {
                use std::os::unix::io::AsRawFd;
                conn.interest = want;
                let _ = ep.modify(conn.stream.as_raw_fd(), want, i as u64);
            }
        }
        let n = ep.wait(&mut events, 25)?;
        for e in events.iter().take(n) {
            let idx = e.data as usize;
            let Some(conn) = conns.get_mut(idx) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            // Read everything available, then classify the frames.
            let mut eof = false;
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(nread) => conn.inbuf.push(&chunk[..nread]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            let frames = conn.inbuf.extract().unwrap_or_default();
            for payload in frames {
                match Response::decode(&payload) {
                    Ok(Response::Overload) if conn.recvd == 0 => {
                        // Shed at admission: nothing was ever acked.
                        conn.shed = true;
                        shed_conns += 1;
                        unadmitted += conn.pending.len() as u64;
                        conn.pending.clear();
                    }
                    Ok(Response::Error(_)) | Err(_) => {
                        // Goodbye/error frame: the in-flight query it
                        // answers is gone, but it was never acked.
                        if conn.pending.pop_front().is_some() {
                            unadmitted += 1;
                        }
                    }
                    Ok(_) => {
                        if let Some(sent) = conn.pending.pop_front() {
                            latencies.push(sent.elapsed().as_micros() as u64);
                            ok += 1;
                            conn.recvd += 1;
                            if Instant::now() < deadline {
                                enqueue(conn, queries);
                            }
                        }
                    }
                }
            }
            if eof {
                conn.dead = true;
                let in_flight = conn.pending.len() as u64;
                if conn.idle {
                    // A shed connection's close is admission control
                    // (already counted in shed_conns), not an eviction
                    // of admitted idle ballast.
                    if !conn.shed && Instant::now() < deadline {
                        idle_evicted += 1;
                    }
                } else if in_flight > 0 {
                    if conn.recvd > 0 {
                        // The server served this connection, then
                        // dropped acked queries: a hard failure.
                        lost += in_flight;
                    } else {
                        unadmitted += in_flight;
                    }
                }
                conn.pending.clear();
            }
        }
    }
    // Whatever is still pending after the grace window on a live,
    // previously-served connection counts as lost.
    for conn in &conns {
        if conn.dead || conn.pending.is_empty() {
            continue;
        }
        if conn.recvd > 0 {
            lost += conn.pending.len() as u64;
        } else {
            unadmitted += conn.pending.len() as u64;
        }
    }
    let elapsed = start
        .elapsed()
        .as_secs_f64()
        .min(cfg.duration.as_secs_f64());
    latencies.sort_unstable();
    Ok(ScaleReport {
        backend: String::new(),
        connections,
        active_conns: conns.iter().filter(|c| !c.idle).count(),
        idle_conns: conns.iter().filter(|c| c.idle).count(),
        duration_s: elapsed,
        queries_ok: ok,
        qps: if elapsed > 0.0 {
            ok as f64 / elapsed
        } else {
            0.0
        },
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        lost,
        unadmitted,
        shed_conns,
        idle_evicted,
        connect_failures,
        loops: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.999), 7);
    }

    /// Pins the nearest-rank edge-case semantics: rank is
    /// `ceil(len * q)` clamped to `1..=len`, so `q = 0.0` is the
    /// minimum, `q = 1.0` the maximum, and any quantile of fewer
    /// samples than its resolution (p999 of < 1000) lands on the
    /// maximum rather than interpolating past the data.
    #[test]
    fn percentile_edge_cases() {
        // Empty input: defined as 0 for every q.
        assert_eq!(percentile(&[], 0.0), 0);
        assert_eq!(percentile(&[], 1.0), 0);
        assert_eq!(percentile(&[], 0.999), 0);
        // A single sample answers every quantile.
        assert_eq!(percentile(&[42], 0.0), 42);
        assert_eq!(percentile(&[42], 0.5), 42);
        assert_eq!(percentile(&[42], 1.0), 42);
        // q = 0.0 gives rank 0, clamped up to rank 1: the minimum.
        assert_eq!(percentile(&[3, 8, 20], 0.0), 3);
        // q = 1.0 gives rank = len exactly: the maximum.
        assert_eq!(percentile(&[3, 8, 20], 1.0), 20);
        // p999 with fewer than 1000 samples: ceil rounds the rank up
        // to len, so the answer is the maximum, never out of bounds.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.999), 100);
        assert_eq!(percentile(&[5, 6], 0.999), 6);
        // Duplicate maxima: the tied value is returned for every rank
        // that lands in the run of duplicates.
        let dup = [1, 2, 9, 9, 9];
        assert_eq!(percentile(&dup, 1.0), 9);
        assert_eq!(percentile(&dup, 0.999), 9);
        assert_eq!(percentile(&dup, 0.5), 9); // rank ceil(2.5) = 3
        assert_eq!(percentile(&dup, 0.4), 2); // rank 2
    }

    /// The same nearest-rank semantics must hold for the observability
    /// histogram. `Histogram::quantile` uses the identical rank rule,
    /// and its bucket mapping is monotonic, so for every input the
    /// histogram answer is exactly the upper bucket bound of the exact
    /// nearest-rank answer:
    /// `hist.quantile(q) == Histogram::bucket_bound(percentile(v, q))`.
    #[test]
    fn histogram_quantile_matches_percentile_semantics() {
        use bdrmap_obs::Histogram;
        let cases: &[&[u64]] = &[
            &[],
            &[42],
            &[3, 8, 20],
            &[5, 6],
            &[1, 2, 9, 9, 9],
            &[0, 0, 0, 1],
            &[1, 1_000, 1_000_000, u64::MAX],
        ];
        let hundred: Vec<u64> = (1..=100).collect();
        for samples in cases.iter().copied().chain([hundred.as_slice()]) {
            let hist = Histogram::new();
            for &s in samples {
                hist.record(s);
            }
            for q in [0.0, 0.4, 0.5, 0.99, 0.999, 1.0] {
                assert_eq!(
                    hist.quantile(q),
                    Histogram::bucket_bound(percentile(samples, q)),
                    "samples {samples:?} q {q}"
                );
            }
        }
    }

    #[test]
    fn report_json_is_stable() {
        let report = LoadReport {
            conns: 4,
            duration_s: 2.0,
            queries_ok: 1000,
            ok_owner: 500,
            ok_border: 300,
            ok_neighbor: 200,
            queries_not_found: 10,
            queries_shed: 1,
            queries_error: 0,
            qps: 500.0,
            p50_us: 12,
            p99_us: 90,
            p999_us: 400,
            corrupt_sent: 50,
            corrupt_survived: 50,
            stalled: 2,
            stalled_evicted: 2,
            reload: Some(ReloadStats {
                round_trip_us: 1500,
                build_us: 1200,
                swap_us: 20,
                generation: 2,
            }),
        };
        let json = report.to_json();
        for key in [
            "\"bench\": \"serve\"",
            "\"schema\": 2",
            "\"queries_ok\": 1000",
            "\"queries_shed\": 1",
            "\"qps\": 500.0",
            "\"p999_us\": 400",
            "\"corrupt_sent\": 50",
            "\"corrupt_survived\": 50",
            "\"stalled\": 2",
            "\"stalled_evicted\": 2",
            "\"swap_us\": 20",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The per-opcode split is stdout-only; the bench schema must
        // not grow keys.
        assert!(!json.contains("ok_owner"), "per-op counts leaked into JSON");
        let none = LoadReport::default().to_json();
        assert!(none.contains("\"reload\": null"));
    }

    #[test]
    fn scale_report_json_is_stable() {
        let report = ScaleReport {
            backend: "epoll".to_string(),
            connections: 20000,
            active_conns: 10000,
            idle_conns: 10000,
            duration_s: 10.0,
            queries_ok: 123456,
            qps: 12345.6,
            p50_us: 40,
            p99_us: 900,
            p999_us: 4000,
            lost: 0,
            unadmitted: 3,
            shed_conns: 1,
            idle_evicted: 0,
            connect_failures: 0,
            loops: vec![ScaleLoopStat {
                index: 0,
                wakeups: 1000,
                events: 5000,
                reads: 4000,
                frames: 123456,
                writevs: 3000,
                accepts: 20000,
                batch_p50: 4,
                batch_p99: 64,
            }],
        };
        let json = report.to_json();
        for key in [
            "\"bench\": \"serve_scale\"",
            "\"schema\": 1",
            "\"backend\": \"epoll\"",
            "\"connections\": 20000",
            "\"active_conns\": 10000",
            "\"idle_conns\": 10000",
            "\"queries_ok\": 123456",
            "\"p99_us\": 900",
            "\"lost\": 0",
            "\"unadmitted\": 3",
            "\"shed_conns\": 1",
            "\"idle_evicted\": 0",
            "\"connect_failures\": 0",
            "\"batch_p99\": 64",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let empty = ScaleReport::default().to_json();
        assert!(empty.contains("\"loops\": []"));
    }

    #[test]
    fn corruption_is_deterministic_and_differs() {
        let payload = Request::Stats.encode();
        let mut a = 42u64;
        let mut b = 42u64;
        let x = corrupt_payload(&payload, &mut a);
        let y = corrupt_payload(&payload, &mut b);
        assert_eq!(x, y, "same seed, same mutation");
        assert_ne!(x, payload, "mutation must change the bytes");
        // Different seeds eventually produce different mutations.
        let mut c = 43u64;
        let z = corrupt_payload(&payload, &mut c);
        let mut c2 = 44u64;
        let z2 = corrupt_payload(&payload, &mut c2);
        assert!(z != x || z2 != x);
    }
}
