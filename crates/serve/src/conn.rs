//! Robust per-connection frame extraction.
//!
//! [`Conn`] wraps a [`TcpStream`] with a receive buffer and enforces the
//! server's connection-robustness policy at the framing layer, before
//! any protocol decode runs:
//!
//! - **Setup errors surface.** Failing to arm socket timeouts would
//!   leave a worker blockable forever by one peer, so `Conn::new`
//!   propagates those failures instead of ignoring them.
//! - **Request deadline (slow-loris defence).** Once the first byte of
//!   a frame arrives, the rest must follow within
//!   [`ConnLimits::request_deadline`]. A peer that drips one byte per
//!   poll interval never trips a read timeout, so the deadline is
//!   checked on every wakeup — timeout *and* successful read alike.
//! - **Max inflight frames.** A peer that pipelines an unbounded burst
//!   of frames in one write could monopolise its worker; more than
//!   [`ConnLimits::max_inflight`] complete frames buffered at once is
//!   an eviction.
//! - **Oversize frames** are rejected by length prefix alone — the
//!   payload is never buffered.
//!
//! Idle connections (no partial frame buffered) are *not* evicted; the
//! caller sees [`ConnEvent::Idle`] ticks and decides (e.g. checks the
//! shutdown flag).

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The splitmix64 step, the workspace's standard deterministic PRNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How many injections of each server-side network fault a chaos run
/// may perform. Mirrors [`bdrmap_types::FsFaultBudget`] on the socket
/// side.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetFaultBudget {
    /// Response frames written in two chunks with a pause between.
    pub split: u32,
    /// Responses cut off mid-write by a TCP reset.
    pub reset: u32,
    /// Accepted connections delayed before being handed to a worker.
    pub accept_delay: u32,
    /// Received frames whose handling stalls before dispatch.
    pub stall: u32,
}

impl NetFaultBudget {
    fn as_array(self) -> [u32; 4] {
        [self.split, self.reset, self.accept_delay, self.stall]
    }

    /// Total injections across all kinds.
    pub fn total(self) -> u64 {
        self.as_array().iter().map(|&n| u64::from(n)).sum()
    }
}

/// Seeded configuration for server-side socket chaos.
#[derive(Clone, Copy, Debug)]
pub struct ChaosNetConfig {
    /// Seed for the fault schedule; same seed, same event sequence →
    /// same injections.
    pub seed: u64,
    /// Probability that an eligible event draws a fault.
    pub fault_rate: f64,
    /// Per-kind injection caps.
    pub budget: NetFaultBudget,
    /// How long an injected accept delay or stall lasts.
    pub delay: Duration,
    /// Panic the acceptor thread when it has accepted exactly this
    /// many connections (a scripted, count-based crash — deterministic
    /// where a random draw would not be). Fires at most once.
    pub accept_panic_after: Option<u64>,
    /// Panic a worker thread when the server has received exactly this
    /// many request frames. Fires at most once.
    pub worker_panic_after: Option<u64>,
}

impl Default for ChaosNetConfig {
    fn default() -> Self {
        ChaosNetConfig {
            seed: 0,
            fault_rate: 0.0,
            budget: NetFaultBudget::default(),
            delay: Duration::from_millis(40),
            accept_panic_after: None,
            worker_panic_after: None,
        }
    }
}

/// Injected-fault counts, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetFaultCounts {
    /// Split response writes performed.
    pub split: u64,
    /// Mid-write resets performed.
    pub reset: u64,
    /// Accept delays performed.
    pub accept_delay: u64,
    /// Pre-dispatch stalls performed.
    pub stall: u64,
}

/// What the acceptor should do with the connection it just accepted.
#[derive(Clone, Copy, Debug, Default)]
pub struct AcceptAction {
    /// Sleep this long before queueing the connection.
    pub delay: Option<Duration>,
    /// Panic the acceptor thread (scripted crash for the watchdog).
    pub panic: bool,
}

/// What a worker should do with the frame it just received.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrameAction {
    /// Sleep this long before dispatching (a stuck read, from the
    /// client's point of view).
    pub stall: Option<Duration>,
    /// Panic the worker thread (scripted crash for the watchdog).
    pub panic: bool,
}

/// How to write one response frame.
#[derive(Clone, Copy, Debug)]
pub enum WritePlan {
    /// One clean write.
    Intact,
    /// Two writes split at this byte offset, with a pause between.
    Split(usize),
    /// Write this many bytes, then hard-close the socket.
    ResetAfter(usize),
}

#[derive(Debug)]
struct NetState {
    fault_rate: f64,
    delay: Duration,
    accept_panic_after: Option<u64>,
    worker_panic_after: Option<u64>,
    /// Independent rng streams per event family. Fault draws must be
    /// charged against *deterministic* events (a response write, a
    /// received frame, an accept) — never against read polls, whose
    /// count depends on timing — and separate streams keep one
    /// family's draw count from perturbing another's schedule.
    write_rng: u64,
    frame_rng: u64,
    accept_rng: u64,
    remaining: [u32; 4],
    injected: [u64; 4],
    accepts: u64,
    frames: u64,
    acceptor_panicked: bool,
    worker_panicked: bool,
    quiesced: bool,
}

/// Seeded server-side socket chaos: frame splitting, mid-write resets,
/// accept delays, pre-dispatch stalls, and scripted thread crashes.
/// Clones share state, so the acceptor, every worker, and the test
/// harness all observe one schedule and one budget.
#[derive(Clone, Debug)]
pub struct ChaosNet {
    state: Arc<Mutex<NetState>>,
}

const SPLIT: usize = 0;
const RESET: usize = 1;
const ACCEPT_DELAY: usize = 2;
const STALL: usize = 3;

impl ChaosNet {
    /// Build from a seeded config.
    pub fn new(cfg: ChaosNetConfig) -> ChaosNet {
        ChaosNet {
            state: Arc::new(Mutex::new(NetState {
                fault_rate: cfg.fault_rate,
                delay: cfg.delay,
                accept_panic_after: cfg.accept_panic_after,
                worker_panic_after: cfg.worker_panic_after,
                write_rng: cfg.seed ^ 0x57_52_49_54_45,
                frame_rng: cfg.seed ^ 0x46_52_41_4d_45,
                accept_rng: cfg.seed ^ 0x41_43_43_45_50,
                remaining: cfg.budget.as_array(),
                injected: [0; 4],
                accepts: 0,
                frames: 0,
                acceptor_panicked: false,
                worker_panicked: false,
                quiesced: false,
            })),
        }
    }

    /// Stop injecting: every later event passes through clean, and no
    /// scripted panic fires. The quiescent-convergence invariant rests
    /// on this.
    pub fn quiesce(&self) {
        self.lock().quiesced = true;
    }

    /// Injected-fault counts so far.
    pub fn counts(&self) -> NetFaultCounts {
        let st = self.lock();
        NetFaultCounts {
            split: st.injected[SPLIT],
            reset: st.injected[RESET],
            accept_delay: st.injected[ACCEPT_DELAY],
            stall: st.injected[STALL],
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, NetState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Charge one fault draw of `kind` against its rng stream and
    /// budget. `rng` is selected by the caller so each event family
    /// has an independent schedule.
    fn draw(st: &mut NetState, kind: usize, pick_rng: fn(&mut NetState) -> &mut u64) -> bool {
        if st.quiesced || st.remaining[kind] == 0 {
            return false;
        }
        let bits = splitmix64(pick_rng(st));
        let p = (bits >> 11) as f64 / (1u64 << 53) as f64;
        if p >= st.fault_rate {
            return false;
        }
        st.remaining[kind] -= 1;
        st.injected[kind] += 1;
        true
    }

    /// Called by the acceptor once per accepted connection.
    pub fn on_accept(&self) -> AcceptAction {
        let mut st = self.lock();
        st.accepts += 1;
        if !st.quiesced && !st.acceptor_panicked && st.accept_panic_after == Some(st.accepts) {
            st.acceptor_panicked = true;
            return AcceptAction {
                delay: None,
                panic: true,
            };
        }
        let delay = ChaosNet::draw(&mut st, ACCEPT_DELAY, |s| &mut s.accept_rng).then(|| st.delay);
        AcceptAction {
            delay,
            panic: false,
        }
    }

    /// Called by a worker once per received request frame, before
    /// dispatch.
    pub fn on_frame(&self) -> FrameAction {
        let mut st = self.lock();
        st.frames += 1;
        if !st.quiesced && !st.worker_panicked && st.worker_panic_after == Some(st.frames) {
            st.worker_panicked = true;
            return FrameAction {
                stall: None,
                panic: true,
            };
        }
        let stall = ChaosNet::draw(&mut st, STALL, |s| &mut s.frame_rng).then(|| st.delay);
        FrameAction {
            stall,
            panic: false,
        }
    }

    /// Which scripted panics have fired so far, as
    /// `(acceptor, worker)`. The event backend's supervisor uses this
    /// to attribute a dead loop to the component whose scripted crash
    /// killed it, keeping restart counters comparable across backends.
    pub fn scripted_fired(&self) -> (bool, bool) {
        let st = self.lock();
        (st.acceptor_panicked, st.worker_panicked)
    }

    /// Called once per response frame about to be written; `frame_len`
    /// is the full encoded length including the length prefix.
    pub fn write_plan(&self, frame_len: usize) -> WritePlan {
        let mut st = self.lock();
        // Reset takes precedence: it is the harsher fault, and giving
        // each kind its own draw keeps the schedules independent.
        if ChaosNet::draw(&mut st, RESET, |s| &mut s.write_rng) {
            let cut = if frame_len > 1 {
                1 + (splitmix64(&mut st.write_rng) as usize) % (frame_len - 1)
            } else {
                0
            };
            return WritePlan::ResetAfter(cut);
        }
        if ChaosNet::draw(&mut st, SPLIT, |s| &mut s.write_rng) && frame_len > 1 {
            let cut = 1 + (splitmix64(&mut st.write_rng) as usize) % (frame_len - 1);
            return WritePlan::Split(cut);
        }
        WritePlan::Intact
    }
}

/// Per-connection policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ConnLimits {
    /// Blocking-read poll interval (also the shutdown-check cadence).
    pub poll: Duration,
    /// A started frame must complete within this long.
    pub request_deadline: Duration,
    /// Socket write timeout for responses.
    pub write_deadline: Duration,
    /// Max complete frames buffered from one connection at once.
    pub max_inflight: usize,
    /// Max frame payload length in bytes.
    pub max_frame: usize,
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits {
            poll: Duration::from_millis(200),
            request_deadline: Duration::from_secs(5),
            write_deadline: Duration::from_secs(5),
            max_inflight: 64,
            max_frame: bdrmap_types::wire::MAX_FRAME,
        }
    }
}

/// Why a connection was terminated by policy rather than by the peer.
#[derive(Debug)]
pub enum ConnError {
    /// Socket configuration (nodelay/timeouts) failed during setup.
    Setup(io::Error),
    /// A started frame outlived the request deadline.
    SlowLoris,
    /// More than `max_inflight` complete frames buffered at once.
    Flood,
    /// A frame length prefix exceeded `max_frame`.
    Oversize(usize),
    /// The peer closed mid-frame.
    MidFrameEof,
    /// Transport error.
    Io(io::Error),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Setup(e) => write!(f, "connection setup: {e}"),
            ConnError::SlowLoris => write!(f, "request deadline exceeded"),
            ConnError::Flood => write!(f, "too many inflight frames"),
            ConnError::Oversize(n) => write!(f, "frame length {n} exceeds cap"),
            ConnError::MidFrameEof => write!(f, "peer closed mid-frame"),
            ConnError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ConnError {}

/// One wakeup's worth of progress on a connection.
#[derive(Debug)]
pub enum ConnEvent {
    /// Complete frame payloads, in arrival order (≥ 1, ≤ `max_inflight`).
    Frames(Vec<Vec<u8>>),
    /// Poll interval elapsed with no partial frame pending; a good
    /// moment for the caller to check its shutdown flag.
    Idle,
    /// The peer closed cleanly at a frame boundary.
    Closed,
}

/// Why a [`FrameBuf`] refused its contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix exceeded the frame cap.
    Oversize(usize),
    /// More than `max_inflight` complete frames buffered at once.
    Flood,
}

/// Policy-enforcing accumulator for length-prefixed frames, shared by
/// the blocking [`Conn`] and the event backend's per-connection state
/// machines. Push raw bytes in, extract complete payloads out; the
/// oversize check runs on the length prefix alone (the payload is
/// never buffered) and the flood cap bounds frames per extraction.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    max_frame: usize,
    max_inflight: usize,
}

impl FrameBuf {
    /// An empty buffer enforcing the given caps.
    pub fn new(max_frame: usize, max_inflight: usize) -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            max_frame,
            max_inflight: max_inflight.max(1),
        }
    }

    /// Append raw bytes read from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when bytes of an incomplete frame (or unextracted complete
    /// frames) are buffered — the state a request deadline applies to.
    pub fn has_bytes(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Pull every complete frame out, in arrival order. Errors on
    /// oversize length prefixes and on inflight floods; complete
    /// frames parsed before the violation are dropped with the
    /// connection, exactly as the blocking backend behaves.
    pub fn extract(&mut self) -> Result<Vec<Vec<u8>>, FrameError> {
        let mut frames = Vec::new();
        let mut pos = 0usize;
        loop {
            let rest = &self.buf[pos..];
            if rest.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if len > self.max_frame {
                return Err(FrameError::Oversize(len));
            }
            if rest.len() < 4 + len {
                break;
            }
            frames.push(rest[4..4 + len].to_vec());
            if frames.len() > self.max_inflight {
                return Err(FrameError::Flood);
            }
            pos += 4 + len;
        }
        self.buf.drain(..pos);
        Ok(frames)
    }
}

/// A framed connection with deadlines.
pub struct Conn {
    stream: TcpStream,
    buf: FrameBuf,
    /// When the oldest incomplete frame started arriving.
    partial_since: Option<Instant>,
    limits: ConnLimits,
    /// Server-side chaos schedule; `None` outside chaos runs.
    chaos: Option<ChaosNet>,
}

impl Conn {
    /// Wrap and configure a stream. Socket-option failures are real
    /// errors: a connection we cannot put timeouts on could pin a
    /// worker forever.
    pub fn new(
        stream: TcpStream,
        limits: ConnLimits,
        chaos: Option<ChaosNet>,
    ) -> Result<Conn, ConnError> {
        stream.set_nodelay(true).map_err(ConnError::Setup)?;
        stream
            .set_read_timeout(Some(limits.poll))
            .map_err(ConnError::Setup)?;
        stream
            .set_write_timeout(Some(limits.write_deadline))
            .map_err(ConnError::Setup)?;
        Ok(Conn {
            stream,
            buf: FrameBuf::new(limits.max_frame, limits.max_inflight),
            partial_since: None,
            limits,
            chaos,
        })
    }

    /// The underlying stream, for writing responses.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Write one length-prefixed response frame, executing whatever
    /// plan the chaos schedule dictates: a clean write, a split write
    /// with a pause between the halves, or a mid-write reset (partial
    /// bytes, then a hard close — the error surfaces so the worker
    /// drops the connection).
    pub fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        let plan = match &self.chaos {
            Some(c) => c.write_plan(frame.len()),
            None => WritePlan::Intact,
        };
        match plan {
            WritePlan::Intact => self.stream.write_all(&frame),
            WritePlan::Split(cut) => {
                self.stream.write_all(&frame[..cut])?;
                self.stream.flush()?;
                // A pause long enough that the halves land in separate
                // segments; the client's framing must reassemble them.
                std::thread::sleep(Duration::from_millis(2));
                self.stream.write_all(&frame[cut..])
            }
            WritePlan::ResetAfter(cut) => {
                let _ = self.stream.write_all(&frame[..cut]);
                let _ = self.stream.flush();
                let _ = self.stream.shutdown(Shutdown::Both);
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: injected mid-write reset",
                ))
            }
        }
    }

    /// Pull every complete frame out of the buffer. Errors on oversize
    /// length prefixes and on inflight floods.
    fn extract(&mut self) -> Result<Vec<Vec<u8>>, ConnError> {
        let frames = self.buf.extract().map_err(|e| match e {
            FrameError::Oversize(n) => ConnError::Oversize(n),
            FrameError::Flood => ConnError::Flood,
        })?;
        if !self.buf.has_bytes() {
            self.partial_since = None;
        }
        Ok(frames)
    }

    /// Block (up to the poll interval) for the next event.
    pub fn next_event(&mut self) -> Result<ConnEvent, ConnError> {
        loop {
            let frames = self.extract()?;
            if !frames.is_empty() {
                return Ok(ConnEvent::Frames(frames));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if !self.buf.has_bytes() {
                        Ok(ConnEvent::Closed)
                    } else {
                        Err(ConnError::MidFrameEof)
                    };
                }
                Ok(n) => {
                    if !self.buf.has_bytes() {
                        self.partial_since = Some(Instant::now());
                    }
                    self.buf.push(&chunk[..n]);
                    // Check the deadline after successful reads too: a
                    // drip-feeding peer keeps the socket "live" and
                    // would otherwise never hit the timeout branch.
                    if let Some(t0) = self.partial_since {
                        if t0.elapsed() >= self.limits.request_deadline {
                            return Err(ConnError::SlowLoris);
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    match self.partial_since {
                        Some(t0) if t0.elapsed() >= self.limits.request_deadline => {
                            return Err(ConnError::SlowLoris);
                        }
                        Some(_) => {} // keep waiting for the rest of the frame
                        None => return Ok(ConnEvent::Idle),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ConnError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair(limits: ConnLimits) -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, Conn::new(server, limits, None).unwrap())
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut v = (payload.len() as u32).to_be_bytes().to_vec();
        v.extend_from_slice(payload);
        v
    }

    fn fast() -> ConnLimits {
        ConnLimits {
            poll: Duration::from_millis(20),
            request_deadline: Duration::from_millis(120),
            ..ConnLimits::default()
        }
    }

    #[test]
    fn whole_frames_arrive() {
        let (mut client, mut conn) = pair(fast());
        client.write_all(&frame(b"hello")).unwrap();
        client.write_all(&frame(b"world")).unwrap();
        match conn.next_event().unwrap() {
            ConnEvent::Frames(frames) => {
                assert_eq!(frames.len(), 2);
                assert_eq!(frames[0], b"hello");
                assert_eq!(frames[1], b"world");
            }
            other => panic!("expected frames, got {other:?}"),
        }
        drop(client);
        assert!(matches!(conn.next_event().unwrap(), ConnEvent::Closed));
    }

    #[test]
    fn split_frame_reassembles() {
        let (mut client, mut conn) = pair(fast());
        let f = frame(b"split-me");
        client.write_all(&f[..3]).unwrap();
        client.flush().unwrap();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            client.write_all(&f[3..]).unwrap();
            client
        });
        match conn.next_event().unwrap() {
            ConnEvent::Frames(frames) => assert_eq!(frames[0], b"split-me"),
            other => panic!("expected frames, got {other:?}"),
        }
        drop(writer.join().unwrap());
    }

    #[test]
    fn idle_ticks_without_eviction() {
        let (client, mut conn) = pair(fast());
        // No bytes at all: idle, not an error, even past the deadline.
        for _ in 0..3 {
            assert!(matches!(conn.next_event().unwrap(), ConnEvent::Idle));
        }
        drop(client);
    }

    #[test]
    fn slow_loris_is_evicted() {
        let (mut client, mut conn) = pair(fast());
        // Two bytes of a header, then silence: the deadline applies.
        client.write_all(&[0, 0]).unwrap();
        client.flush().unwrap();
        let start = Instant::now();
        match conn.next_event() {
            Err(ConnError::SlowLoris) => {}
            Ok(ConnEvent::Idle) => panic!("partial frame misread as idle"),
            Ok(other) => panic!("unexpected event {other:?}"),
            Err(e) => panic!("unexpected error {e}"),
        }
        assert!(start.elapsed() >= Duration::from_millis(100));
    }

    #[test]
    fn drip_feed_is_evicted() {
        let (mut client, mut conn) = pair(fast());
        // Keep the socket warm with one byte per poll — never idle,
        // never complete. Must still die by the deadline.
        let writer = std::thread::spawn(move || {
            let mut header = vec![0u8, 0, 1, 0];
            header.resize(64, 0xAB);
            for b in header {
                if client.write_all(&[b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(15));
            }
        });
        let start = Instant::now();
        let err = loop {
            match conn.next_event() {
                Err(e) => break e,
                Ok(ConnEvent::Frames(_)) => panic!("frame should never complete"),
                Ok(_) => {}
            }
        };
        assert!(matches!(err, ConnError::SlowLoris), "got {err:?}");
        assert!(start.elapsed() < Duration::from_secs(2));
        writer.join().unwrap();
    }

    #[test]
    fn flood_is_evicted() {
        let limits = ConnLimits {
            max_inflight: 4,
            ..fast()
        };
        let (mut client, mut conn) = pair(limits);
        let mut burst = Vec::new();
        for _ in 0..32 {
            burst.extend_from_slice(&frame(b"x"));
        }
        client.write_all(&burst).unwrap();
        client.flush().unwrap();
        // One wakeup may deliver a partial buffer below the cap; keep
        // reading until the policy triggers.
        let err = loop {
            match conn.next_event() {
                Err(e) => break e,
                Ok(ConnEvent::Frames(f)) if f.len() <= 4 => continue,
                Ok(other) => panic!("unexpected event {other:?}"),
            }
        };
        assert!(matches!(err, ConnError::Flood), "got {err:?}");
    }

    #[test]
    fn oversize_prefix_rejected_without_buffering() {
        let limits = ConnLimits {
            max_frame: 1024,
            ..fast()
        };
        let (mut client, mut conn) = pair(limits);
        client.write_all(&(u32::MAX).to_be_bytes()).unwrap();
        client.flush().unwrap();
        let err = match conn.next_event() {
            Err(e) => e,
            Ok(other) => panic!("unexpected event {other:?}"),
        };
        assert!(
            matches!(err, ConnError::Oversize(n) if n == u32::MAX as usize),
            "got {err:?}"
        );
    }

    fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
        let mut hdr = [0u8; 4];
        stream.read_exact(&mut hdr)?;
        let len = u32::from_be_bytes(hdr) as usize;
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload)?;
        Ok(payload)
    }

    fn chaos_pair(limits: ConnLimits, chaos: ChaosNet) -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, Conn::new(server, limits, Some(chaos)).unwrap())
    }

    #[test]
    fn same_seed_same_net_schedule() {
        let cfg = ChaosNetConfig {
            seed: 99,
            fault_rate: 0.5,
            budget: NetFaultBudget {
                split: 3,
                reset: 2,
                accept_delay: 2,
                stall: 3,
            },
            delay: Duration::from_millis(1),
            ..Default::default()
        };
        let drive = |net: &ChaosNet| {
            let mut plans = Vec::new();
            for i in 0..24 {
                if i % 3 == 0 {
                    let _ = net.on_accept();
                }
                let _ = net.on_frame();
                plans.push(format!("{:?}", net.write_plan(64)));
            }
            (plans, net.counts())
        };
        let (p1, c1) = drive(&ChaosNet::new(cfg));
        let (p2, c2) = drive(&ChaosNet::new(cfg));
        assert_eq!(p1, p2, "same seed, same event order, same plans");
        assert_eq!(c1, c2);
        assert!(c1.split + c1.reset + c1.accept_delay + c1.stall > 0);
    }

    #[test]
    fn net_budget_exhausts_then_clean() {
        let net = ChaosNet::new(ChaosNetConfig {
            seed: 7,
            fault_rate: 1.0,
            budget: NetFaultBudget {
                reset: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut resets = 0;
        for _ in 0..10 {
            if matches!(net.write_plan(64), WritePlan::ResetAfter(_)) {
                resets += 1;
            }
        }
        assert_eq!(resets, 2, "budget caps injections");
        assert_eq!(net.counts().reset, 2);
        assert!(matches!(net.write_plan(64), WritePlan::Intact));
    }

    #[test]
    fn split_send_still_delivers_a_whole_frame() {
        let net = ChaosNet::new(ChaosNetConfig {
            seed: 3,
            fault_rate: 1.0,
            budget: NetFaultBudget {
                split: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let (mut client, mut conn) = chaos_pair(fast(), net.clone());
        conn.send(b"split-response").unwrap();
        assert_eq!(read_frame(&mut client).unwrap(), b"split-response");
        assert_eq!(net.counts().split, 1);
    }

    #[test]
    fn reset_send_errors_and_kills_the_socket() {
        let net = ChaosNet::new(ChaosNetConfig {
            seed: 5,
            fault_rate: 1.0,
            budget: NetFaultBudget {
                reset: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let (mut client, mut conn) = chaos_pair(fast(), net.clone());
        let err = conn.send(b"doomed-response").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The client sees a truncated stream, never a valid frame.
        assert!(read_frame(&mut client).is_err());
        assert_eq!(net.counts().reset, 1);
    }

    #[test]
    fn scripted_panics_fire_exactly_once() {
        let net = ChaosNet::new(ChaosNetConfig {
            accept_panic_after: Some(2),
            worker_panic_after: Some(3),
            ..Default::default()
        });
        let accepts: Vec<bool> = (0..5).map(|_| net.on_accept().panic).collect();
        assert_eq!(accepts, [false, true, false, false, false]);
        let frames: Vec<bool> = (0..5).map(|_| net.on_frame().panic).collect();
        assert_eq!(frames, [false, false, true, false, false]);
    }

    #[test]
    fn quiesced_net_injects_nothing() {
        let net = ChaosNet::new(ChaosNetConfig {
            seed: 11,
            fault_rate: 1.0,
            budget: NetFaultBudget {
                split: 100,
                reset: 100,
                accept_delay: 100,
                stall: 100,
            },
            accept_panic_after: Some(1),
            worker_panic_after: Some(1),
            ..Default::default()
        });
        net.quiesce();
        for _ in 0..8 {
            let a = net.on_accept();
            assert!(!a.panic && a.delay.is_none());
            let f = net.on_frame();
            assert!(!f.panic && f.stall.is_none());
            assert!(matches!(net.write_plan(64), WritePlan::Intact));
        }
        assert_eq!(net.counts(), NetFaultCounts::default());
    }

    #[test]
    fn framebuf_extracts_incrementally() {
        let mut fb = FrameBuf::new(1024, 8);
        let f = frame(b"abc");
        fb.push(&f[..5]);
        assert_eq!(fb.extract().unwrap(), Vec::<Vec<u8>>::new());
        assert!(fb.has_bytes());
        fb.push(&f[5..]);
        fb.push(&frame(b"defg"));
        let got = fb.extract().unwrap();
        assert_eq!(got, vec![b"abc".to_vec(), b"defg".to_vec()]);
        assert!(!fb.has_bytes());
    }

    #[test]
    fn framebuf_enforces_caps() {
        let mut fb = FrameBuf::new(8, 2);
        fb.push(&(64u32).to_be_bytes());
        assert_eq!(fb.extract(), Err(FrameError::Oversize(64)));

        let mut fb = FrameBuf::new(1024, 2);
        for _ in 0..3 {
            fb.push(&frame(b"x"));
        }
        assert_eq!(fb.extract(), Err(FrameError::Flood));
    }

    #[test]
    fn mid_frame_eof_is_distinguished() {
        let (mut client, mut conn) = pair(fast());
        client.write_all(&frame(b"abc")[..5]).unwrap();
        client.flush().unwrap();
        drop(client);
        let err = match conn.next_event() {
            Err(e) => e,
            Ok(other) => panic!("unexpected event {other:?}"),
        };
        assert!(matches!(err, ConnError::MidFrameEof), "got {err:?}");
    }
}
