//! Robust per-connection frame extraction.
//!
//! [`Conn`] wraps a [`TcpStream`] with a receive buffer and enforces the
//! server's connection-robustness policy at the framing layer, before
//! any protocol decode runs:
//!
//! - **Setup errors surface.** Failing to arm socket timeouts would
//!   leave a worker blockable forever by one peer, so `Conn::new`
//!   propagates those failures instead of ignoring them.
//! - **Request deadline (slow-loris defence).** Once the first byte of
//!   a frame arrives, the rest must follow within
//!   [`ConnLimits::request_deadline`]. A peer that drips one byte per
//!   poll interval never trips a read timeout, so the deadline is
//!   checked on every wakeup — timeout *and* successful read alike.
//! - **Max inflight frames.** A peer that pipelines an unbounded burst
//!   of frames in one write could monopolise its worker; more than
//!   [`ConnLimits::max_inflight`] complete frames buffered at once is
//!   an eviction.
//! - **Oversize frames** are rejected by length prefix alone — the
//!   payload is never buffered.
//!
//! Idle connections (no partial frame buffered) are *not* evicted; the
//! caller sees [`ConnEvent::Idle`] ticks and decides (e.g. checks the
//! shutdown flag).

use std::io::{self, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Per-connection policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ConnLimits {
    /// Blocking-read poll interval (also the shutdown-check cadence).
    pub poll: Duration,
    /// A started frame must complete within this long.
    pub request_deadline: Duration,
    /// Socket write timeout for responses.
    pub write_deadline: Duration,
    /// Max complete frames buffered from one connection at once.
    pub max_inflight: usize,
    /// Max frame payload length in bytes.
    pub max_frame: usize,
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits {
            poll: Duration::from_millis(200),
            request_deadline: Duration::from_secs(5),
            write_deadline: Duration::from_secs(5),
            max_inflight: 64,
            max_frame: bdrmap_types::wire::MAX_FRAME,
        }
    }
}

/// Why a connection was terminated by policy rather than by the peer.
#[derive(Debug)]
pub enum ConnError {
    /// Socket configuration (nodelay/timeouts) failed during setup.
    Setup(io::Error),
    /// A started frame outlived the request deadline.
    SlowLoris,
    /// More than `max_inflight` complete frames buffered at once.
    Flood,
    /// A frame length prefix exceeded `max_frame`.
    Oversize(usize),
    /// The peer closed mid-frame.
    MidFrameEof,
    /// Transport error.
    Io(io::Error),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Setup(e) => write!(f, "connection setup: {e}"),
            ConnError::SlowLoris => write!(f, "request deadline exceeded"),
            ConnError::Flood => write!(f, "too many inflight frames"),
            ConnError::Oversize(n) => write!(f, "frame length {n} exceeds cap"),
            ConnError::MidFrameEof => write!(f, "peer closed mid-frame"),
            ConnError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ConnError {}

/// One wakeup's worth of progress on a connection.
#[derive(Debug)]
pub enum ConnEvent {
    /// Complete frame payloads, in arrival order (≥ 1, ≤ `max_inflight`).
    Frames(Vec<Vec<u8>>),
    /// Poll interval elapsed with no partial frame pending; a good
    /// moment for the caller to check its shutdown flag.
    Idle,
    /// The peer closed cleanly at a frame boundary.
    Closed,
}

/// A framed connection with deadlines.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// When the oldest incomplete frame started arriving.
    partial_since: Option<Instant>,
    limits: ConnLimits,
}

impl Conn {
    /// Wrap and configure a stream. Socket-option failures are real
    /// errors: a connection we cannot put timeouts on could pin a
    /// worker forever.
    pub fn new(stream: TcpStream, limits: ConnLimits) -> Result<Conn, ConnError> {
        stream.set_nodelay(true).map_err(ConnError::Setup)?;
        stream
            .set_read_timeout(Some(limits.poll))
            .map_err(ConnError::Setup)?;
        stream
            .set_write_timeout(Some(limits.write_deadline))
            .map_err(ConnError::Setup)?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
            partial_since: None,
            limits,
        })
    }

    /// The underlying stream, for writing responses.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Pull every complete frame out of the buffer. Errors on oversize
    /// length prefixes and on inflight floods.
    fn extract(&mut self) -> Result<Vec<Vec<u8>>, ConnError> {
        let mut frames = Vec::new();
        let mut pos = 0usize;
        loop {
            let rest = &self.buf[pos..];
            if rest.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if len > self.limits.max_frame {
                return Err(ConnError::Oversize(len));
            }
            if rest.len() < 4 + len {
                break;
            }
            frames.push(rest[4..4 + len].to_vec());
            if frames.len() > self.limits.max_inflight {
                return Err(ConnError::Flood);
            }
            pos += 4 + len;
        }
        self.buf.drain(..pos);
        if self.buf.is_empty() {
            self.partial_since = None;
        }
        Ok(frames)
    }

    /// Block (up to the poll interval) for the next event.
    pub fn next_event(&mut self) -> Result<ConnEvent, ConnError> {
        loop {
            let frames = self.extract()?;
            if !frames.is_empty() {
                return Ok(ConnEvent::Frames(frames));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ConnEvent::Closed)
                    } else {
                        Err(ConnError::MidFrameEof)
                    };
                }
                Ok(n) => {
                    if self.buf.is_empty() {
                        self.partial_since = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    // Check the deadline after successful reads too: a
                    // drip-feeding peer keeps the socket "live" and
                    // would otherwise never hit the timeout branch.
                    if let Some(t0) = self.partial_since {
                        if t0.elapsed() >= self.limits.request_deadline {
                            return Err(ConnError::SlowLoris);
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    match self.partial_since {
                        Some(t0) if t0.elapsed() >= self.limits.request_deadline => {
                            return Err(ConnError::SlowLoris);
                        }
                        Some(_) => {} // keep waiting for the rest of the frame
                        None => return Ok(ConnEvent::Idle),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ConnError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair(limits: ConnLimits) -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, Conn::new(server, limits).unwrap())
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut v = (payload.len() as u32).to_be_bytes().to_vec();
        v.extend_from_slice(payload);
        v
    }

    fn fast() -> ConnLimits {
        ConnLimits {
            poll: Duration::from_millis(20),
            request_deadline: Duration::from_millis(120),
            ..ConnLimits::default()
        }
    }

    #[test]
    fn whole_frames_arrive() {
        let (mut client, mut conn) = pair(fast());
        client.write_all(&frame(b"hello")).unwrap();
        client.write_all(&frame(b"world")).unwrap();
        match conn.next_event().unwrap() {
            ConnEvent::Frames(frames) => {
                assert_eq!(frames.len(), 2);
                assert_eq!(frames[0], b"hello");
                assert_eq!(frames[1], b"world");
            }
            other => panic!("expected frames, got {other:?}"),
        }
        drop(client);
        assert!(matches!(conn.next_event().unwrap(), ConnEvent::Closed));
    }

    #[test]
    fn split_frame_reassembles() {
        let (mut client, mut conn) = pair(fast());
        let f = frame(b"split-me");
        client.write_all(&f[..3]).unwrap();
        client.flush().unwrap();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            client.write_all(&f[3..]).unwrap();
            client
        });
        match conn.next_event().unwrap() {
            ConnEvent::Frames(frames) => assert_eq!(frames[0], b"split-me"),
            other => panic!("expected frames, got {other:?}"),
        }
        drop(writer.join().unwrap());
    }

    #[test]
    fn idle_ticks_without_eviction() {
        let (client, mut conn) = pair(fast());
        // No bytes at all: idle, not an error, even past the deadline.
        for _ in 0..3 {
            assert!(matches!(conn.next_event().unwrap(), ConnEvent::Idle));
        }
        drop(client);
    }

    #[test]
    fn slow_loris_is_evicted() {
        let (mut client, mut conn) = pair(fast());
        // Two bytes of a header, then silence: the deadline applies.
        client.write_all(&[0, 0]).unwrap();
        client.flush().unwrap();
        let start = Instant::now();
        match conn.next_event() {
            Err(ConnError::SlowLoris) => {}
            Ok(ConnEvent::Idle) => panic!("partial frame misread as idle"),
            Ok(other) => panic!("unexpected event {other:?}"),
            Err(e) => panic!("unexpected error {e}"),
        }
        assert!(start.elapsed() >= Duration::from_millis(100));
    }

    #[test]
    fn drip_feed_is_evicted() {
        let (mut client, mut conn) = pair(fast());
        // Keep the socket warm with one byte per poll — never idle,
        // never complete. Must still die by the deadline.
        let writer = std::thread::spawn(move || {
            let mut header = vec![0u8, 0, 1, 0];
            header.resize(64, 0xAB);
            for b in header {
                if client.write_all(&[b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(15));
            }
        });
        let start = Instant::now();
        let err = loop {
            match conn.next_event() {
                Err(e) => break e,
                Ok(ConnEvent::Frames(_)) => panic!("frame should never complete"),
                Ok(_) => {}
            }
        };
        assert!(matches!(err, ConnError::SlowLoris), "got {err:?}");
        assert!(start.elapsed() < Duration::from_secs(2));
        writer.join().unwrap();
    }

    #[test]
    fn flood_is_evicted() {
        let limits = ConnLimits {
            max_inflight: 4,
            ..fast()
        };
        let (mut client, mut conn) = pair(limits);
        let mut burst = Vec::new();
        for _ in 0..32 {
            burst.extend_from_slice(&frame(b"x"));
        }
        client.write_all(&burst).unwrap();
        client.flush().unwrap();
        // One wakeup may deliver a partial buffer below the cap; keep
        // reading until the policy triggers.
        let err = loop {
            match conn.next_event() {
                Err(e) => break e,
                Ok(ConnEvent::Frames(f)) if f.len() <= 4 => continue,
                Ok(other) => panic!("unexpected event {other:?}"),
            }
        };
        assert!(matches!(err, ConnError::Flood), "got {err:?}");
    }

    #[test]
    fn oversize_prefix_rejected_without_buffering() {
        let limits = ConnLimits {
            max_frame: 1024,
            ..fast()
        };
        let (mut client, mut conn) = pair(limits);
        client.write_all(&(u32::MAX).to_be_bytes()).unwrap();
        client.flush().unwrap();
        let err = match conn.next_event() {
            Err(e) => e,
            Ok(other) => panic!("unexpected event {other:?}"),
        };
        assert!(
            matches!(err, ConnError::Oversize(n) if n == u32::MAX as usize),
            "got {err:?}"
        );
    }

    #[test]
    fn mid_frame_eof_is_distinguished() {
        let (mut client, mut conn) = pair(fast());
        client.write_all(&frame(b"abc")[..5]).unwrap();
        client.flush().unwrap();
        drop(client);
        let err = match conn.next_event() {
            Err(e) => e,
            Ok(other) => panic!("unexpected event {other:?}"),
        };
        assert!(matches!(err, ConnError::MidFrameEof), "got {err:?}");
    }
}
