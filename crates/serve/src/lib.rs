//! bdrmapd: a query-serving subsystem over finished bdrmap inferences.
//!
//! The inference pipeline ends with a [`BorderMap`](bdrmap_core::BorderMap);
//! this crate makes that artifact *queryable as a service*:
//!
//! - [`server`] — a daemon that loads a border map into an immutable,
//!   arena-backed [`QueryIndex`](bdrmap_core::QueryIndex) and answers
//!   owner-of-address, border-router-of-link, and links-of-neighbor-AS
//!   queries over a length-prefixed binary TCP protocol, with a fixed
//!   worker pool, a bounded accept queue, and overload shedding.
//!   Snapshots are hot-swappable via a lock-free atomic pointer swap
//!   ([`SwapCell`](bdrmap_types::SwapCell)): a `reload` builds the next
//!   index off-thread and publishes it without dropping in-flight
//!   queries. Servers can boot from a crash-safe
//!   [`SnapStore`](bdrmap_core::SnapStore) directory, rolling back past
//!   corrupt snapshot generations.
//! - [`proto`] — the wire protocol (framing in
//!   [`bdrmap_types::wire`], request/response codecs here). Every
//!   decode failure is a typed [`ProtoError`]; hostile bytes never
//!   panic a worker.
//! - [`conn`] — per-connection robustness policy: request/write
//!   deadlines, max-inflight-frames caps, slow-loris eviction.
//! - [`reload`] — the reload circuit breaker that pins the last-good
//!   snapshot after repeated reload failures.
//! - [`loadgen`] — a closed-loop load generator reporting QPS and
//!   p50/p99/p999 latency, optionally measuring a mid-run hot swap,
//!   injecting corrupt frames, and stalling connections to exercise
//!   the eviction paths.

pub mod conn;
pub mod loadgen;
pub mod proto;
pub mod reload;
pub mod server;

pub use conn::{
    ChaosNet, ChaosNetConfig, Conn, ConnError, ConnEvent, ConnLimits, NetFaultBudget,
    NetFaultCounts,
};
pub use loadgen::{queries_for_map, LoadReport, LoadgenConfig, ReloadStats};
pub use proto::{HealthInfo, LinkInfo, ProtoError, Request, Response, Stats};
pub use reload::{Breaker, BreakerState};
pub use server::{answer, Client, ServeConfig, Server};
