//! bdrmapd: a query-serving subsystem over finished bdrmap inferences.
//!
//! The inference pipeline ends with a [`BorderMap`](bdrmap_core::BorderMap);
//! this crate makes that artifact *queryable as a service*:
//!
//! - [`server`] — a daemon that loads a border map into an immutable,
//!   arena-backed [`QueryIndex`](bdrmap_core::QueryIndex) and answers
//!   owner-of-address, border-router-of-link, and links-of-neighbor-AS
//!   queries over a length-prefixed binary TCP protocol, with overload
//!   shedding at a fixed admission budget. Two interchangeable
//!   backends ([`ServerBackend`]): a blocking fixed worker pool, and —
//!   default on Linux — shared-nothing epoll readiness loops (the
//!   `event` module) that multiplex thousands of non-blocking
//!   connections per loop with timer-wheel deadlines ([`timer`]) and
//!   vectored writes, over raw syscall wrappers in
//!   [`bdrmap_types::sys`]. An optional plain-HTTP GET /metrics
//!   listener serves Prometheus scrapes.
//!   Snapshots are hot-swappable via a lock-free atomic pointer swap
//!   ([`SwapCell`](bdrmap_types::SwapCell)): a `reload` builds the next
//!   index off-thread and publishes it without dropping in-flight
//!   queries. Servers can boot from a crash-safe
//!   [`SnapStore`](bdrmap_core::SnapStore) directory, rolling back past
//!   corrupt snapshot generations.
//! - [`proto`] — the wire protocol (framing in
//!   [`bdrmap_types::wire`], request/response codecs here). Every
//!   decode failure is a typed [`ProtoError`]; hostile bytes never
//!   panic a worker.
//! - [`conn`] — per-connection robustness policy: request/write
//!   deadlines, max-inflight-frames caps, slow-loris eviction.
//! - [`reload`] — the reload circuit breaker that pins the last-good
//!   snapshot after repeated reload failures.
//! - [`loadgen`] — a closed-loop load generator reporting QPS and
//!   p50/p99/p999 latency, optionally measuring a mid-run hot swap,
//!   injecting corrupt frames, and stalling connections to exercise
//!   the eviction paths; plus a scale mode (`run_scale`, Linux) that
//!   holds tens of thousands of concurrent connections from one epoll
//!   client loop and hard-fails on lost acked queries or evicted idle
//!   ballast.

pub mod conn;
mod event;
mod http;
pub mod loadgen;
pub mod proto;
pub mod reload;
pub mod server;
pub mod timer;

pub use conn::{
    ChaosNet, ChaosNetConfig, Conn, ConnError, ConnEvent, ConnLimits, FrameBuf, FrameError,
    NetFaultBudget, NetFaultCounts,
};
pub use loadgen::{
    queries_for_map, LoadReport, LoadgenConfig, ReloadStats, ScaleConfig, ScaleLoopStat,
    ScaleReport,
};
pub use proto::{HealthInfo, LinkInfo, ProtoError, Request, Response, Stats};
pub use reload::{Breaker, BreakerState};
pub use server::{answer, Client, LoopStat, ServeConfig, Server, ServerBackend};
pub use timer::TimerWheel;
