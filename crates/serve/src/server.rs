//! bdrmapd: the query-serving daemon.
//!
//! A [`Server`] owns a TCP listener, a bounded accept queue, and a
//! fixed pool of worker threads. Each worker serves one connection at a
//! time, answering length-prefixed [`proto`](crate::proto) frames from
//! an immutable [`QueryIndex`] snapshot. When the accept queue is full
//! the acceptor *sheds*: the connection gets a single `Overload` frame
//! and is closed, so saturation degrades into fast rejections instead
//! of unbounded queueing.
//!
//! Snapshots are hot-swappable. A `Reload` control frame makes the
//! handling worker build the next index — off the other workers' hot
//! path — and publish it with an atomic pointer swap ([`SwapCell`]):
//! readers that already loaded the old `Arc` finish their in-flight
//! queries on it, and every later query sees the new snapshot. No
//! reader ever takes a lock.
//!
//! Robustness layers (see [`conn`](crate::conn) and
//! [`reload`](crate::reload)):
//!
//! - connections get request/write deadlines, a max-inflight-frames
//!   cap, and slow-loris eviction; socket-setup failures are counted
//!   and the connection refused rather than served without timeouts;
//! - reloads retry with backoff, never panic the worker (index builds
//!   run under `catch_unwind`), and sit behind a circuit breaker that
//!   pins the last-good snapshot after repeated failures;
//! - a server may be started from a [`SnapStore`] directory, in which
//!   case startup and store-reloads verify checksums and roll back
//!   past corrupt generations automatically;
//! - shutdown drains: workers finish the frames already buffered on
//!   their connection, then close.

use crate::conn::{
    ChaosNet, ChaosNetConfig, Conn, ConnError, ConnEvent, ConnLimits, NetFaultCounts,
};
use crate::proto::{HealthInfo, Request, Response, Stats};
use crate::reload::Breaker;
use bdrmap_core::{flat, snapshot, AnyIndex, BorderMap, QueryIndex, QueryRead, SnapStore};
use bdrmap_obs::{Counter, Histogram, Registry};
use bdrmap_types::wire::{read_frame, write_frame, MAX_FRAME};
use bdrmap_types::{Asn, Prefix, SwapCell, SwapReader, Vfs};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker blocks on a quiet connection before checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// How often the supervisor heartbeats its components.
pub(crate) const SUPERVISE_POLL: Duration = Duration::from_millis(20);

/// Which connection-handling engine a [`Server`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerBackend {
    /// The original fixed pool of blocking worker threads: one thread
    /// serves one connection at a time, a bounded channel queues the
    /// rest, and the acceptor sheds beyond it.
    Threads,
    /// Shared-nothing epoll readiness loops (Linux only): every loop
    /// multiplexes thousands of non-blocking connections through
    /// per-connection state machines, with a hashed timer wheel for
    /// deadlines and vectored writes for response bursts.
    Epoll,
}

impl Default for ServerBackend {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            ServerBackend::Epoll
        } else {
            ServerBackend::Threads
        }
    }
}

impl std::str::FromStr for ServerBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(ServerBackend::Threads),
            "epoll" => Ok(ServerBackend::Epoll),
            other => Err(format!(
                "unknown server backend {other:?} (expected threads|epoll)"
            )),
        }
    }
}

impl std::fmt::Display for ServerBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServerBackend::Threads => "threads",
            ServerBackend::Epoll => "epoll",
        })
    }
}

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub listen: String,
    /// Connection-handling engine; defaults to epoll on Linux.
    pub backend: ServerBackend,
    /// Optional plain-HTTP `GET /metrics` listener address (Prometheus
    /// text exposition); `None` disables it.
    pub metrics_addr: Option<String>,
    /// Thread-pool size (threads backend) or event-loop count (epoll
    /// backend).
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it are shed.
    /// Under epoll the same number bounds *open* connections past the
    /// worker/loop count, so both backends shed at `workers + queue`.
    pub queue: usize,
    /// Coarse prefix-ownership layer built under every snapshot,
    /// including reloaded ones (typically the collector view's
    /// single-origin prefixes).
    pub prefix_owners: Vec<(Prefix, Asn)>,
    /// A started request frame must complete within this long
    /// (slow-loris eviction deadline).
    pub request_deadline: Duration,
    /// Socket write timeout for responses.
    pub write_deadline: Duration,
    /// Max complete frames buffered from one connection at once.
    pub max_inflight: usize,
    /// Attempts per reload request before it counts as a failure.
    pub reload_attempts: u32,
    /// Sleep between reload attempts (scales linearly per retry).
    pub reload_backoff: Duration,
    /// Consecutive reload failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub breaker_cooldown: Duration,
    /// First watchdog restart backoff after a component death.
    pub restart_backoff: Duration,
    /// Cap on the watchdog's doubling restart backoff.
    pub restart_backoff_cap: Duration,
    /// Server-side socket chaos (frame splitting, mid-write resets,
    /// accept delays, stalls, scripted thread crashes). `None` in
    /// production.
    pub chaos: Option<ChaosNetConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            backend: ServerBackend::default(),
            metrics_addr: None,
            workers: 4,
            queue: 128,
            prefix_owners: Vec::new(),
            request_deadline: Duration::from_secs(5),
            write_deadline: Duration::from_secs(5),
            max_inflight: 64,
            reload_attempts: 3,
            reload_backoff: Duration::from_millis(50),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            restart_backoff: Duration::from_millis(50),
            restart_backoff_cap: Duration::from_secs(2),
            chaos: None,
        }
    }
}

impl ServeConfig {
    fn limits(&self) -> ConnLimits {
        ConnLimits {
            poll: READ_POLL,
            request_deadline: self.request_deadline,
            write_deadline: self.write_deadline,
            max_inflight: self.max_inflight.max(1),
            max_frame: MAX_FRAME,
        }
    }
}

/// Wire-opcode labels for the `op` metric label, in dispatch order.
const OPS: [&str; 7] = [
    "owner", "border", "neighbor", "stats", "reload", "health", "metrics",
];

/// Index into [`OPS`] (and the per-opcode metric arrays) for a request.
fn op_index(req: &Request) -> usize {
    match req {
        Request::Owner(_) => 0,
        Request::Border(_) => 1,
        Request::Neighbor(_) => 2,
        Request::Stats => 3,
        Request::Reload(_) => 4,
        Request::Health => 5,
        Request::Metrics => 6,
    }
}

/// The daemon's metric handles, resolved once from a server-private
/// [`Registry`] (private so two servers in one process never mix their
/// numbers). The ad-hoc `AtomicU64`s that used to live on `Shared`
/// migrated here; `Stats` wire responses read the same storage, so the
/// two reporters cannot disagree.
pub(crate) struct ServerMetrics {
    pub(crate) registry: Registry,
    /// `bdrmapd_requests_total{op=...}` — every well-formed request,
    /// control frames included.
    pub(crate) requests: [Counter; 7],
    /// `bdrmapd_request_us{op=...}` — wall-clock handling latency.
    pub(crate) latency: [Histogram; 7],
    /// `bdrmapd_malformed_requests_total` — frames that failed decode.
    pub(crate) malformed: Counter,
    /// `bdrmapd_sheds_total` — connections shed at the accept queue.
    pub(crate) sheds: Counter,
    /// `bdrmapd_evictions_total{cause=...}`.
    pub(crate) evicted_slow: Counter,
    pub(crate) evicted_flood: Counter,
    /// `bdrmapd_setup_errors_total` — sockets refused at setup.
    pub(crate) setup_errors: Counter,
    /// `bdrmapd_reloads_total` — successful snapshot swaps.
    pub(crate) reloads: Counter,
    /// `bdrmapd_reload_failures_total` — reloads out of retries.
    pub(crate) reload_failures: Counter,
    /// `bdrmapd_drained_total` — connections closed by graceful drain.
    pub(crate) drained: Counter,
    /// `bdrmapd_watchdog_restarts_total{component=...}` — dead threads
    /// the supervisor brought back: `[acceptor, worker]`.
    pub(crate) watchdog_restarts: [Counter; 2],
    /// `bdrmapd_watchdog_heartbeats_total` — supervision ticks, proof
    /// the watchdog itself is alive.
    pub(crate) watchdog_heartbeats: Counter,
}

/// Per-event-loop instruments (`bdrmapd_loop_*{loop=...}`), created
/// once per loop index so watchdog respawns keep accumulating into the
/// same series. The `reads`/`frames` counters double as the proof that
/// idle connections cost nothing: an all-idle server holds both flat
/// between timer ticks.
#[derive(Clone)]
pub(crate) struct LoopMetrics {
    /// `epoll_wait` returns.
    pub(crate) wakeups: Counter,
    /// Readiness events dispatched.
    pub(crate) events: Counter,
    /// Events delivered per wakeup (batch-size histogram).
    pub(crate) batch: Histogram,
    /// `read` syscalls that returned bytes on connection sockets.
    pub(crate) reads: Counter,
    /// Request frames decoded (proto work).
    pub(crate) frames: Counter,
    /// `writev` syscalls issued for responses.
    pub(crate) writevs: Counter,
    /// Connections accepted by this loop.
    pub(crate) accepts: Counter,
}

impl LoopMetrics {
    fn new(registry: &Registry, index: usize) -> LoopMetrics {
        let l = index.to_string();
        let lbl: &[(&'static str, &str)] = &[("loop", &l)];
        LoopMetrics {
            wakeups: registry.counter("bdrmapd_loop_wakeups_total", lbl),
            events: registry.counter("bdrmapd_loop_events_total", lbl),
            batch: registry.histogram("bdrmapd_loop_event_batch", lbl),
            reads: registry.counter("bdrmapd_loop_reads_total", lbl),
            frames: registry.counter("bdrmapd_loop_frames_total", lbl),
            writevs: registry.counter("bdrmapd_loop_writevs_total", lbl),
            accepts: registry.counter("bdrmapd_loop_accepts_total", lbl),
        }
    }
}

/// One event loop's counters, snapshotted for reports
/// (`BENCH_serve_scale.json` embeds these per loop).
#[derive(Clone, Debug)]
pub struct LoopStat {
    /// Loop index (0-based).
    pub index: usize,
    /// `epoll_wait` returns.
    pub wakeups: u64,
    /// Readiness events dispatched.
    pub events: u64,
    /// Reads that returned bytes.
    pub reads: u64,
    /// Request frames decoded.
    pub frames: u64,
    /// Vectored writes issued.
    pub writevs: u64,
    /// Connections accepted.
    pub accepts: u64,
    /// Median events per wakeup.
    pub batch_p50: u64,
    /// 99th-percentile events per wakeup.
    pub batch_p99: u64,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Registry::new();
        let req = |i: usize| registry.counter("bdrmapd_requests_total", &[("op", OPS[i])]);
        let lat = |i: usize| registry.histogram("bdrmapd_request_us", &[("op", OPS[i])]);
        ServerMetrics {
            requests: std::array::from_fn(req),
            latency: std::array::from_fn(lat),
            malformed: registry.counter("bdrmapd_malformed_requests_total", &[]),
            sheds: registry.counter("bdrmapd_sheds_total", &[]),
            evicted_slow: registry.counter("bdrmapd_evictions_total", &[("cause", "slow_loris")]),
            evicted_flood: registry.counter("bdrmapd_evictions_total", &[("cause", "flood")]),
            setup_errors: registry.counter("bdrmapd_setup_errors_total", &[]),
            reloads: registry.counter("bdrmapd_reloads_total", &[]),
            reload_failures: registry.counter("bdrmapd_reload_failures_total", &[]),
            drained: registry.counter("bdrmapd_drained_total", &[]),
            watchdog_restarts: [
                registry.counter(
                    "bdrmapd_watchdog_restarts_total",
                    &[("component", "acceptor")],
                ),
                registry.counter(
                    "bdrmapd_watchdog_restarts_total",
                    &[("component", "worker")],
                ),
            ],
            watchdog_heartbeats: registry.counter("bdrmapd_watchdog_heartbeats_total", &[]),
            registry,
        }
    }

    /// Data-plane queries only — `Stats`/`Health`/`Reload`/`Metrics`
    /// polling must not distort reported load.
    fn queries(&self) -> u64 {
        self.requests[0].get() + self.requests[1].get() + self.requests[2].get()
    }
}

/// Post-reload accounting, published as ONE atomically-swapped unit.
///
/// The old code stored `last_build_us`, `last_swap_us`, and
/// `store_generation` in independent atomics, so a `Stats` scrape
/// racing a reload could pair the new snapshot's timings with the old
/// generation. Readers now grab the whole triple in one
/// [`SwapCell::load_locked`], so every observed combination was
/// actually published together.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ReloadInfo {
    /// Swap epoch as of this publication.
    generation: u64,
    /// Snapshot-store generation served (0 without a store; carried
    /// over unchanged by file reloads).
    store_generation: u64,
    /// Microseconds the reload spent building the index.
    build_us: u64,
    /// Microseconds the reload spent publishing the swap.
    swap_us: u64,
}

/// State shared by the acceptor, the workers/loops, and the handle.
pub(crate) struct Shared {
    pub(crate) cell: Arc<SwapCell<AnyIndex>>,
    /// Reload accounting; see [`ReloadInfo`].
    reload_info: SwapCell<ReloadInfo>,
    /// Orders concurrent reload publications so a slower reload cannot
    /// overwrite a newer triple with a stale one.
    reload_publish: Mutex<()>,
    pub(crate) stop: AtomicBool,
    prefix_owners: Vec<(Prefix, Asn)>,
    pub(crate) limits: ConnLimits,
    breaker: Mutex<Breaker>,
    store: Option<SnapStore>,
    started: Instant,
    reload_attempts: u32,
    reload_backoff: Duration,
    pub(crate) metrics: ServerMetrics,
    /// Socket-chaos schedule shared by the acceptor and every worker;
    /// `None` in production.
    pub(crate) chaos: Option<ChaosNet>,
    /// Open proto connections across every event loop (epoll backend;
    /// the threads backend bounds admission with its channel instead).
    pub(crate) open_conns: std::sync::atomic::AtomicUsize,
    /// Admission budget: connections past it are shed with one
    /// `Overload` frame, matching the threads backend's
    /// `workers + queue` capacity.
    pub(crate) conn_budget: usize,
    /// Per-loop instruments, created up front so respawned loops keep
    /// their series. Empty under the threads backend.
    pub(crate) loop_metrics: Vec<LoopMetrics>,
    /// Last acknowledged journal LSN of the watch loop feeding this
    /// server; 0 when no journal is attached.
    journal_lsn: AtomicU64,
    /// Batches the watch loop replayed from the journal tail at start.
    recovered_batches: AtomicU64,
}

impl Shared {
    fn stats(&self, idx: &AnyIndex) -> Stats {
        let info = self.reload_info.load_locked();
        Stats {
            generation: info.generation,
            routers: idx.num_routers(),
            links: idx.num_links(),
            prefixes: idx.num_prefixes(),
            queries: self.metrics.queries(),
            sheds: self.metrics.sheds.get(),
            last_build_us: info.build_us,
            last_swap_us: info.swap_us,
            evicted_slow: self.metrics.evicted_slow.get(),
            evicted_flood: self.metrics.evicted_flood.get(),
            setup_errors: self.metrics.setup_errors.get(),
            reload_failures: self.metrics.reload_failures.get(),
            drained: self.metrics.drained.get(),
            breaker_state: self.breaker_code(),
        }
    }

    fn breaker_code(&self) -> u8 {
        self.breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .state_code()
    }

    fn health(&self) -> HealthInfo {
        let info = self.reload_info.load_locked();
        HealthInfo {
            generation: info.store_generation,
            swap_epoch: self.cell.generation(),
            breaker_state: self.breaker_code(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            reload_failures: self.metrics.reload_failures.get(),
            journal_lsn: self.journal_lsn.load(Ordering::Relaxed),
            recovered_batches: self.recovered_batches.load(Ordering::Relaxed),
        }
    }

    /// Publish a finished reload's triple, dropping it if a newer
    /// reload already published (generations are swap epochs, so
    /// "newer" is well-defined even across concurrent reloads).
    fn publish_reload(&self, info: ReloadInfo) {
        let _g = self
            .reload_publish
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if self.reload_info.load_locked().generation < info.generation {
            self.reload_info.store(Arc::new(info));
        }
    }
}

/// A running bdrmapd instance. Dropping the handle without calling
/// [`shutdown`](Server::shutdown) leaves the threads serving until the
/// process exits (daemon mode).
///
/// The handle owns a single *supervisor* thread; the acceptor and the
/// worker pool live under it. The supervisor heartbeats its components
/// and restarts any that die, so a panicking thread degrades into a
/// counted restart instead of a silently smaller server.
pub struct Server {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Build the initial index from `map` and start serving.
    pub fn start(map: &BorderMap, cfg: ServeConfig) -> io::Result<Server> {
        let index = AnyIndex::Heap(QueryIndex::build_with_prefixes(
            map,
            cfg.prefix_owners.iter().copied(),
        ));
        Server::start_inner(index, cfg, ServerMetrics::new(), None, 0)
    }

    /// Load the newest verified-good generation from the snapshot store
    /// at `dir` (rolling back past corrupt files) and start serving it.
    /// `Reload` requests with an empty path re-read the store.
    pub fn start_from_store(dir: impl Into<PathBuf>, cfg: ServeConfig) -> io::Result<Server> {
        // The store reports into the server's private registry, so its
        // generation/disk/quarantine gauges show up in `Metrics`
        // responses next to the daemon's own counters.
        let metrics = ServerMetrics::new();
        let store = SnapStore::open_with(dir, Vfs::real(), metrics.registry.clone())?;
        let outcome = store
            .load_verified()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if outcome.rolled_back() {
            eprintln!(
                "bdrmapd: quarantined {} corrupt snapshot(s); serving generation {}",
                outcome.quarantined.len(),
                outcome.generation
            );
        }
        // A v3 generation is served zero-copy: the verified bytes the
        // store just read back *are* the index. Older versions rebuild
        // the heap index from the decoded map.
        let index = match outcome.version {
            flat::VERSION => flat::V3View::open(outcome.bytes, cfg.prefix_owners.iter().copied())
                .map(AnyIndex::View)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            _ => AnyIndex::Heap(QueryIndex::build_with_prefixes(
                &outcome.map,
                cfg.prefix_owners.iter().copied(),
            )),
        };
        Server::start_inner(index, cfg, metrics, Some(store), outcome.generation)
    }

    fn start_inner(
        index: AnyIndex,
        cfg: ServeConfig,
        metrics: ServerMetrics,
        store: Option<SnapStore>,
        store_generation: u64,
    ) -> io::Result<Server> {
        if cfg.backend == ServerBackend::Epoll && !cfg!(target_os = "linux") {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the epoll backend requires Linux; use --server-backend threads",
            ));
        }
        let workers = cfg.workers.max(1);
        let cell = Arc::new(SwapCell::new(Arc::new(index)));
        let reload_info = SwapCell::new(Arc::new(ReloadInfo {
            generation: cell.generation(),
            store_generation,
            build_us: 0,
            swap_us: 0,
        }));
        let loop_metrics = if cfg.backend == ServerBackend::Epoll {
            (0..workers)
                .map(|i| LoopMetrics::new(&metrics.registry, i))
                .collect()
        } else {
            Vec::new()
        };
        let shared = Arc::new(Shared {
            cell,
            reload_info,
            reload_publish: Mutex::new(()),
            stop: AtomicBool::new(false),
            prefix_owners: cfg.prefix_owners.clone(),
            limits: cfg.limits(),
            breaker: Mutex::new(Breaker::new(cfg.breaker_threshold, cfg.breaker_cooldown)),
            store,
            started: Instant::now(),
            reload_attempts: cfg.reload_attempts.max(1),
            reload_backoff: cfg.reload_backoff,
            metrics,
            chaos: cfg.chaos.map(ChaosNet::new),
            open_conns: std::sync::atomic::AtomicUsize::new(0),
            conn_budget: workers + cfg.queue.max(1),
            loop_metrics,
            journal_lsn: AtomicU64::new(0),
            recovered_batches: AtomicU64::new(0),
        });
        let listener = Arc::new(TcpListener::bind(&cfg.listen)?);
        let local_addr = listener.local_addr()?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(addr) => Some(Arc::new(TcpListener::bind(addr)?)),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let backoff = cfg.restart_backoff.max(Duration::from_millis(1));
        let cap = cfg.restart_backoff_cap.max(backoff);
        let supervisor = match cfg.backend {
            ServerBackend::Threads => {
                let (tx, rx) = sync_channel::<TcpStream>(cfg.queue.max(1));
                let rx = Arc::new(Mutex::new(rx));
                if let Some(ml) = metrics_listener {
                    // A small polling thread scrapes independently of
                    // the worker pool, so `/metrics` stays reachable
                    // even when every worker is pinned.
                    ml.set_nonblocking(true)?;
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || crate::http::polling_metrics_loop(shared, ml));
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    supervise(shared, listener, tx, rx, workers, backoff, cap)
                })
            }
            ServerBackend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    listener.set_nonblocking(true)?;
                    if let Some(ml) = &metrics_listener {
                        ml.set_nonblocking(true)?;
                    }
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        crate::event::supervise_loops(
                            shared,
                            listener,
                            metrics_listener,
                            workers,
                            backoff,
                            cap,
                        )
                    })
                }
                #[cfg(not(target_os = "linux"))]
                unreachable!("epoll backend rejected above on non-Linux")
            }
        };
        Ok(Server {
            local_addr,
            metrics_addr,
            shared,
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The plain-HTTP `/metrics` listener address, when configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Per-event-loop counters (empty under the threads backend).
    pub fn loop_stats(&self) -> Vec<LoopStat> {
        self.shared
            .loop_metrics
            .iter()
            .enumerate()
            .map(|(index, lm)| LoopStat {
                index,
                wakeups: lm.wakeups.get(),
                events: lm.events.get(),
                reads: lm.reads.get(),
                frames: lm.frames.get(),
                writevs: lm.writevs.get(),
                accepts: lm.accepts.get(),
                batch_p50: lm.batch.quantile(0.50),
                batch_p99: lm.batch.quantile(0.99),
            })
            .collect()
    }

    /// Current snapshot swap generation.
    pub fn generation(&self) -> u64 {
        self.shared.cell.generation()
    }

    /// Snapshot-store generation currently served (0 without a store).
    pub fn store_generation(&self) -> u64 {
        self.shared.reload_info.load_locked().store_generation
    }

    /// The server's metric registry rendered as exposition text, as a
    /// `Metrics` wire request would return it.
    pub fn metrics(&self) -> String {
        self.shared.metrics.registry.render()
    }

    /// Statistics as a control client would see them.
    pub fn stats(&self) -> Stats {
        let idx = self.shared.cell.load_locked();
        self.shared.stats(&idx)
    }

    /// Health as a control client would see it.
    pub fn health(&self) -> HealthInfo {
        self.shared.health()
    }

    /// Record the watch loop's journal position so `Health` responses
    /// expose replay state without scraping metrics. `lsn` is the last
    /// acknowledged journal LSN; `recovered` is how many batches
    /// startup recovery replayed from the journal tail.
    pub fn set_journal_state(&self, lsn: u64, recovered: u64) {
        self.shared.journal_lsn.store(lsn, Ordering::Relaxed);
        self.shared
            .recovered_batches
            .store(recovered, Ordering::Relaxed);
    }

    /// Watchdog restart counts so far, as `(acceptor, worker)`.
    pub fn watchdog_restarts(&self) -> (u64, u64) {
        (
            self.shared.metrics.watchdog_restarts[0].get(),
            self.shared.metrics.watchdog_restarts[1].get(),
        )
    }

    /// Injected network-fault counts, when chaos is configured.
    pub fn net_fault_counts(&self) -> Option<NetFaultCounts> {
        self.shared.chaos.as_ref().map(|c| c.counts())
    }

    /// Stop injecting network faults (no-op without chaos). The
    /// quiescent-convergence check flips this before its final sweep.
    pub fn quiesce_chaos(&self) {
        if let Some(c) = &self.shared.chaos {
            c.quiesce();
        }
    }

    /// Stop accepting, drain the workers, and join every thread.
    /// In-flight connections finish the frames they have buffered,
    /// then close.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept; the supervisor
        // joins it and the workers before exiting.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// Run the acceptor and the worker pool under a watchdog: heartbeat
/// every component, join any that died (a panic, scripted or real), and
/// respawn it after a capped doubling backoff. Restarts are counted per
/// component in the metric registry; the snapshot store's rollback
/// contract means a restarted component always finds a servable index,
/// so supervision never has to reason about partial state.
fn supervise(
    shared: Arc<Shared>,
    listener: Arc<TcpListener>,
    tx: SyncSender<TcpStream>,
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    worker_count: usize,
    backoff0: Duration,
    backoff_cap: Duration,
) {
    let spawn_acceptor = |shared: &Arc<Shared>, tx: SyncSender<TcpStream>| {
        let shared = Arc::clone(shared);
        let listener = Arc::clone(&listener);
        std::thread::spawn(move || accept_loop(shared, listener, tx))
    };
    let spawn_worker = |shared: &Arc<Shared>| {
        let reader = SwapCell::reader(&shared.cell);
        let shared = Arc::clone(shared);
        let rx = Arc::clone(&rx);
        std::thread::spawn(move || worker_loop(shared, reader, rx))
    };
    // The supervisor — not the acceptor — owns `tx`: an acceptor panic
    // must not drop the last sender, or every idle worker would see a
    // disconnected queue and exit right when we want to restart one
    // thread, not the whole pool.
    let mut acceptor = spawn_acceptor(&shared, tx.clone());
    let mut workers: Vec<JoinHandle<()>> =
        (0..worker_count).map(|_| spawn_worker(&shared)).collect();
    let mut acceptor_backoff = backoff0;
    let mut worker_backoff = backoff0;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(SUPERVISE_POLL);
        shared.metrics.watchdog_heartbeats.inc();
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if acceptor.is_finished() {
            let _ = acceptor.join();
            shared.metrics.watchdog_restarts[0].inc();
            std::thread::sleep(acceptor_backoff);
            acceptor_backoff = (acceptor_backoff * 2).min(backoff_cap);
            acceptor = spawn_acceptor(&shared, tx.clone());
        }
        for slot in workers.iter_mut() {
            if slot.is_finished() && !shared.stop.load(Ordering::SeqCst) {
                shared.metrics.watchdog_restarts[1].inc();
                std::thread::sleep(worker_backoff);
                worker_backoff = (worker_backoff * 2).min(backoff_cap);
                let dead = std::mem::replace(slot, spawn_worker(&shared));
                let _ = dead.join();
            }
        }
    }
    // Shutdown: the acceptor was woken by the handle's connect; join
    // it, then drop the last sender so idle workers drain and exit.
    let _ = acceptor.join();
    drop(tx);
    for h in workers {
        let _ = h.join();
    }
}

fn accept_loop(shared: Arc<Shared>, listener: Arc<TcpListener>, tx: SyncSender<TcpStream>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok((stream, _)) = listener.accept() else {
            // Usually fd exhaustion (EMFILE): accept keeps failing
            // instantly while the backlog is non-empty, so a bare
            // `continue` would spin the acceptor at 100% CPU.
            std::thread::sleep(Duration::from_millis(25));
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Some(chaos) = &shared.chaos {
            let action = chaos.on_accept();
            if action.panic {
                // Scripted crash: the supervisor must notice, count,
                // and respawn this thread. The accepted connection is
                // dropped un-acked, so clients retry it.
                panic!("chaos: scripted acceptor crash");
            }
            if let Some(d) = action.delay {
                std::thread::sleep(d);
            }
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Overload shedding: one frame, then close.
                shared.metrics.sheds.inc();
                let _ = write_frame(&mut stream, &Response::Overload.encode());
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    reader: SwapReader<AnyIndex>,
    rx: Arc<Mutex<Receiver<TcpStream>>>,
) {
    loop {
        // Take the next queued connection; the lock is only held for
        // the dequeue itself.
        let conn = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv_timeout(READ_POLL)
        };
        match conn {
            Ok(stream) => serve_conn(&shared, &reader, stream),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serve one connection until the peer closes it, a robustness policy
/// evicts it, or shutdown drains it.
fn serve_conn(shared: &Shared, reader: &SwapReader<AnyIndex>, stream: TcpStream) {
    let mut conn = match Conn::new(stream, shared.limits, shared.chaos.clone()) {
        Ok(conn) => conn,
        Err(_) => {
            // A socket we cannot arm timeouts on could pin this worker
            // forever; refuse it and account for the refusal.
            shared.metrics.setup_errors.inc();
            return;
        }
    };
    loop {
        match conn.next_event() {
            Ok(ConnEvent::Frames(frames)) => {
                for payload in frames {
                    // Chaos charges one draw per *received frame* — a
                    // deterministic event count, unlike read polls.
                    if let Some(chaos) = &shared.chaos {
                        let action = chaos.on_frame();
                        if action.panic {
                            // Scripted crash before any response: the
                            // query is un-acked, the client retries,
                            // the supervisor respawns this worker.
                            panic!("chaos: scripted worker crash");
                        }
                        if let Some(d) = action.stall {
                            std::thread::sleep(d);
                        }
                    }
                    let response = match Request::decode(&payload) {
                        Ok(req) => handle(shared, reader, req),
                        Err(e) => {
                            shared.metrics.malformed.inc();
                            Response::Error(format!("malformed request: {e}"))
                        }
                    };
                    if conn.send(&response.encode()).is_err() {
                        return;
                    }
                }
                // Graceful drain: requests already buffered were
                // answered above; stop before reading more.
                if shared.stop.load(Ordering::SeqCst) {
                    shared.metrics.drained.inc();
                    return;
                }
            }
            Ok(ConnEvent::Idle) => {
                if shared.stop.load(Ordering::SeqCst) {
                    shared.metrics.drained.inc();
                    return;
                }
            }
            Ok(ConnEvent::Closed) => return,
            Err(ConnError::SlowLoris) => {
                shared.metrics.evicted_slow.inc();
                evict(&mut conn, "request deadline exceeded");
                return;
            }
            Err(ConnError::Flood) | Err(ConnError::Oversize(_)) => {
                shared.metrics.evicted_flood.inc();
                evict(&mut conn, "frame limits exceeded");
                return;
            }
            Err(ConnError::MidFrameEof) | Err(ConnError::Io(_)) | Err(ConnError::Setup(_)) => {
                return;
            }
        }
    }
}

/// Best-effort goodbye frame before closing an evicted connection.
fn evict(conn: &mut Conn, reason: &str) {
    let _ = write_frame(conn.stream(), &Response::Error(reason.to_string()).encode());
}

/// Count, time, and dispatch one well-formed request. Every opcode —
/// data plane and control plane alike — gets its own request counter
/// and latency histogram; only `Owner`/`Border`/`Neighbor` contribute
/// to the `queries` figure in `Stats`, so a client polling `Stats` or
/// `Health` neither distorts nor vanishes from reported load.
pub(crate) fn handle(shared: &Shared, reader: &SwapReader<AnyIndex>, req: Request) -> Response {
    let op = op_index(&req);
    shared.metrics.requests[op].inc();
    let start = Instant::now();
    let resp = dispatch(shared, reader, req);
    shared.metrics.latency[op].record(start.elapsed().as_micros() as u64);
    resp
}

/// The pure data-plane answer for a query request against one index:
/// exactly what a worker would serve, minus the transport. `None` for
/// control-plane requests. Generic over [`QueryRead`], so a v2 heap
/// index and a v3 zero-copy view go through the same code — the chaos
/// harness and the cross-version compat suite compare live responses
/// against this to prove no fault (or codec) ever corrupted an answer.
pub fn answer<I: QueryRead>(idx: &I, req: &Request) -> Option<Response> {
    match req {
        Request::Owner(a) => Some(Response::Owner(idx.owner_of(*a))),
        Request::Border(a) => Some(Response::Border(idx.border_of(*a).map(Into::into))),
        Request::Neighbor(asn) => Some(Response::Neighbor(
            idx.neighbor_links(*asn)
                .into_iter()
                .filter_map(|id| idx.link_answer(id))
                .map(Into::into)
                .collect(),
        )),
        _ => None,
    }
}

fn dispatch(shared: &Shared, reader: &SwapReader<AnyIndex>, req: Request) -> Response {
    match req {
        Request::Owner(_) | Request::Border(_) | Request::Neighbor(_) => {
            let idx = reader.load();
            answer(&*idx, &req).expect("query requests always have an answer")
        }
        Request::Stats => {
            let idx = reader.load();
            shared.stats(&idx).into()
        }
        Request::Reload(path) => reload(shared, &path),
        Request::Health => Response::Health(shared.health()),
        Request::Metrics => Response::Metrics(shared.metrics.registry.render()),
    }
}

impl From<Stats> for Response {
    fn from(s: Stats) -> Response {
        Response::Stats(s)
    }
}

/// Where a reload's snapshot comes from.
enum ReloadSource<'a> {
    /// A server-local `.bdrm` file.
    File(&'a str),
    /// The server's snapshot store (newest verified generation).
    Store,
}

/// Build the next index and publish it, behind the circuit breaker and
/// a bounded retry loop. Runs on the worker that received the control
/// frame, so the other workers keep serving the old snapshot until the
/// swap lands.
fn reload(shared: &Shared, path: &str) -> Response {
    let source = if path.is_empty() {
        if shared.store.is_none() {
            return Response::Error("reload: no snapshot store configured".to_string());
        }
        ReloadSource::Store
    } else {
        ReloadSource::File(path)
    };
    {
        let mut breaker = shared.breaker.lock().unwrap_or_else(|e| e.into_inner());
        if !breaker.allow_attempt(Instant::now()) {
            return Response::Error(
                "reload refused: circuit breaker open; serving pinned snapshot".to_string(),
            );
        }
    }
    let attempts = shared.reload_attempts;
    let mut last_err = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(shared.reload_backoff * attempt);
        }
        match reload_once(shared, &source) {
            Ok(resp) => {
                shared
                    .breaker
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .on_success();
                return resp;
            }
            Err(e) => last_err = e,
        }
    }
    shared.metrics.reload_failures.inc();
    shared
        .breaker
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .on_failure(Instant::now());
    Response::Error(format!(
        "reload failed after {attempts} attempt(s): {last_err}"
    ))
}

fn reload_once(shared: &Shared, source: &ReloadSource<'_>) -> Result<Response, String> {
    // Load phase: raw bytes plus integrity (the store's read-back
    // verification, or the file path's checksums below).
    let (bytes, store_gen) = match source {
        ReloadSource::File(path) => {
            let bytes = std::fs::read(std::path::Path::new(path))
                .map_err(|e| format!("load {path}: {e}"))?;
            (bytes, None)
        }
        ReloadSource::Store => {
            let store = shared.store.as_ref().expect("source checked by caller");
            let outcome = store.load_verified().map_err(|e| format!("store: {e}"))?;
            (outcome.bytes, Some(outcome.generation))
        }
    };
    // Build phase, under `catch_unwind`: a panicking index build (or
    // validation pass) must not kill the worker thread or leak a
    // half-built snapshot; the old index stays live and the reload
    // counts as a failed attempt. The phase accounting is symmetric
    // across versions: everything a reader must check before trusting
    // the bytes is *load* (v1/v2 `decode`; v3 integrity + structural
    // validation), and `build_us` is what it costs to stand up the
    // query structures afterwards. v2 pays a full index rebuild there;
    // v3 only assembles the configured prefix overlay, which is why v3
    // reloads report near-zero `build_us` independent of map size.
    let (next, build_us) = match snapshot::version_of(&bytes) {
        Some(flat::VERSION) => {
            let layout = flat::verify_integrity(&bytes).map_err(|e| format!("verify v3: {e}"))?;
            let proof = catch_unwind(AssertUnwindSafe(|| {
                flat::validate_structure(&bytes, &layout)
            }))
            .map_err(|_| "snapshot validation panicked".to_string())?
            .map_err(|e| format!("validate v3: {e}"))?;
            let build_start = Instant::now();
            let view = catch_unwind(AssertUnwindSafe(|| {
                flat::V3View::from_validated(
                    bytes,
                    layout,
                    proof,
                    shared.prefix_owners.iter().copied(),
                )
            }))
            .map_err(|_| "snapshot view assembly panicked".to_string())?;
            (
                AnyIndex::View(view),
                build_start.elapsed().as_micros() as u64,
            )
        }
        _ => {
            let map = snapshot::decode(&bytes).map_err(|e| format!("decode: {e}"))?;
            let build_start = Instant::now();
            let idx = catch_unwind(AssertUnwindSafe(|| {
                QueryIndex::build_with_prefixes(&map, shared.prefix_owners.iter().copied())
            }))
            .map_err(|_| "index build panicked".to_string())?;
            (
                AnyIndex::Heap(idx),
                build_start.elapsed().as_micros() as u64,
            )
        }
    };
    let routers = next.num_routers();
    let links = next.num_links();
    let swap_start = Instant::now();
    shared.cell.store(Arc::new(next));
    let swap_us = swap_start.elapsed().as_micros() as u64;
    let generation = shared.cell.generation();
    // Publish (generation, build_us, swap_us) — and the store
    // generation — as one swapped unit; see [`ReloadInfo`].
    let store_generation =
        store_gen.unwrap_or_else(|| shared.reload_info.load_locked().store_generation);
    shared.publish_reload(ReloadInfo {
        generation,
        store_generation,
        build_us,
        swap_us,
    });
    shared.metrics.reloads.inc();
    Ok(Response::Reloaded {
        generation,
        build_us,
        swap_us,
        routers,
        links,
    })
}

/// A blocking protocol client: one connection, synchronous
/// request/response.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a bdrmapd instance.
    pub fn connect(addr: &SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Raw stream access for tests and hostile-input injection.
    pub(crate) fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream, MAX_FRAME)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
        })?;
        Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
