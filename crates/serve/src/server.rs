//! bdrmapd: the query-serving daemon.
//!
//! A [`Server`] owns a TCP listener, a bounded accept queue, and a
//! fixed pool of worker threads. Each worker serves one connection at a
//! time, answering length-prefixed [`proto`](crate::proto) frames from
//! an immutable [`QueryIndex`] snapshot. When the accept queue is full
//! the acceptor *sheds*: the connection gets a single `Overload` frame
//! and is closed, so saturation degrades into fast rejections instead
//! of unbounded queueing.
//!
//! Snapshots are hot-swappable. A `Reload` control frame makes the
//! handling worker build the next index from a snapshot file — off the
//! other workers' hot path — and publish it with an atomic pointer swap
//! ([`SwapCell`]): readers that already loaded the old `Arc` finish
//! their in-flight queries on it, and every later query sees the new
//! snapshot. No reader ever takes a lock.

use crate::proto::{Request, Response, Stats};
use bdrmap_core::{snapshot, BorderMap, QueryIndex};
use bdrmap_types::wire::{read_frame, write_frame, MAX_FRAME};
use bdrmap_types::{Asn, Prefix, SwapCell, SwapReader};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker blocks on a quiet connection before checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub listen: String,
    /// Fixed worker-thread pool size.
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it are shed.
    pub queue: usize,
    /// Coarse prefix-ownership layer built under every snapshot,
    /// including reloaded ones (typically the collector view's
    /// single-origin prefixes).
    pub prefix_owners: Vec<(Prefix, Asn)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 128,
            prefix_owners: Vec::new(),
        }
    }
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    cell: Arc<SwapCell<QueryIndex>>,
    queries: AtomicU64,
    sheds: AtomicU64,
    last_build_us: AtomicU64,
    last_swap_us: AtomicU64,
    stop: AtomicBool,
    prefix_owners: Vec<(Prefix, Asn)>,
}

impl Shared {
    fn stats(&self, idx: &QueryIndex) -> Stats {
        Stats {
            generation: self.cell.generation(),
            routers: idx.num_routers(),
            links: idx.num_links(),
            prefixes: idx.num_prefixes(),
            queries: self.queries.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            last_build_us: self.last_build_us.load(Ordering::Relaxed),
            last_swap_us: self.last_swap_us.load(Ordering::Relaxed),
        }
    }
}

/// A running bdrmapd instance. Dropping the handle without calling
/// [`shutdown`](Server::shutdown) leaves the threads serving until the
/// process exits (daemon mode).
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Build the initial index from `map` and start serving.
    pub fn start(map: &BorderMap, cfg: ServeConfig) -> io::Result<Server> {
        let index = QueryIndex::build_with_prefixes(map, cfg.prefix_owners.iter().copied());
        let shared = Arc::new(Shared {
            cell: Arc::new(SwapCell::new(Arc::new(index))),
            queries: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            last_build_us: AtomicU64::new(0),
            last_swap_us: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            prefix_owners: cfg.prefix_owners.clone(),
        });
        let listener = TcpListener::bind(&cfg.listen)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = sync_channel::<TcpStream>(cfg.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let reader = SwapCell::reader(&shared.cell);
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(shared, reader, rx)));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(shared, listener, tx))
        };
        Ok(Server {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.shared.cell.generation()
    }

    /// Statistics as a control client would see them.
    pub fn stats(&self) -> Stats {
        let idx = self.shared.cell.load_locked();
        self.shared.stats(&idx)
    }

    /// Stop accepting, drain the workers, and join every thread.
    /// In-flight connections are closed after their current frame.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    tx: std::sync::mpsc::SyncSender<TcpStream>,
) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Overload shedding: one frame, then close.
                shared.sheds.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut stream, &Response::Overload.encode());
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
        // The sender half dies with this loop; workers drain and exit.
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    reader: SwapReader<QueryIndex>,
    rx: Arc<Mutex<Receiver<TcpStream>>>,
) {
    loop {
        // Take the next queued connection; the lock is only held for
        // the dequeue itself.
        let conn = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv_timeout(READ_POLL)
        };
        match conn {
            Ok(stream) => serve_conn(&shared, &reader, stream),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serve one connection until the peer closes it or shutdown begins.
fn serve_conn(shared: &Shared, reader: &SwapReader<QueryIndex>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    loop {
        let payload = match read_frame(&mut stream, MAX_FRAME) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => handle(shared, reader, req),
            Err(_) => Response::Error("malformed request".to_string()),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

fn handle(shared: &Shared, reader: &SwapReader<QueryIndex>, req: Request) -> Response {
    match req {
        Request::Owner(a) => {
            let idx = reader.load();
            shared.queries.fetch_add(1, Ordering::Relaxed);
            Response::Owner(idx.owner_of(a))
        }
        Request::Border(a) => {
            let idx = reader.load();
            shared.queries.fetch_add(1, Ordering::Relaxed);
            Response::Border(idx.border_of(a).map(Into::into))
        }
        Request::Neighbor(asn) => {
            let idx = reader.load();
            shared.queries.fetch_add(1, Ordering::Relaxed);
            let links = idx
                .links_of_neighbor(asn)
                .iter()
                .filter_map(|&id| idx.link_answer(id))
                .map(Into::into)
                .collect();
            Response::Neighbor(links)
        }
        Request::Stats => {
            let idx = reader.load();
            shared.stats(&idx).into()
        }
        Request::Reload(path) => reload(shared, &path),
    }
}

impl From<Stats> for Response {
    fn from(s: Stats) -> Response {
        Response::Stats(s)
    }
}

/// Build the next index from `path` and publish it. Runs on the worker
/// that received the control frame, so the other workers keep serving
/// the old snapshot until the swap lands.
fn reload(shared: &Shared, path: &str) -> Response {
    let map = match snapshot::load(std::path::Path::new(path)) {
        Ok(map) => map,
        Err(e) => return Response::Error(format!("reload {path}: {e}")),
    };
    let build_start = Instant::now();
    let next = QueryIndex::build_with_prefixes(&map, shared.prefix_owners.iter().copied());
    let routers = next.num_routers();
    let links = next.num_links();
    let build_us = build_start.elapsed().as_micros() as u64;
    let swap_start = Instant::now();
    shared.cell.store(Arc::new(next));
    let swap_us = swap_start.elapsed().as_micros() as u64;
    shared.last_build_us.store(build_us, Ordering::Relaxed);
    shared.last_swap_us.store(swap_us, Ordering::Relaxed);
    Response::Reloaded {
        generation: shared.cell.generation(),
        build_us,
        swap_us,
        routers,
        links,
    }
}

/// A blocking protocol client: one connection, synchronous
/// request/response.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a bdrmapd instance.
    pub fn connect(addr: &SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream, MAX_FRAME)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
        })?;
        Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
