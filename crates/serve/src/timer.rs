//! A hashed timer wheel for connection deadlines.
//!
//! The blocking backend checks deadlines on every read wakeup, which
//! costs a clock read per poll per connection even when nothing is
//! pending. The event backend instead registers a deadline only when a
//! connection actually starts one (a partial frame, a pending write)
//! and lets the wheel say *which* connections to look at when a tick
//! elapses. Idle connections own no wheel entries and cost nothing.
//!
//! Cancellation is **lazy**: entries are never removed early. When one
//! expires the owner re-validates against the connection's live state
//! (token generation + real deadline) and either acts, reschedules, or
//! ignores it. That keeps `schedule` O(1) with no lookup structure.

use std::time::{Duration, Instant};

/// A coarse-ticked, fixed-slot timer wheel over opaque `u64` tokens.
#[derive(Debug)]
pub struct TimerWheel {
    /// `slots[tick % slots.len()]` holds entries for that tick and for
    /// later rounds that hash to the same slot.
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    origin: Instant,
    /// The next tick index `advance` will process.
    cursor: u64,
    len: usize,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    /// Absolute tick the entry fires on (disambiguates wheel rounds).
    at: u64,
}

impl TimerWheel {
    /// A wheel with `slots` buckets of `tick` granularity, anchored at
    /// `origin` (callers pass their loop start so tests can steer time).
    pub fn new(tick: Duration, slots: usize, origin: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            origin,
            cursor: 1,
            len: 0,
        }
    }

    /// Tick index that covers instant `t` (the first tick at or after it).
    fn tick_of(&self, t: Instant) -> u64 {
        let nanos = t.saturating_duration_since(self.origin).as_nanos();
        (nanos / self.tick.as_nanos()) as u64 + 1
    }

    /// Register `token` to fire at the first tick at or after `due`.
    /// Entries landing behind the cursor fire on the next `advance`.
    pub fn schedule(&mut self, due: Instant, token: u64) {
        let at = self.tick_of(due).max(self.cursor);
        let slot = (at % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { token, at });
        self.len += 1;
    }

    /// Process every tick up to `now`, pushing expired tokens into
    /// `expired` in tick order. Same-round entries in one slot keep
    /// insertion order; later-round entries stay put.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<u64>) {
        if self.len == 0 {
            // Keep the cursor moving so a later schedule() can't land
            // thousands of ticks behind and force a long catch-up scan.
            self.cursor = self.tick_of(now).max(self.cursor);
            return;
        }
        let now_tick = self.tick_of(now).saturating_sub(1);
        if now_tick < self.cursor {
            // No tick has fully elapsed since the last advance. A busy
            // loop calls advance on every wakeup — often many times per
            // tick — and the cursor must NOT creep forward on those
            // calls, or it races ahead of real time and entries
            // scheduled at `max(due, cursor)` never come due.
            return;
        }
        let span = self.slots.len() as u64;
        // Each slot only needs visiting once per wheel revolution.
        let last = now_tick.min(self.cursor + span - 1);
        let mut t = self.cursor;
        while t <= last {
            let slot = (t % span) as usize;
            self.slots[slot].retain(|e| {
                if e.at <= now_tick {
                    expired.push(e.token);
                    false
                } else {
                    true
                }
            });
            t += 1;
        }
        self.len = self.slots.iter().map(Vec::len).sum();
        self.cursor = now_tick + 1;
    }

    /// True when no entries are pending (idle loops skip the wheel).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending entry count (lazily-cancelled entries included).
    pub fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_at_or_after_due_never_before() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 64, t0);
        w.schedule(t0 + ms(35), 1);
        let mut out = Vec::new();
        w.advance(t0 + ms(30), &mut out);
        assert!(out.is_empty(), "fired {out:?} before due");
        w.advance(t0 + ms(50), &mut out);
        assert_eq!(out, vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn later_rounds_stay_until_their_revolution() {
        let t0 = Instant::now();
        // 4 slots x 10ms: +200ms hashes onto an early slot but must
        // survive many revolutions.
        let mut w = TimerWheel::new(ms(10), 4, t0);
        w.schedule(t0 + ms(200), 42);
        let mut out = Vec::new();
        for step in (10..200).step_by(10) {
            w.advance(t0 + ms(step), &mut out);
            assert!(out.is_empty(), "fired early at +{step}ms");
        }
        w.advance(t0 + ms(215), &mut out);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn many_tokens_fire_in_tick_order() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 16, t0);
        w.schedule(t0 + ms(40), 4);
        w.schedule(t0 + ms(20), 2);
        w.schedule(t0 + ms(30), 3);
        let mut out = Vec::new();
        w.advance(t0 + ms(60), &mut out);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn past_due_entries_fire_on_next_advance() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 8, t0);
        let mut out = Vec::new();
        w.advance(t0 + ms(500), &mut out); // cursor races far ahead
        w.schedule(t0 + ms(100), 9); // already overdue
        w.advance(t0 + ms(510), &mut out);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn long_gap_does_not_drop_entries() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 8, t0);
        w.schedule(t0 + ms(20), 1);
        w.schedule(t0 + ms(1000), 2);
        let mut out = Vec::new();
        // One giant advance past everything: both fire, none lost.
        w.advance(t0 + ms(5000), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn busy_loop_advances_do_not_starve_entries() {
        // Regression: a loop under load calls advance many times per
        // tick. The cursor must track real time, not call count —
        // otherwise entries scheduled while it raced ahead never fire.
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 16, t0);
        w.schedule(t0 + ms(15), 1);
        let mut out = Vec::new();
        for i in 0..1000 {
            // 1000 sub-tick advances within the first 5ms of wall time.
            w.advance(t0 + Duration::from_micros(i * 5), &mut out);
        }
        assert!(out.is_empty());
        w.schedule(t0 + ms(30), 2);
        w.advance(t0 + ms(50), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2], "cursor raced ahead of real time");
    }

    #[test]
    fn lazy_cancellation_is_callers_job() {
        // The wheel hands back whatever was scheduled; the owner is the
        // one who decides an expired token no longer matters.
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 8, t0);
        w.schedule(t0 + ms(20), 7);
        w.schedule(t0 + ms(20), 7); // duplicate from a rescheduled deadline
        let mut out = Vec::new();
        w.advance(t0 + ms(40), &mut out);
        assert_eq!(out, vec![7, 7]);
    }
}
