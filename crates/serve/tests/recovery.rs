//! Crash-safety acceptance tests: the server must come up — and stay
//! up — when the newest snapshot is corrupt, when reloads fail
//! repeatedly, and when clients stall or flood their connections.

use bdrmap_core::output::{BorderMap, Heuristic, InferredLink, InferredRouter};
use bdrmap_core::SnapStore;
use bdrmap_serve::{
    loadgen, queries_for_map, Client, LoadgenConfig, Request, Response, ServeConfig, Server,
    ServerBackend,
};
use bdrmap_types::wire::{read_frame, write_frame, MAX_FRAME};
use bdrmap_types::{addr, Asn};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// A deterministic hand-built map; `salt` varies the content so
/// different generations are distinguishable through query answers.
fn map(salt: u32) -> BorderMap {
    let base = 0x0A00_0000 + salt * 0x100;
    BorderMap {
        routers: vec![
            InferredRouter {
                addrs: vec![addr(base + 1)],
                other_addrs: vec![],
                owner: Some(Asn(64500)),
                heuristic: Some(Heuristic::VpInternal),
                min_hop: 1,
            },
            InferredRouter {
                addrs: vec![addr(base + 2), addr(base + 3)],
                other_addrs: vec![],
                owner: Some(Asn(64501 + salt)),
                heuristic: Some(Heuristic::OneNet),
                min_hop: 2,
            },
        ],
        links: vec![InferredLink {
            near: 0,
            far: Some(1),
            far_as: Asn(64501 + salt),
            near_addr: Some(addr(base + 1)),
            far_addr: Some(addr(base + 2)),
            heuristic: Heuristic::OneNet,
        }],
        packets: 1000 + salt as u64,
        elapsed_ms: 42,
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bdrmap-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every crash-safety property must hold on both backends.
fn backends() -> Vec<ServerBackend> {
    let mut v = vec![ServerBackend::Threads];
    if cfg!(target_os = "linux") {
        v.push(ServerBackend::Epoll);
    }
    v
}

fn fast_cfg(backend: ServerBackend) -> ServeConfig {
    ServeConfig {
        backend,
        workers: 2,
        queue: 16,
        reload_attempts: 1,
        reload_backoff: Duration::from_millis(5),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(200),
        ..ServeConfig::default()
    }
}

/// Query every address the map knows about; every answer must be a
/// well-formed response on the first try — zero lost queries.
fn assert_serves_map(server: &Server, m: &BorderMap) {
    let mut client = Client::connect(&server.local_addr()).unwrap();
    for req in queries_for_map(m) {
        let resp = client.call(&req).expect("query must not be lost");
        assert!(resp.answers(&req), "mismatched answer for {req:?}");
        assert!(
            !matches!(resp, Response::Error(_) | Response::Overload),
            "query failed: {resp:?}"
        );
    }
}

fn health(server: &Server) -> bdrmap_serve::HealthInfo {
    let mut client = Client::connect(&server.local_addr()).unwrap();
    match client.call(&Request::Health).unwrap() {
        Response::Health(h) => h,
        other => panic!("health answered with {other:?}"),
    }
}

/// Acceptance: bit-flip the newest snapshot; the server starts on the
/// rolled-back generation, loses no queries, and a good publish +
/// store-reload re-advances the generation with the breaker closed.
#[test]
fn bitflip_rolls_back_then_good_reload_readvances() {
    for backend in backends() {
        bitflip_rolls_back_then_good_reload_readvances_impl(backend);
    }
}

fn bitflip_rolls_back_then_good_reload_readvances_impl(backend: ServerBackend) {
    let dir = temp_store(&format!("bitflip-{backend}"));
    let store = SnapStore::open(&dir).unwrap();
    assert_eq!(store.publish(&map(1)).unwrap(), 1);
    assert_eq!(store.publish(&map(2)).unwrap(), 2);

    // Flip one bit in the middle of generation 2.
    let victim = store.path_of(2);
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();

    let server = Server::start_from_store(&dir, fast_cfg(backend)).unwrap();
    let h = health(&server);
    assert_eq!(h.generation, 1, "must roll back to the last good gen");
    assert_eq!(h.breaker_state, 0);
    assert_serves_map(&server, &map(1));
    // The corrupt file was quarantined, not left in place.
    assert!(!victim.exists(), "corrupt snapshot must be quarantined");
    assert!(dir.join("corrupt").read_dir().unwrap().next().is_some());

    // A good publish and an empty-path reload re-advance the store.
    let gen = store.publish(&map(3)).unwrap();
    assert_eq!(gen, 2, "next generation after the quarantined one");
    let mut client = Client::connect(&server.local_addr()).unwrap();
    match client.call(&Request::Reload(String::new())).unwrap() {
        Response::Reloaded { .. } => {}
        other => panic!("store reload answered with {other:?}"),
    }
    let h = health(&server);
    assert_eq!(h.generation, 2);
    assert_eq!(h.breaker_state, 0, "breaker closed after a good reload");
    assert_eq!(h.swap_epoch, 2, "exactly one swap since start");
    assert_serves_map(&server, &map(3));

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: truncate the newest snapshot mid-file; same rollback.
#[test]
fn truncation_rolls_back() {
    for backend in backends() {
        truncation_rolls_back_impl(backend);
    }
}

fn truncation_rolls_back_impl(backend: ServerBackend) {
    let dir = temp_store(&format!("truncate-{backend}"));
    let store = SnapStore::open(&dir).unwrap();
    store.publish(&map(1)).unwrap();
    store.publish(&map(2)).unwrap();

    let victim = store.path_of(2);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap();

    let server = Server::start_from_store(&dir, fast_cfg(backend)).unwrap();
    assert_eq!(health(&server).generation, 1);
    assert_serves_map(&server, &map(1));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Repeated reload failures open the breaker (visible in `Health`),
/// the last-good snapshot stays pinned, and after the cooldown a good
/// reload closes the breaker again.
#[test]
fn breaker_opens_pins_and_recovers() {
    for backend in backends() {
        breaker_opens_pins_and_recovers_impl(backend);
    }
}

fn breaker_opens_pins_and_recovers_impl(backend: ServerBackend) {
    let dir = temp_store(&format!("breaker-{backend}"));
    let store = SnapStore::open(&dir).unwrap();
    store.publish(&map(1)).unwrap();
    let server = Server::start_from_store(&dir, fast_cfg(backend)).unwrap();
    let mut client = Client::connect(&server.local_addr()).unwrap();

    // Two failing reloads (threshold = 2) open the breaker.
    for _ in 0..2 {
        match client
            .call(&Request::Reload("/nonexistent/snap.bdrm".into()))
            .unwrap()
        {
            Response::Error(msg) => assert!(msg.contains("reload failed"), "{msg}"),
            other => panic!("bad reload answered with {other:?}"),
        }
    }
    let h = health(&server);
    assert_eq!(h.breaker_state, 1, "breaker must be open");
    assert_eq!(h.reload_failures, 2);

    // While open: refused immediately, pinned snapshot keeps serving.
    match client.call(&Request::Reload(String::new())).unwrap() {
        Response::Error(msg) => assert!(msg.contains("breaker open"), "{msg}"),
        other => panic!("pinned reload answered with {other:?}"),
    }
    assert_serves_map(&server, &map(1));
    assert_eq!(health(&server).generation, 1);

    // After the cooldown, a good store reload closes the breaker.
    store.publish(&map(2)).unwrap();
    std::thread::sleep(Duration::from_millis(250));
    match client.call(&Request::Reload(String::new())).unwrap() {
        Response::Reloaded { .. } => {}
        other => panic!("recovery reload answered with {other:?}"),
    }
    let h = health(&server);
    assert_eq!(h.breaker_state, 0);
    assert_eq!(h.generation, 2);
    assert_serves_map(&server, &map(2));

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stalled (slow-loris) connection is evicted by the request
/// deadline while healthy closed-loop connections keep their latency:
/// the fields asserted here are the same ones BENCH_serve.json reports.
#[test]
fn stalled_connections_evicted_without_hurting_healthy_p99() {
    for backend in backends() {
        stalled_connections_evicted_without_hurting_healthy_p99_impl(backend);
    }
}

fn stalled_connections_evicted_without_hurting_healthy_p99_impl(backend: ServerBackend) {
    let m = map(1);
    let server = Server::start(
        &m,
        ServeConfig {
            backend,
            workers: 4,
            request_deadline: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = loadgen::run(
        server.local_addr(),
        &queries_for_map(&m),
        &LoadgenConfig {
            conns: 2,
            duration: Duration::from_millis(900),
            stall_conns: 2,
            ..LoadgenConfig::default()
        },
    )
    .unwrap();

    assert_eq!(report.stalled, 2, "both stall connections must open");
    assert_eq!(
        report.stalled_evicted, 2,
        "deadline must evict the stalls: {report:?}"
    );
    assert_eq!(report.queries_error, 0, "healthy traffic must be clean");
    assert!(report.queries_ok > 0);
    // Healthy p99 stays far below the stall deadline: the stalled
    // sockets did not capture the worker pool.
    assert!(
        report.p99_us < 100_000,
        "healthy p99 degraded: {} us",
        report.p99_us
    );
    assert!(server.stats().evicted_slow >= 2);
    server.shutdown();
}

/// Corrupted frames under load are each answered with a well-formed
/// `Error` frame — never a hang, close, or lost healthy query.
#[test]
fn corrupt_frames_survive_under_load() {
    for backend in backends() {
        corrupt_frames_survive_under_load_impl(backend);
    }
}

fn corrupt_frames_survive_under_load_impl(backend: ServerBackend) {
    let m = map(2);
    let server = Server::start(
        &m,
        ServeConfig {
            backend,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = loadgen::run(
        server.local_addr(),
        &queries_for_map(&m),
        &LoadgenConfig {
            conns: 2,
            duration: Duration::from_millis(700),
            corrupt_rate: 0.2,
            corrupt_seed: 99,
            ..LoadgenConfig::default()
        },
    )
    .unwrap();
    assert!(report.corrupt_sent > 0, "corruption must have fired");
    assert_eq!(
        report.corrupt_survived, report.corrupt_sent,
        "every corrupt frame must get a well-formed Error: {report:?}"
    );
    assert_eq!(report.queries_error, 0);
    assert!(report.queries_ok > 0);
    server.shutdown();
}

/// A hostile burst past the max-inflight cap is evicted with an Error
/// frame, and the server remains available to the next connection.
#[test]
fn pipelining_flood_is_evicted() {
    for backend in backends() {
        pipelining_flood_is_evicted_impl(backend);
    }
}

fn pipelining_flood_is_evicted_impl(backend: ServerBackend) {
    let m = map(3);
    let server = Server::start(
        &m,
        ServeConfig {
            backend,
            workers: 2,
            max_inflight: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // 32 valid frames in a single write: far past the cap of 1.
    let mut burst = Vec::new();
    for _ in 0..32 {
        let payload = Request::Stats.encode();
        burst.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        burst.extend_from_slice(&payload);
    }
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Read until the server closes us; the goodbye must be a
    // well-formed Error frame.
    let mut saw_error = false;
    while let Ok(Some(payload)) = read_frame(&mut stream, MAX_FRAME) {
        if let Ok(Response::Error(_)) = Response::decode(&payload) {
            saw_error = true;
        }
    }
    assert!(saw_error, "flood eviction must say goodbye with an Error");
    assert!(server.stats().evicted_flood >= 1);

    // The server is still fine for well-behaved clients.
    let mut client = Client::connect(&server.local_addr()).unwrap();
    assert!(matches!(
        client.call(&Request::Stats).unwrap(),
        Response::Stats(_)
    ));
    drop(client);
    server.shutdown();
}

/// Graceful drain: a connection with requests in flight at shutdown
/// gets its answers before the close.
#[test]
fn shutdown_drains_inflight_frames() {
    for backend in backends() {
        shutdown_drains_inflight_frames_impl(backend);
    }
}

fn shutdown_drains_inflight_frames_impl(backend: ServerBackend) {
    let m = map(4);
    let server = Server::start(
        &m,
        ServeConfig {
            backend,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Queue three requests, then immediately shut down.
    for _ in 0..3 {
        write_frame(&mut stream, &Request::Stats.encode()).unwrap();
    }
    // Give the worker a moment to pick the connection up.
    std::thread::sleep(Duration::from_millis(100));
    let shutdown = std::thread::spawn(move || server.shutdown());
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut answered = 0;
    while let Ok(Some(payload)) = read_frame(&mut stream, MAX_FRAME) {
        assert!(matches!(Response::decode(&payload), Ok(Response::Stats(_))));
        answered += 1;
        if answered == 3 {
            break;
        }
    }
    assert_eq!(answered, 3, "buffered requests must be answered on drain");
    shutdown.join().unwrap();
}
