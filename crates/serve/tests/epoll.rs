//! Epoll-backend-specific behaviour: readiness-loop half-close
//! handling, the idle-costs-nothing guarantee, and the plain-HTTP
//! metrics endpoint. Everything here runs on Linux only — the backend
//! does not exist elsewhere.
#![cfg(target_os = "linux")]

use bdrmap_core::output::{BorderMap, Heuristic, InferredLink, InferredRouter};
use bdrmap_serve::proto::{Request, Response, Stats};
use bdrmap_serve::{
    loadgen, queries_for_map, Client, ScaleConfig, ServeConfig, Server, ServerBackend,
};
use bdrmap_types::wire::{read_frame, write_frame};
use bdrmap_types::{addr, Asn};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn map(salt: u32) -> BorderMap {
    let base = 0x0A00_0000 + salt * 0x100;
    BorderMap {
        routers: vec![
            InferredRouter {
                addrs: vec![addr(base + 1)],
                other_addrs: vec![],
                owner: Some(Asn(64500)),
                heuristic: Some(Heuristic::VpInternal),
                min_hop: 1,
            },
            InferredRouter {
                addrs: vec![addr(base + 2), addr(base + 3)],
                other_addrs: vec![],
                owner: Some(Asn(64501 + salt)),
                heuristic: Some(Heuristic::OneNet),
                min_hop: 2,
            },
        ],
        links: vec![InferredLink {
            near: 0,
            far: Some(1),
            far_as: Asn(64501 + salt),
            near_addr: Some(addr(base + 1)),
            far_addr: Some(addr(base + 2)),
            heuristic: Heuristic::OneNet,
        }],
        packets: 1000 + salt as u64,
        elapsed_ms: 42,
    }
}

fn epoll_server(cfg: ServeConfig) -> Server {
    let m = map(1);
    Server::start(
        &m,
        ServeConfig {
            backend: ServerBackend::Epoll,
            ..cfg
        },
    )
    .unwrap()
}

fn stats(server: &Server) -> Stats {
    let mut client = Client::connect(&server.local_addr()).unwrap();
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// A connection that stalls mid-frame is evicted by the request
/// deadline: the goodbye Error frame (or the close itself) arrives
/// well before the grace window runs out.
#[test]
fn stalled_connection_is_evicted_by_the_wheel() {
    let server = epoll_server(ServeConfig {
        workers: 1,
        request_deadline: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(&[0, 0]).unwrap(); // two bytes of a length prefix
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(3);
    let mut evicted = false;
    let mut buf = [0u8; 64];
    while Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => {
                evicted = true;
                break;
            }
            Ok(_) => {} // goodbye frame bytes; keep reading to the close
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                evicted = true;
                break;
            }
        }
    }
    assert!(evicted, "stalled connection survived past its deadline");
    assert_eq!(stats(&server).evicted_slow, 1);
    server.shutdown();
}

/// TCP half-close (shutdown(Write) → EPOLLRDHUP): queries written
/// before the half-close are still answered, then the server closes.
#[test]
fn half_close_answers_buffered_queries_then_closes() {
    let server = epoll_server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let m = map(1);
    let queries = queries_for_map(&m);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    for q in queries.iter().take(3) {
        write_frame(&mut stream, &q.encode()).unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for _ in 0..3 {
        let payload = read_frame(&mut stream, 1 << 20).unwrap().unwrap();
        let resp = Response::decode(&payload).unwrap();
        assert!(
            !matches!(resp, Response::Error(_) | Response::Overload),
            "buffered query answered with {resp:?}"
        );
    }
    // After the last answer the server closes its side too: clean EOF.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "unexpected trailing bytes: {rest:?}");
    server.shutdown();
}

/// The idle guarantee the timer wheel buys: a server with only idle
/// keepalive connections does zero proto work between ticks. Counters,
/// not timing — reads and frames stay flat while idle, then move again
/// once a query arrives.
#[test]
fn idle_connections_cost_zero_proto_work() {
    let server = epoll_server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    // Park some idle connections; complete one round trip each so the
    // server has definitely finished admitting and reading them.
    let m = map(1);
    let q = &queries_for_map(&m)[0];
    let mut idle = Vec::new();
    for _ in 0..8 {
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        write_frame(&mut s, &q.encode()).unwrap();
        let _ = read_frame(&mut s, 1 << 20).unwrap().unwrap();
        idle.push(s);
    }
    let flat = |text: &str, name: &str| -> u64 {
        text.lines()
            .filter(|l| l.starts_with(name))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
            .sum()
    };
    let before = server.metrics();
    std::thread::sleep(Duration::from_millis(400));
    let after = server.metrics();
    for name in ["bdrmapd_loop_reads_total", "bdrmapd_loop_frames_total"] {
        assert_eq!(
            flat(&before, name),
            flat(&after, name),
            "{name} moved while every connection was idle"
        );
    }
    // Liveness check on the counters themselves: traffic moves them.
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut s, &q.encode()).unwrap();
    let _ = read_frame(&mut s, 1 << 20).unwrap().unwrap();
    let busy = server.metrics();
    assert!(
        flat(&busy, "bdrmapd_loop_frames_total") > flat(&after, "bdrmapd_loop_frames_total"),
        "frame counter failed to move under traffic"
    );
    drop(idle);
    server.shutdown();
}

/// Admission control: opening more connections than `workers + queue`
/// gets the surplus an Overload frame, same as the threads backend.
#[test]
fn connections_past_the_budget_are_shed() {
    let server = epoll_server(ServeConfig {
        workers: 1,
        queue: 2,
        ..ServeConfig::default()
    });
    // budget = workers + queue = 3: hold three open, the fourth sheds.
    let held: Vec<TcpStream> = (0..3)
        .map(|_| TcpStream::connect(server.local_addr()).unwrap())
        .collect();
    // Admission is asynchronous to connect; give the loop a beat.
    std::thread::sleep(Duration::from_millis(100));
    let mut extra = TcpStream::connect(server.local_addr()).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let payload = read_frame(&mut extra, 1 << 20).unwrap().unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Overload
    ));
    drop(held);
    server.shutdown();
}

/// Scale-mode loadgen smoke: a few hundred connections (half idle
/// ballast, half pipelined) against the epoll backend, with the hard
/// invariants the big benchmark enforces — no acked query lost, no
/// idle connection evicted.
#[test]
fn scale_loadgen_smoke_holds_invariants() {
    let server = epoll_server(ServeConfig {
        workers: 2,
        queue: 512,
        ..ServeConfig::default()
    });
    let m = map(1);
    let report = loadgen::run_scale(
        server.local_addr(),
        &queries_for_map(&m),
        &ScaleConfig {
            connections: 256,
            idle_frac: 0.5,
            duration: Duration::from_millis(800),
            pipeline: 4,
        },
    )
    .unwrap();
    assert_eq!(report.idle_conns, 128);
    assert_eq!(report.active_conns, 128);
    assert_eq!(report.lost, 0, "acked queries lost: {report:?}");
    assert_eq!(report.idle_evicted, 0, "idle ballast evicted: {report:?}");
    assert_eq!(report.connect_failures, 0);
    assert!(report.queries_ok > 0, "no queries served: {report:?}");
    let stats = server.loop_stats();
    assert_eq!(stats.len(), 2, "one LoopStat per event loop");
    assert!(
        stats.iter().map(|l| l.accepts).sum::<u64>() >= 256,
        "loops under-reported accepts: {stats:?}"
    );
    server.shutdown();
}

/// The plain-HTTP metrics endpoint, served from loop 0 of the same
/// readiness loop: GET /metrics renders, non-GET is 405, one request
/// per connection.
#[test]
fn http_metrics_endpoint_serves_scrapes() {
    let server = epoll_server(ServeConfig {
        workers: 1,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    });
    let addr = server.metrics_addr().expect("metrics listener configured");
    // Generate one query so a request counter exists.
    let m = map(1);
    let mut client = Client::connect(&server.local_addr()).unwrap();
    let _ = client.call(&queries_for_map(&m)[0]).unwrap();

    let fetch = |request: &str| -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    let ok = fetch("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "got: {ok}");
    assert!(ok.contains("bdrmapd_requests_total"), "got: {ok}");
    assert!(ok.contains("Connection: close"));

    let nope = fetch("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(nope.starts_with("HTTP/1.1 405 "), "got: {nope}");
    assert!(nope.contains("Allow: GET"));

    let missing = fetch("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404 "), "got: {missing}");
    server.shutdown();
}
