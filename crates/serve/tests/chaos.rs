//! Socket-chaos and supervision tests for bdrmapd.
//!
//! Three acceptance properties of the chaos harness's serving layer:
//!
//! 1. **Supervision**: scripted acceptor and worker crashes are
//!    detected by the watchdog, counted in the registry, and healed by
//!    respawn — the server keeps answering correctly afterwards.
//! 2. **No corrupted answers**: under seeded frame splitting and
//!    mid-write resets, every query that completes returns exactly the
//!    answer the in-process index computes. Faults may cost retries,
//!    never correctness.
//! 3. **Determinism**: the same seed and the same client behaviour
//!    inject the same fault counts, run to run.

use bdrmap_core::{BdrmapConfig, BorderMap, QueryIndex};
use bdrmap_eval::Scenario;
use bdrmap_serve::{
    answer, ChaosNetConfig, Client, NetFaultBudget, Request, Response, ServeConfig, Server,
};
use bdrmap_topo::TopoConfig;
use std::net::SocketAddr;
use std::time::Duration;

fn infer(seed: u64) -> BorderMap {
    let sc = Scenario::build("serve-chaos", &TopoConfig::tiny(seed));
    sc.run_vp(0, &BdrmapConfig::default())
}

/// Every data-plane request the map can answer, in deterministic order.
fn sweep_requests(map: &BorderMap) -> Vec<Request> {
    let mut reqs = Vec::new();
    for router in &map.routers {
        for &a in router.addrs.iter().chain(&router.other_addrs) {
            reqs.push(Request::Owner(a));
        }
    }
    for link in &map.links {
        for a in [link.near_addr, link.far_addr].into_iter().flatten() {
            reqs.push(Request::Border(a));
        }
    }
    let mut neighbors: Vec<_> = map.links.iter().map(|l| l.far_as).collect();
    neighbors.sort_unstable();
    neighbors.dedup();
    reqs.extend(neighbors.into_iter().map(Request::Neighbor));
    reqs
}

/// One request with retries: injected resets, crashed workers, and
/// overload sheds cost another attempt on a fresh connection, never a
/// wrong answer.
fn call_retry(addr: &SocketAddr, req: &Request, attempts: usize) -> Response {
    for _ in 0..attempts {
        let Ok(mut client) = Client::connect(addr) else {
            std::thread::sleep(Duration::from_millis(25));
            continue;
        };
        match client.call(req) {
            Ok(Response::Overload) | Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Ok(resp) => return resp,
        }
    }
    panic!("request never answered after {attempts} attempts: {req:?}")
}

fn chaos_server(map: &BorderMap, chaos: ChaosNetConfig) -> Server {
    Server::start(
        map,
        ServeConfig {
            workers: 2,
            restart_backoff: Duration::from_millis(10),
            restart_backoff_cap: Duration::from_millis(80),
            chaos: Some(chaos),
            ..ServeConfig::default()
        },
    )
    .expect("server starts on an ephemeral port")
}

/// Scripted crashes of both components are healed by the watchdog and
/// counted; the server then still answers every query correctly.
#[test]
fn watchdog_restarts_crashed_components() {
    let map = infer(71);
    let reference = QueryIndex::build(&map);
    let server = chaos_server(
        &map,
        ChaosNetConfig {
            accept_panic_after: Some(2),
            worker_panic_after: Some(3),
            ..Default::default()
        },
    );
    let addr = server.local_addr();
    let reqs = sweep_requests(&map);
    assert!(reqs.len() >= 4, "need enough requests to trip both crashes");

    for req in &reqs {
        let served = call_retry(&addr, req, 40);
        let expected = answer(&reference, req).expect("sweep sends only query requests");
        assert_eq!(served, expected, "mismatch for {req:?}");
    }
    // Both scripted crashes fired and were healed. The supervisor
    // notices a death on its next heartbeat, which may land after the
    // sweep's last answer — poll briefly rather than race it.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.watchdog_restarts() != (1, 1) && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        server.watchdog_restarts(),
        (1, 1),
        "each scripted crash restarts its component exactly once"
    );
    // The restarts are visible in the metric exposition.
    let text = server.metrics();
    assert!(
        text.contains("bdrmapd_watchdog_restarts_total{component=\"acceptor\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("bdrmapd_watchdog_restarts_total{component=\"worker\"} 1"),
        "{text}"
    );
    server.shutdown();
}

/// Under seeded splits, resets, delays, and stalls, every completed
/// query matches the in-process index. Faults must actually have been
/// injected for the test to mean anything.
#[test]
fn verified_sweep_under_socket_chaos() {
    let map = infer(72);
    let reference = QueryIndex::build(&map);
    let server = chaos_server(
        &map,
        ChaosNetConfig {
            seed: 1009,
            fault_rate: 0.35,
            budget: NetFaultBudget {
                split: 6,
                reset: 4,
                accept_delay: 3,
                stall: 3,
            },
            delay: Duration::from_millis(5),
            ..Default::default()
        },
    );
    let addr = server.local_addr();

    for req in &sweep_requests(&map) {
        let served = call_retry(&addr, req, 40);
        let expected = answer(&reference, req).expect("sweep sends only query requests");
        assert_eq!(served, expected, "fault corrupted the answer for {req:?}");
    }
    let counts = server.net_fault_counts().expect("chaos was configured");
    assert!(
        counts.split + counts.reset > 0,
        "no write fault injected — the sweep proved nothing: {counts:?}"
    );

    // Quiesced, a re-sweep completes first-try on one connection.
    server.quiesce_chaos();
    let mut client = Client::connect(&addr).unwrap();
    for req in &sweep_requests(&map) {
        let served = client.call(req).expect("quiesced server answers cleanly");
        assert_eq!(served, answer(&reference, req).unwrap());
    }
    drop(client);
    server.shutdown();
}

/// Same seed, same sequential client → byte-identical fault counts.
#[test]
fn same_seed_injects_same_fault_counts() {
    let map = infer(73);
    let cfg = ChaosNetConfig {
        seed: 4321,
        fault_rate: 0.4,
        budget: NetFaultBudget {
            split: 5,
            reset: 3,
            accept_delay: 2,
            stall: 2,
        },
        delay: Duration::from_millis(2),
        ..Default::default()
    };
    let run = || {
        let server = chaos_server(&map, cfg);
        let addr = server.local_addr();
        for req in &sweep_requests(&map) {
            let _ = call_retry(&addr, req, 40);
        }
        let counts = server.net_fault_counts().unwrap();
        server.shutdown();
        counts
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "fault schedule must be seed-deterministic");
    assert!(first.split + first.reset + first.accept_delay + first.stall > 0);
}
