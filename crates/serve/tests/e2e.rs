//! End-to-end tests for bdrmapd: a real inference served over real TCP.
//!
//! These are the PR's acceptance experiments: (1) every query kind
//! round-trips correctly against the border map the daemon is serving,
//! (2) a hot snapshot swap under sustained load loses zero in-flight
//! queries and post-swap answers reflect the new snapshot, and (3) a
//! saturated accept queue sheds with `Overload` instead of queueing
//! without bound.

use bdrmap_core::{snapshot, BdrmapConfig, BorderMap, QueryIndex};
use bdrmap_eval::Scenario;
use bdrmap_serve::{
    loadgen, queries_for_map, Client, LinkInfo, LoadgenConfig, Request, Response, ServeConfig,
    Server, ServerBackend,
};
use bdrmap_topo::TopoConfig;
use bdrmap_types::wire::{read_frame, MAX_FRAME};
use std::time::Duration;

fn infer(seed: u64, vp: usize) -> BorderMap {
    let sc = Scenario::build("serve-e2e", &TopoConfig::tiny(seed));
    sc.run_vp(vp, &BdrmapConfig::default())
}

/// Both backends must pass every acceptance experiment in this file.
fn backends() -> Vec<ServerBackend> {
    let mut v = vec![ServerBackend::Threads];
    if cfg!(target_os = "linux") {
        v.push(ServerBackend::Epoll);
    }
    v
}

fn start(map: &BorderMap, workers: usize, queue: usize, backend: ServerBackend) -> Server {
    Server::start(
        map,
        ServeConfig {
            workers,
            queue,
            backend,
            ..ServeConfig::default()
        },
    )
    .expect("server starts on an ephemeral port")
}

/// Acceptance: for every address/AS the map knows about, the served
/// answer equals what the in-process index computes.
#[test]
fn serves_all_three_query_kinds_correctly() {
    for backend in backends() {
        serves_all_three_query_kinds_correctly_impl(backend);
    }
}

fn serves_all_three_query_kinds_correctly_impl(backend: ServerBackend) {
    let map = infer(61, 0);
    assert!(!map.links.is_empty(), "tiny scenario must infer links");
    let reference = QueryIndex::build(&map);
    let server = start(&map, 2, 16, backend);
    let mut client = Client::connect(&server.local_addr()).unwrap();

    // Owner-of-address over every router interface in the map.
    let mut owners = 0;
    for router in &map.routers {
        for &a in router.addrs.iter().chain(&router.other_addrs) {
            let served = match client.call(&Request::Owner(a)).unwrap() {
                Response::Owner(ans) => ans,
                other => panic!("owner query answered with {other:?}"),
            };
            assert_eq!(served, reference.owner_of(a), "owner mismatch for {a}");
            owners += served.is_some() as u32;
        }
    }
    assert!(owners > 0, "no owned router interface resolved");

    // Border-router-of-link over every link interface.
    let mut borders = 0;
    for link in &map.links {
        for a in [link.near_addr, link.far_addr].into_iter().flatten() {
            let served = match client.call(&Request::Border(a)).unwrap() {
                Response::Border(ans) => ans,
                other => panic!("border query answered with {other:?}"),
            };
            let expected = reference.border_of(a).map(LinkInfo::from);
            assert_eq!(served, expected, "border mismatch for {a}");
            borders += served.is_some() as u32;
        }
    }
    assert!(borders > 0, "no link interface resolved to a border");

    // Links-of-neighbor-AS over every far AS in the map.
    let mut neighbor_links = 0;
    let mut neighbors: Vec<_> = map.links.iter().map(|l| l.far_as).collect();
    neighbors.sort_unstable();
    neighbors.dedup();
    for asn in neighbors {
        let served = match client.call(&Request::Neighbor(asn)).unwrap() {
            Response::Neighbor(links) => links,
            other => panic!("neighbor query answered with {other:?}"),
        };
        let expected: Vec<LinkInfo> = reference
            .links_of_neighbor(asn)
            .iter()
            .filter_map(|&id| reference.link_answer(id))
            .map(LinkInfo::from)
            .collect();
        assert_eq!(served, expected, "neighbor mismatch for {asn}");
        neighbor_links += served.len();
    }
    assert!(neighbor_links > 0, "no neighbor produced links");

    // A covering miss stays a miss.
    let nowhere = "255.255.255.254".parse().unwrap();
    assert_eq!(
        client.call(&Request::Owner(nowhere)).unwrap(),
        Response::Owner(None)
    );
    assert_eq!(
        client.call(&Request::Border(nowhere)).unwrap(),
        Response::Border(None)
    );

    // Stats reflect the work and the initial generation.
    let stats = match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => s,
        other => panic!("stats answered with {other:?}"),
    };
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.routers as usize, map.routers.len());
    assert_eq!(stats.links as usize, map.links.len());
    assert!(stats.queries > 0);

    drop(client);
    server.shutdown();
}

/// Acceptance: a reload concurrent with sustained load answers every
/// in-flight query, and post-swap responses reflect the new snapshot.
#[test]
fn hot_swap_under_load_loses_no_queries() {
    for backend in backends() {
        hot_swap_under_load_loses_no_queries_impl(backend);
    }
}

fn hot_swap_under_load_loses_no_queries_impl(backend: ServerBackend) {
    let map_a = infer(61, 0);
    let map_b = infer(61, 1);
    let dir = std::env::temp_dir().join("bdrmap-serve-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_b = dir.join("map-b.bdrm");
    snapshot::save(&snap_b, &map_b).unwrap();

    let server = start(&map_a, 4, 64, backend);
    let queries = queries_for_map(&map_a);
    let report = loadgen::run(
        server.local_addr(),
        &queries,
        &LoadgenConfig {
            conns: 4,
            duration: Duration::from_millis(1200),
            reload_with: Some(snap_b.clone()),
            ..LoadgenConfig::default()
        },
    )
    .unwrap();

    assert!(report.queries_ok > 0, "load generator made no progress");
    assert_eq!(
        report.queries_error, 0,
        "hot swap lost in-flight queries: {report:?}"
    );
    let reload = report.reload.expect("mid-run reload must report stats");
    assert_eq!(reload.generation, 2, "exactly one swap must have landed");
    assert!(reload.round_trip_us > 0);

    // Post-swap, the daemon answers from the new snapshot: every owner
    // answer matches an index built from map B, not map A.
    let reference_b = QueryIndex::build(&map_b);
    let mut client = Client::connect(&server.local_addr()).unwrap();
    for router in &map_b.routers {
        for &a in router.addrs.iter().chain(&router.other_addrs) {
            let served = match client.call(&Request::Owner(a)).unwrap() {
                Response::Owner(ans) => ans,
                other => panic!("owner query answered with {other:?}"),
            };
            assert_eq!(served, reference_b.owner_of(a), "stale answer for {a}");
        }
    }
    let stats = match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => s,
        other => panic!("stats answered with {other:?}"),
    };
    assert_eq!(stats.generation, 2);

    drop(client);
    server.shutdown();
    std::fs::remove_file(&snap_b).ok();
}

/// With one worker and a one-deep queue, extra connections are shed
/// with a single `Overload` frame instead of piling up.
#[test]
fn saturated_accept_queue_sheds_overload() {
    for backend in backends() {
        saturated_accept_queue_sheds_overload_impl(backend);
    }
}

fn saturated_accept_queue_sheds_overload_impl(backend: ServerBackend) {
    let map = infer(61, 0);
    let server = start(&map, 1, 1, backend);

    // Occupy the only worker: a connection is held for its lifetime.
    let mut busy = Client::connect(&server.local_addr()).unwrap();
    let addr = map.routers[0]
        .addrs
        .first()
        .copied()
        .unwrap_or_else(|| "203.0.113.1".parse().unwrap());
    busy.call(&Request::Owner(addr)).unwrap();

    // Flood: one connection fits the queue; later ones must be shed.
    let mut sheds = 0;
    let mut extras = Vec::new();
    for _ in 0..8 {
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        // Shed frames arrive immediately; a queued connection just
        // times out here and is kept open to hold its queue slot.
        stream
            .set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        match read_frame(&mut stream, MAX_FRAME) {
            Ok(Some(payload)) => {
                assert_eq!(Response::decode(&payload).unwrap(), Response::Overload);
                sheds += 1;
            }
            // Queued (no frame yet) — keep the socket open so the queue
            // stays full for the rest of the flood.
            _ => extras.push(stream),
        }
    }
    assert!(sheds > 0, "no connection was shed at the accept queue");
    assert!(server.stats().sheds >= sheds);

    // The busy connection still works: shedding is per-connection, not
    // a server-wide failure.
    assert!(matches!(
        busy.call(&Request::Owner(addr)).unwrap(),
        Response::Owner(_)
    ));

    drop(busy);
    drop(extras);
    server.shutdown();
}

/// Pull one counter value out of a Prometheus-style exposition.
fn scrape(text: &str, name: &str, labels: &str) -> u64 {
    let series = if labels.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{labels}}}")
    };
    for line in text.lines() {
        if let Some(v) = line.strip_prefix(&format!("{series} ")) {
            return v.trim().parse().unwrap_or_else(|_| {
                panic!("unparseable sample for {series}: {line}");
            });
        }
    }
    panic!("series {series} not found in exposition:\n{text}");
}

/// Regression (observability sweep): polling `Stats` must neither
/// inflate the query counter (the old bug class: control frames
/// counted as queries) nor vanish from accounting — every control
/// frame shows up under its own opcode in `bdrmapd_requests_total`.
#[test]
fn stats_polling_neither_distorts_nor_vanishes() {
    for backend in backends() {
        stats_polling_neither_distorts_nor_vanishes_impl(backend);
    }
}

fn stats_polling_neither_distorts_nor_vanishes_impl(backend: ServerBackend) {
    let map = infer(61, 0);
    let server = start(&map, 2, 16, backend);
    let mut client = Client::connect(&server.local_addr()).unwrap();

    let addr = map.routers[0]
        .addrs
        .first()
        .copied()
        .unwrap_or_else(|| "203.0.113.1".parse().unwrap());
    let far_as = map
        .links
        .first()
        .map(|l| l.far_as)
        .unwrap_or(bdrmap_types::Asn(64500));
    for _ in 0..5 {
        client.call(&Request::Owner(addr)).unwrap();
    }
    for _ in 0..3 {
        client.call(&Request::Border(addr)).unwrap();
    }
    for _ in 0..2 {
        client.call(&Request::Neighbor(far_as)).unwrap();
    }

    // Poll Stats heavily; the query counter must not move.
    let mut last = None;
    for _ in 0..7 {
        match client.call(&Request::Stats).unwrap() {
            Response::Stats(s) => last = Some(s),
            other => panic!("stats answered with {other:?}"),
        }
    }
    assert_eq!(
        last.unwrap().queries,
        10,
        "Stats polling distorted the query counter"
    );

    // ...and one Health frame for good measure.
    match client.call(&Request::Health).unwrap() {
        Response::Health(_) => {}
        other => panic!("health answered with {other:?}"),
    }

    // The control frames are accounted under their own opcodes.
    let text = match client.call(&Request::Metrics).unwrap() {
        Response::Metrics(t) => t,
        other => panic!("metrics answered with {other:?}"),
    };
    assert_eq!(scrape(&text, "bdrmapd_requests_total", "op=\"owner\""), 5);
    assert_eq!(scrape(&text, "bdrmapd_requests_total", "op=\"border\""), 3);
    assert_eq!(
        scrape(&text, "bdrmapd_requests_total", "op=\"neighbor\""),
        2
    );
    assert_eq!(scrape(&text, "bdrmapd_requests_total", "op=\"stats\""), 7);
    assert_eq!(scrape(&text, "bdrmapd_requests_total", "op=\"health\""), 1);
    // The Metrics request itself was counted before rendering.
    assert_eq!(scrape(&text, "bdrmapd_requests_total", "op=\"metrics\""), 1);
    // Exposition agrees with the wire Stats view of query volume.
    assert!(text.contains("# TYPE bdrmapd_request_us histogram"));

    drop(client);
    server.shutdown();
}

/// Regression (torn reload triple): `(generation, build_us, swap_us)`
/// is published as one atomically-swapped unit, so a `Stats` reader
/// racing concurrent reloads can never observe a mix of two reloads'
/// fields. Every observed triple must be exactly the initial one or
/// one returned by some `Reloaded` response.
#[test]
fn concurrent_reloads_never_tear_the_stats_triple() {
    for backend in backends() {
        concurrent_reloads_never_tear_the_stats_triple_impl(backend);
    }
}

fn concurrent_reloads_never_tear_the_stats_triple_impl(backend: ServerBackend) {
    let map = infer(61, 0);
    let map_b = infer(61, 1);
    let dir = std::env::temp_dir().join("bdrmap-serve-e2e-tear");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("map-b.bdrm");
    snapshot::save(&snap, &map_b).unwrap();

    let server = start(&map, 4, 64, backend);
    let addr = server.local_addr();
    let path = snap.display().to_string();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Two threads hammer Reload; collect every triple the server
    // acknowledged.
    let reloaders: Vec<_> = (0..2)
        .map(|_| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut acked = Vec::new();
                for _ in 0..12 {
                    match client.call(&Request::Reload(path.clone())).unwrap() {
                        Response::Reloaded {
                            generation,
                            build_us,
                            swap_us,
                            ..
                        } => acked.push((generation, build_us, swap_us)),
                        Response::Error(e) => panic!("reload failed: {e}"),
                        other => panic!("reload answered with {other:?}"),
                    }
                }
                acked
            })
        })
        .collect();

    // One thread polls Stats the whole time.
    let poller = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let mut seen = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match client.call(&Request::Stats).unwrap() {
                    Response::Stats(s) => {
                        seen.push((s.generation, s.last_build_us, s.last_swap_us))
                    }
                    other => panic!("stats answered with {other:?}"),
                }
            }
            seen
        })
    };

    let mut acked: Vec<(u64, u64, u64)> = Vec::new();
    for h in reloaders {
        acked.extend(h.join().unwrap());
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let seen = poller.join().unwrap();

    assert!(!seen.is_empty(), "poller observed nothing");
    for triple in &seen {
        let legitimate = *triple == (1, 0, 0) || acked.contains(triple);
        assert!(
            legitimate,
            "torn stats triple {triple:?}: not the boot state and not \
             acknowledged by any reload (acked: {acked:?})"
        );
    }
    // Sanity: the 24 reloads really advanced the generation.
    assert_eq!(server.generation(), 25);

    server.shutdown();
    std::fs::remove_file(&snap).ok();
}
