//! Integration-style tests driving the data plane over generated
//! Internets, checking the traceroute idiosyncrasies the paper relies on.

use crate::packet::{Probe, ProbeKind, RespKind};
use crate::plane::DataPlane;
use bdrmap_topo::{generate, AsKind, ResponsePolicy, TopoConfig};
use bdrmap_types::Addr;

fn plane(seed: u64) -> DataPlane {
    DataPlane::new(generate(&TopoConfig::tiny(seed)))
}

/// Run a full traceroute: probes with increasing TTL until an echo
/// reply / unreachable, too many silent hops, or the hop limit.
fn traceroute(dp: &DataPlane, src: Addr, dst: Addr) -> Vec<Option<(Addr, RespKind)>> {
    let flow = (u32::from(dst) & 0xffff) as u16;
    let mut hops = Vec::new();
    let mut gap = 0;
    for ttl in 1..=32u8 {
        let p = Probe {
            src,
            dst,
            ttl,
            flow,
            kind: ProbeKind::IcmpEcho,
            time_ms: ttl as u64 * 20,
        };
        match dp.probe(&p) {
            Some(r) => {
                gap = 0;
                let done = !matches!(r.kind, RespKind::TimeExceeded);
                hops.push(Some((r.src, r.kind)));
                if done {
                    break;
                }
            }
            None => {
                gap += 1;
                hops.push(None);
                if gap >= 5 {
                    break;
                }
            }
        }
    }
    hops
}

#[test]
fn traceroute_reaches_a_routed_destination() {
    let dp = plane(1);
    let net = dp.internet();
    let vp = net.vps[0].addr;
    // Probe toward some stub's announced prefix.
    let stub = net
        .graph
        .ases()
        .find(|&a| net.as_info(a).kind == AsKind::Stub && !net.origins.prefixes_of(a).is_empty())
        .unwrap();
    let p = net.origins.prefixes_of(stub)[0];
    let dst = p.nth(1);
    let hops = traceroute(&dp, vp, dst);
    assert!(!hops.is_empty());
    let answered = hops.iter().flatten().count();
    assert!(
        answered >= 2,
        "expected several responding hops, got {answered}: {hops:?}"
    );
}

#[test]
fn paris_stability_same_flow_same_path() {
    let dp = plane(2);
    let net = dp.internet();
    let vp = net.vps[0].addr;
    let stub = net
        .graph
        .ases()
        .find(|&a| net.as_info(a).kind == AsKind::Stub && !net.origins.prefixes_of(a).is_empty())
        .unwrap();
    let dst = net.origins.prefixes_of(stub)[0].nth(7);
    let a = traceroute(&dp, vp, dst);
    let b = traceroute(&dp, vp, dst);
    // Rate-limited routers may answer one run and not the other, but
    // wherever both runs got an answer at the same TTL, the address must
    // be identical: the per-flow path is stable.
    let mut compared = 0;
    for (ha, hb) in a.iter().zip(&b) {
        if let (Some((aa, _)), Some((ab, _))) = (ha, hb) {
            assert_eq!(aa, ab, "Paris traceroute must be stable per flow");
            compared += 1;
        }
    }
    assert!(
        compared >= 2,
        "need overlapping responsive hops, got {compared}"
    );
}

#[test]
fn first_hops_belong_to_vp_network() {
    let dp = plane(3);
    let net = dp.internet();
    let vp = net.vps[0].addr;
    let stub = net
        .graph
        .ases()
        .find(|&a| net.as_info(a).kind == AsKind::Stub && !net.origins.prefixes_of(a).is_empty())
        .unwrap();
    let dst = net.origins.prefixes_of(stub)[0].nth(3);
    let hops = traceroute(&dp, vp, dst);
    let first = hops
        .iter()
        .flatten()
        .next()
        .expect("at least one responding hop");
    let owner = net
        .owner_of_addr(first.0)
        .expect("hop address is an interface");
    assert!(
        net.vp_siblings.contains(&owner),
        "first hop {} owned by {owner}, not the VP network",
        first.0
    );
}

#[test]
fn ttl_expiry_yields_time_exceeded_and_delivery_yields_echo() {
    let dp = plane(4);
    let net = dp.internet();
    let vp = net.vps[0].addr;
    // Find an interface address of a normally-responding router outside
    // the VP org but routed.
    let target = net
        .ifaces
        .iter()
        .find(|i| {
            let r = &net.routers[i.router.index()];
            r.policy == ResponsePolicy::Normal
                && !net.vp_siblings.contains(&r.owner)
                && net.origins.lookup(i.addr).is_some()
        })
        .expect("responsive external interface");
    let p = Probe {
        src: vp,
        dst: target.addr,
        ttl: 64,
        flow: 1,
        kind: ProbeKind::IcmpEcho,
        time_ms: 0,
    };
    let r = dp.probe(&p).expect("echo reply");
    assert_eq!(r.kind, RespKind::EchoReply);
    assert_eq!(
        r.src, target.addr,
        "echo reply must come from the probed address"
    );

    let p1 = Probe { ttl: 1, ..p };
    let r1 = dp.probe(&p1).expect("first hop");
    assert_eq!(r1.kind, RespKind::TimeExceeded);
    assert_ne!(r1.src, target.addr);
}

#[test]
fn firewalled_stub_hides_internal_hops() {
    // With an all-firewall customer mix, no probe into a stub's space may
    // reveal an address from the stub's own announced blocks via
    // time-exceeded.
    let mut cfg = TopoConfig::tiny(5);
    cfg.customer_policy = bdrmap_topo::PolicyMix {
        firewall: 1.0,
        silent: 0.0,
        echo_other: 0.0,
        rate_limited: 0.0,
    };
    cfg.third_party_frac = 0.0;
    cfg.virtual_router_frac = 0.0;
    let dp = DataPlane::new(generate(&cfg));
    let net = dp.internet();
    let vp = net.vps[0].addr;
    for a in net.graph.ases() {
        if net.as_info(a).kind != AsKind::Stub {
            continue;
        }
        for pfx in net.origins.prefixes_of(a) {
            let dst = pfx.nth(9);
            for h in traceroute(&dp, vp, dst).iter().flatten() {
                if h.1 == RespKind::TimeExceeded {
                    let owner = net.owner_of_addr(h.0);
                    // The stub's edge responds with the provider-assigned
                    // link address, never its own space: the address we
                    // see may be *on* the stub's router, but always maps
                    // to someone else's announced space.
                    let origin_as = net.origins.lookup(h.0).map(|o| o.origins[0]);
                    assert_ne!(origin_as, Some(a), "leaked {h:?} owner {owner:?}");
                }
            }
        }
    }
}

#[test]
fn normal_stub_reveals_internal_hop() {
    // With an all-normal mix, stubs with internal routers reveal
    // addresses in their own space.
    let mut cfg = TopoConfig::tiny(6);
    cfg.customer_policy = bdrmap_topo::PolicyMix::all_normal();
    cfg.unrouted_infra_frac = 0.0;
    let dp = DataPlane::new(generate(&cfg));
    let net = dp.internet();
    let vp = net.vps[0].addr;
    let mut found_internal = false;
    for a in net.graph.ases() {
        if !matches!(net.as_info(a).kind, AsKind::Stub) {
            continue;
        }
        for pfx in net.origins.prefixes_of(a) {
            let dst = pfx.nth(11);
            for h in traceroute(&dp, vp, dst).iter().flatten() {
                if h.1 == RespKind::TimeExceeded
                    && net.origins.lookup(h.0).map(|o| o.origins[0]) == Some(a)
                {
                    found_internal = true;
                }
            }
        }
    }
    assert!(found_internal, "no stub revealed its own address space");
}

#[test]
fn responses_are_deterministic() {
    let dp1 = plane(7);
    let dp2 = plane(7);
    let net = dp1.internet();
    let vp = net.vps[0].addr;
    let dst = net.origins.iter().map(|o| o.prefix.nth(1)).nth(5).unwrap();
    for ttl in 1..10 {
        let p = Probe {
            src: vp,
            dst,
            ttl,
            flow: 3,
            kind: ProbeKind::IcmpEcho,
            time_ms: 50,
        };
        let a = dp1.probe(&p);
        let b = dp2.probe(&p);
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.src, y.src);
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.ipid, y.ipid);
            }
            (None, None) => {}
            other => panic!("divergent results: {other:?}"),
        }
    }
}

#[test]
fn shared_counter_router_yields_interleavable_ipids() {
    let dp = plane(8);
    let net = dp.internet();
    let vp = net.vps[0].addr;
    // Find a shared-counter router with two routed addresses.
    let router = net
        .routers
        .iter()
        .find(|r| {
            matches!(r.ipid, bdrmap_topo::IpidModel::SharedCounter { .. })
                && r.policy == ResponsePolicy::Normal
                && r.ifaces.len() >= 2
                && r.ifaces.iter().all(|i| {
                    let a = net.ifaces[i.index()].addr;
                    net.origins.lookup(a).is_some()
                })
                && !net.vp_siblings.contains(&r.owner)
        })
        .expect("need a shared-counter router");
    let a0 = net.ifaces[router.ifaces[0].index()].addr;
    let a1 = net.ifaces[router.ifaces[1].index()].addr;
    let mut ids = Vec::new();
    for (i, &dst) in [a0, a1, a0, a1].iter().enumerate() {
        let p = Probe {
            src: vp,
            dst,
            ttl: 64,
            flow: 9,
            kind: ProbeKind::IcmpEcho,
            time_ms: 1000 + i as u64,
        };
        if let Some(r) = dp.probe(&p) {
            ids.push(r.ipid);
        }
    }
    assert_eq!(ids.len(), 4, "all probes should be answered");
    // Monotone (mod wrap) across both addresses: the MIDAR test.
    for w in ids.windows(2) {
        let d = w[1].wrapping_sub(w[0]);
        assert!(
            d > 0 && d < 5000,
            "interleaved IPIDs not from one counter: {ids:?}"
        );
    }
}

#[test]
fn probe_to_unrouted_space_is_lost() {
    let dp = plane(9);
    let net = dp.internet();
    let vp = net.vps[0].addr;
    // An address in deliberately unannounced space of a non-VP AS.
    let dark = net
        .graph
        .ases()
        .filter(|&a| !net.vp_siblings.contains(&a))
        .flat_map(|a| net.as_info(a).unannounced.clone())
        .next();
    if let Some(p) = dark {
        let probe = Probe {
            src: vp,
            dst: p.nth(p.size() - 2),
            ttl: 64,
            flow: 1,
            kind: ProbeKind::IcmpEcho,
            time_ms: 0,
        };
        // Either silently lost or answered by someone on-path whose
        // covering aggregate routes it — but never an echo reply from
        // the dark address itself.
        if let Some(r) = dp.probe(&probe) {
            assert_ne!(r.kind, RespKind::EchoReply);
        }
    }
}

#[test]
fn udp_probe_mercator_behaviour() {
    let dp = plane(10);
    let net = dp.internet();
    let vp = net.vps[0].addr;
    let mut saw_canonical = false;
    for r in &net.routers {
        if r.unreach_src != bdrmap_topo::UnreachSrc::Canonical
            || r.policy != ResponsePolicy::Normal
            || net.vp_siblings.contains(&r.owner)
        {
            continue;
        }
        // Probe a non-loopback interface; expect the canonical (loopback)
        // address in the reply.
        let Some(target) = r.ifaces.iter().map(|i| &net.ifaces[i.index()]).find(|i| {
            i.kind != bdrmap_topo::IfaceKind::Loopback && net.origins.lookup(i.addr).is_some()
        }) else {
            continue;
        };
        let p = Probe {
            src: vp,
            dst: target.addr,
            ttl: 64,
            flow: 2,
            kind: ProbeKind::Udp,
            time_ms: 10,
        };
        if let Some(resp) = dp.probe(&p) {
            assert!(matches!(resp.kind, RespKind::DestUnreach(_)));
            if resp.src != target.addr {
                saw_canonical = true;
                break;
            }
        }
    }
    assert!(
        saw_canonical,
        "no Mercator-style canonical response observed"
    );
}

#[test]
fn vp_addresses_resolve_to_attach_routers() {
    let dp = plane(11);
    let net = dp.internet();
    for vp in &net.vps {
        assert_eq!(dp.vp_attach(vp.addr), Some(vp.attach));
    }
    assert_eq!(dp.vp_attach("9.9.9.9".parse().unwrap()), None);
}

#[test]
fn probe_from_unknown_source_is_rejected() {
    let dp = plane(12);
    let p = Probe {
        src: "203.0.113.99".parse().unwrap(),
        dst: "10.0.0.1".parse().unwrap(),
        ttl: 8,
        flow: 0,
        kind: ProbeKind::IcmpEcho,
        time_ms: 0,
    };
    assert!(dp.probe(&p).is_none());
}

#[test]
fn hot_potato_prefers_near_egress() {
    // With 19 VPs in the scaled access network, at least two VPs must use
    // different egress border routers for the same far-away prefix.
    let cfg = TopoConfig::large_access_scaled(13, 0.05);
    let dp = DataPlane::new(generate(&cfg));
    let net = dp.internet();
    // A prefix of a major peer (Subset export) or any transit customer.
    let dst = net
        .graph
        .ases()
        .filter(|&a| {
            !net.vp_siblings.contains(&a) && net.graph.relationship(net.vp_as, a).is_none()
        })
        .flat_map(|a| net.origins.prefixes_of(a))
        .map(|p| p.nth(1))
        .next()
        .expect("external destination");
    let mut egress_addrs = std::collections::HashSet::new();
    for vp in &net.vps {
        // Walk the trace; record the last VP-network address seen.
        let hops = traceroute(&dp, vp.addr, dst);
        let mut last_vp_addr = None;
        for (a, k) in hops.iter().flatten() {
            if *k == RespKind::TimeExceeded {
                if let Some(owner) = net.owner_of_addr(*a) {
                    if net.vp_siblings.contains(&owner) {
                        last_vp_addr = Some(*a);
                    }
                }
            }
        }
        if let Some(a) = last_vp_addr {
            egress_addrs.insert(net.router_of_addr(a));
        }
    }
    assert!(
        egress_addrs.len() >= 2,
        "hot potato should spread egress across VPs: {egress_addrs:?}"
    );
}

#[test]
fn third_party_source_addresses_occur() {
    // Force everyone to RFC1812 sourcing and check that at least one
    // time-exceeded hop maps to an AS that is neither the VP network nor
    // on the forward path toward the destination's origin.
    let mut cfg = TopoConfig::tiny(14);
    cfg.third_party_frac = 1.0;
    cfg.virtual_router_frac = 0.0;
    cfg.customer_policy = bdrmap_topo::PolicyMix::all_normal();
    let dp = DataPlane::new(generate(&cfg));
    let net = dp.internet();
    let vp = net.vps[0].addr;
    let mut any_mismatch = false;
    'outer: for o in net.origins.iter() {
        let dst = o.prefix.nth(1);
        for (a, k) in traceroute(&dp, vp, dst).iter().flatten() {
            if *k != RespKind::TimeExceeded {
                continue;
            }
            let Some(owner) = net.owner_of_addr(*a) else {
                continue;
            };
            let Some(mapped) = net.origins.lookup(*a).map(|x| x.origins[0]) else {
                continue;
            };
            if mapped != owner && !net.graph.same_org(mapped, owner) {
                any_mismatch = true;
                break 'outer;
            }
        }
    }
    assert!(
        any_mismatch,
        "RFC1812 sourcing should produce at least one address mapping to a third party"
    );
}

#[test]
fn virtual_router_sources_toward_destination() {
    // A TowardDest router answers TTL-expired with the interface that
    // would forward the probe onward — so probes through it toward
    // different destinations can reveal different addresses of the same
    // physical router (the Figure 13 input).
    let mut cfg = TopoConfig::tiny(61);
    cfg.virtual_router_frac = 1.0;
    cfg.third_party_frac = 0.0;
    cfg.customer_policy = bdrmap_topo::PolicyMix::all_normal();
    let dp = DataPlane::new(generate(&cfg));
    let net = dp.internet();
    let vp = net.vps[0].addr;
    // Probe toward every routed prefix; collect per-ground-truth-router
    // the set of source addresses seen in TTL-expired responses.
    let mut per_router: std::collections::BTreeMap<_, std::collections::BTreeSet<Addr>> =
        Default::default();
    for o in net.origins.iter() {
        let dst = o.prefix.nth(1);
        for h in traceroute(&dp, vp, dst).iter().flatten() {
            if h.1 == RespKind::TimeExceeded {
                if let Some(r) = net.router_of_addr(h.0) {
                    per_router.entry(r).or_default().insert(h.0);
                }
            }
        }
    }
    let multi = per_router.values().filter(|s| s.len() >= 2).count();
    assert!(
        multi >= 1,
        "with virtual-router sourcing some router must show several addresses: {per_router:?}"
    );
}

#[test]
fn firewall_answers_expiry_but_blocks_transit() {
    // The paper's R5: a firewalling border answers the TTL-expired probe
    // that dies on it, yet swallows probes that would transit.
    let mut cfg = TopoConfig::tiny(62);
    cfg.customer_policy = bdrmap_topo::PolicyMix {
        firewall: 1.0,
        silent: 0.0,
        echo_other: 0.0,
        rate_limited: 0.0,
    };
    let dp = DataPlane::new(generate(&cfg));
    let net = dp.internet();
    let vp = net.vps[0].addr;
    let mut verified = 0;
    for a in net.graph.ases() {
        if net.as_info(a).kind != AsKind::Stub {
            continue;
        }
        // The stub's edge router firewalls; probe its own prefix.
        let Some(pfx) = net.origins.prefixes_of(a).first().copied() else {
            continue;
        };
        let hops = traceroute(&dp, vp, pfx.nth(3));
        // The last responding hop must be a TTL-expired (the edge), and
        // everything after must be silence (no DestUnreach from inside).
        let responding: Vec<_> = hops.iter().flatten().collect();
        if let Some(last) = responding.last() {
            assert_eq!(
                last.1,
                RespKind::TimeExceeded,
                "a firewalled stub must end in an expiry, not {last:?}"
            );
            verified += 1;
        }
    }
    assert!(verified >= 3, "checked {verified} stubs");
}

#[test]
fn echo_other_icmp_policy_emits_admin_filtered() {
    let mut cfg = TopoConfig::tiny(63);
    cfg.customer_policy = bdrmap_topo::PolicyMix {
        firewall: 0.0,
        silent: 0.0,
        echo_other: 1.0,
        rate_limited: 0.0,
    };
    let dp = DataPlane::new(generate(&cfg));
    let net = dp.internet();
    let vp = net.vps[0].addr;
    let mut saw_admin = false;
    'outer: for a in net.graph.ases() {
        if net.as_info(a).kind != AsKind::Stub {
            continue;
        }
        for pfx in net.origins.prefixes_of(a) {
            for h in traceroute(&dp, vp, pfx.nth(5)).iter().flatten() {
                if h.1 == RespKind::DestUnreach(crate::packet::UnreachReason::AdminFiltered) {
                    // The source must map to the stub's own space — the
                    // heuristic 8.2 signal.
                    assert_eq!(net.owner_of_addr(h.0), Some(a));
                    saw_admin = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(saw_admin, "no admin-filtered response observed");
}

#[test]
fn noop_fault_plan_is_byte_identical_to_no_plan() {
    use crate::faults::FaultPlan;
    let clean = plane(70);
    let faulted = plane(70);
    // A plan with every rate at zero must be bit-for-bit inert, even
    // with a nonzero seed installed.
    faulted.set_faults(FaultPlan::with_loss(999, 0.0));
    let net = clean.internet();
    let vp = net.vps[0].addr;
    let dsts: Vec<Addr> = net.origins.iter().map(|o| o.prefix.nth(1)).collect();
    for (i, &dst) in dsts.iter().enumerate() {
        for ttl in 1..=12u8 {
            let p = Probe {
                src: vp,
                dst,
                ttl,
                flow: i as u16,
                kind: ProbeKind::IcmpEcho,
                time_ms: i as u64 * 31 + ttl as u64,
            };
            let a = clean.probe(&p);
            let b = faulted.probe(&p);
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.src, y.src);
                    assert_eq!(x.kind, y.kind);
                    assert_eq!(x.ipid, y.ipid);
                    assert_eq!(x.rtt_us, y.rtt_us);
                }
                (None, None) => {}
                other => panic!("zero-fault divergence at {dst} ttl {ttl}: {other:?}"),
            }
        }
    }
}

#[test]
fn faulted_runs_replay_identically() {
    use crate::faults::FaultPlan;
    let a = plane(71);
    let b = plane(71);
    a.set_faults(FaultPlan::with_loss(5, 0.25));
    b.set_faults(FaultPlan::with_loss(5, 0.25));
    let net = a.internet();
    let vp = net.vps[0].addr;
    let dsts: Vec<Addr> = net.origins.iter().map(|o| o.prefix.nth(1)).collect();
    let mut lost = 0;
    let mut answered = 0;
    for (i, &dst) in dsts.iter().enumerate() {
        for ttl in 1..=12u8 {
            let p = Probe {
                src: vp,
                dst,
                ttl,
                flow: i as u16,
                kind: ProbeKind::IcmpEcho,
                time_ms: i as u64 * 31 + ttl as u64,
            };
            let ra = a.probe(&p);
            let rb = b.probe(&p);
            match (ra, rb) {
                (Some(x), Some(y)) => {
                    answered += 1;
                    assert_eq!(x.src, y.src);
                    assert_eq!(x.kind, y.kind);
                    assert_eq!(x.ipid, y.ipid);
                }
                (None, None) => lost += 1,
                other => panic!("same-seed fault divergence at {dst} ttl {ttl}: {other:?}"),
            }
        }
    }
    assert!(answered > 0, "everything lost at 25% loss");
    assert!(lost > 0, "nothing lost at 25% loss over {answered} probes");
}

#[test]
fn loss_reduces_response_rate() {
    use crate::faults::FaultPlan;
    let clean = plane(72);
    let lossy = plane(72);
    lossy.set_faults(FaultPlan::with_loss(3, 0.3));
    let net = clean.internet();
    let vp = net.vps[0].addr;
    let count = |dp: &DataPlane| {
        let mut n = 0;
        for (i, o) in net.origins.iter().enumerate() {
            for ttl in 1..=10u8 {
                let p = Probe {
                    src: vp,
                    dst: o.prefix.nth(1),
                    ttl,
                    flow: i as u16,
                    kind: ProbeKind::IcmpEcho,
                    time_ms: i as u64 * 17 + ttl as u64,
                };
                if dp.probe(&p).is_some() {
                    n += 1;
                }
            }
        }
        n
    };
    let full = count(&clean);
    let degraded = count(&lossy);
    assert!(
        degraded < full * 9 / 10,
        "30% loss should cost >10% of responses: {degraded}/{full}"
    );
    // Clearing faults restores the clean response set size.
    lossy.clear_faults();
}

#[test]
fn flap_down_window_blacks_out_forwarding() {
    use crate::faults::{FaultPlan, FlapPlan};
    let dp = plane(73);
    let net = dp.internet();
    let vp = net.vps[0].addr;
    // Collect probes that demonstrably cross a link on the clean plane:
    // answered at ttl >= 2 from a router other than the VP attach.
    let attach = dp.vp_attach(vp).unwrap();
    let mut crossing = Vec::new();
    for (i, o) in net.origins.iter().enumerate() {
        for ttl in 2..=6u8 {
            let p = Probe {
                src: vp,
                dst: o.prefix.nth(1),
                ttl,
                flow: i as u16,
                kind: ProbeKind::IcmpEcho,
                time_ms: 100,
            };
            if let Some(r) = dp.probe(&p) {
                if net.router_of_addr(r.src) != Some(attach) {
                    crossing.push(p);
                }
            }
        }
    }
    assert!(crossing.len() >= 5, "need link-crossing probes to test");
    // Every link permanently down: all of them must now be lost.
    dp.set_faults(FaultPlan {
        seed: 1,
        flap: Some(FlapPlan {
            link_frac: 1.0,
            period_ms: 1000,
            down_ms: 1000,
        }),
        ..FaultPlan::none()
    });
    for p in &crossing {
        assert!(
            dp.probe(p).is_none(),
            "probe to {} ttl {} crossed a permanently-down link",
            p.dst,
            p.ttl
        );
    }
}

#[test]
fn storms_silence_member_routers_during_bursts() {
    use crate::faults::{FaultPlan, StormPlan};
    let dp = plane(74);
    // All routers storm, 100% duty cycle: no error ICMP at all, but
    // echo replies (delivered probes) still come back.
    dp.set_faults(FaultPlan {
        seed: 2,
        storm: Some(StormPlan {
            router_frac: 1.0,
            period_ms: 1000,
            burst_ms: 1000,
        }),
        ..FaultPlan::none()
    });
    let net = dp.internet();
    let vp = net.vps[0].addr;
    let mut echo = 0;
    for (i, o) in net.origins.iter().enumerate() {
        for ttl in 1..=10u8 {
            let p = Probe {
                src: vp,
                dst: o.prefix.nth(1),
                ttl,
                flow: i as u16,
                kind: ProbeKind::IcmpEcho,
                time_ms: 50,
            };
            if let Some(r) = dp.probe(&p) {
                assert_ne!(
                    r.kind,
                    RespKind::TimeExceeded,
                    "storming router emitted error ICMP"
                );
                assert!(!matches!(r.kind, RespKind::DestUnreach(_)));
                echo += 1;
            }
        }
    }
    assert!(echo > 0, "delivered probes should still be answered");
}

#[test]
fn congestion_profile_shape() {
    use crate::plane::CongestionProfile;
    let c = CongestionProfile {
        peak_us: 10_000,
        period_ms: 1000,
    };
    // Idle at cycle start and through the second half.
    assert_eq!(c.delay_at(0), 0);
    assert_eq!(c.delay_at(600), 0);
    assert_eq!(c.delay_at(999), 0);
    // Peaks near the quarter cycle.
    let peak = c.delay_at(250);
    assert!((9_000..=10_000).contains(&peak), "peak {peak}");
    // Periodic.
    assert_eq!(c.delay_at(250), c.delay_at(1250));
}

#[test]
fn rtt_grows_with_hop_distance_and_congestion() {
    use crate::plane::CongestionProfile;
    let dp = plane(64);
    let net = dp.internet();
    let vp = net.vps[0].addr;
    // A responsive external interface.
    let target = net
        .ifaces
        .iter()
        .find(|i| {
            let r = &net.routers[i.router.index()];
            i.link.is_some()
                && r.policy == ResponsePolicy::Normal
                && !net.vp_siblings.contains(&r.owner)
                && net.origins.lookup(i.addr).is_some()
        })
        .unwrap();
    let ping = |t: u64| {
        dp.probe(&Probe {
            src: vp,
            dst: target.addr,
            ttl: 64,
            flow: 5,
            kind: ProbeKind::IcmpEcho,
            time_ms: t,
        })
    };
    let quiet = ping(0).expect("reply").rtt_us;
    assert!(quiet > 0, "RTT must be positive");
    // Hop 1 must be faster than the full path.
    let first_hop = dp
        .probe(&Probe {
            src: vp,
            dst: target.addr,
            ttl: 1,
            flow: 5,
            kind: ProbeKind::IcmpEcho,
            time_ms: 0,
        })
        .expect("first hop");
    assert!(first_hop.rtt_us < quiet, "{} !< {quiet}", first_hop.rtt_us);
    // Congest a link the probe path demonstrably crosses: the inbound
    // interface of the last time-exceeded hop identifies it.
    let hops = traceroute(&dp, vp, target.addr);
    let last_te = hops
        .iter()
        .flatten()
        .rfind(|h| h.1 == RespKind::TimeExceeded)
        .expect("trace has hops");
    let link = net
        .iface_of_addr(last_te.0)
        .and_then(|i| i.link)
        .expect("hop interface has a link");
    dp.congest(
        link,
        CongestionProfile {
            peak_us: 50_000,
            period_ms: 1000,
        },
    );
    let busy = ping(250).expect("reply").rtt_us;
    let idle = ping(0).expect("reply").rtt_us;
    assert!(busy > quiet + 20_000, "busy {busy} vs quiet {quiet}");
    assert!(idle < quiet + 5_000, "idle {idle} vs quiet {quiet}");
    dp.clear_congestion();
}
