//! Deterministic fault injection for the data plane.
//!
//! A [`FaultPlan`] describes stochastic impairments — per-link probe and
//! response loss, bursty ICMP storms on a subset of routers, link flaps
//! with down-windows on the simulated clock, and periodic intra-AS
//! reroute events. Every draw is a *pure function* of
//! `(seed, domain, entity id, probe identity, time bucket)` hashed
//! through splitmix64: no mutable state, so draws are thread-safe and a
//! run with the same seed and probe sequence replays byte-identically.
//!
//! Keying loss on a coarse time bucket (rather than the exact
//! millisecond) makes loss *episodic*: a probe retried immediately sees
//! the same outcome, while a retry backed off past the bucket boundary
//! gets a fresh draw — which is exactly the behaviour the probe engine's
//! retry/backoff logic is built to exploit.
//!
//! A plan with every rate at zero is a no-op and is never consulted, so
//! the fault layer costs nothing and changes nothing when disabled.

use crate::packet::Probe;
use bdrmap_types::{LinkId, RouterId};

/// One splitmix64 step — the mixer behind every fault draw.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Domain separators so draws for different fault kinds never collide.
mod domain {
    pub const PROBE_LOSS: u64 = 1;
    pub const RESPONSE_LOSS: u64 = 2;
    pub const STORM_MEMBER: u64 = 3;
    pub const STORM_PHASE: u64 = 4;
    pub const FLAP_MEMBER: u64 = 5;
    pub const FLAP_PHASE: u64 = 6;
    pub const REROUTE: u64 = 7;
}

/// Bursty ICMP suppression on a subset of routers: a storming router
/// generates no error ICMP (time-exceeded / unreachable) during its
/// burst window each period, as if its control plane were saturated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StormPlan {
    /// Fraction of routers that storm (chosen deterministically from
    /// the seed).
    pub router_frac: f64,
    /// Cycle length on the simulated clock (ms).
    pub period_ms: u64,
    /// Length of the suppression burst within each cycle (ms).
    pub burst_ms: u64,
}

impl Default for StormPlan {
    fn default() -> StormPlan {
        StormPlan {
            router_frac: 0.1,
            period_ms: 60_000,
            burst_ms: 5_000,
        }
    }
}

/// Link flaps: affected links drop everything crossing them during a
/// down-window each period.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlapPlan {
    /// Fraction of links that flap.
    pub link_frac: f64,
    /// Cycle length on the simulated clock (ms).
    pub period_ms: u64,
    /// Length of the down-window within each cycle (ms).
    pub down_ms: u64,
}

impl Default for FlapPlan {
    fn default() -> FlapPlan {
        FlapPlan {
            link_frac: 0.05,
            period_ms: 120_000,
            down_ms: 10_000,
        }
    }
}

/// Periodic intra-AS reroute events: each epoch re-salts the per-flow
/// hash, so ECMP and hot-potato tie-breaks re-converge mid-run the way
/// IGP events shift real paths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReroutePlan {
    /// Epoch length on the simulated clock (ms).
    pub period_ms: u64,
}

impl Default for ReroutePlan {
    fn default() -> ReroutePlan {
        ReroutePlan { period_ms: 300_000 }
    }
}

/// A complete fault configuration. `FaultPlan::none()` (or any plan
/// with all rates zero) is inert: the data plane skips the fault layer
/// entirely and behaves bit-for-bit as an unfaulted build.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every draw; two runs with the same seed and probe
    /// sequence see identical faults.
    pub seed: u64,
    /// Probability a probe is dropped crossing any single link (drawn
    /// once per link crossed, per time bucket).
    pub probe_loss: f64,
    /// Probability a generated response is lost on the way back.
    pub response_loss: f64,
    /// Width of the loss-episode time bucket (ms). Draws within one
    /// bucket repeat; crossing the boundary refreshes them.
    pub bucket_ms: u64,
    /// Bursty ICMP storms, if enabled.
    pub storm: Option<StormPlan>,
    /// Link flaps, if enabled.
    pub flap: Option<FlapPlan>,
    /// Mid-run reroute epochs, if enabled.
    pub reroute: Option<ReroutePlan>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: no loss, no storms, no flaps, no reroutes.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            probe_loss: 0.0,
            response_loss: 0.0,
            bucket_ms: 250,
            storm: None,
            flap: None,
            reroute: None,
        }
    }

    /// Uniform probe + response loss at rate `loss`.
    pub fn with_loss(seed: u64, loss: f64) -> FaultPlan {
        FaultPlan {
            seed,
            probe_loss: loss,
            response_loss: loss,
            ..FaultPlan::none()
        }
    }

    /// True when the plan can never alter any probe outcome.
    pub fn is_noop(&self) -> bool {
        self.probe_loss <= 0.0
            && self.response_loss <= 0.0
            && self
                .storm
                .is_none_or(|s| s.router_frac <= 0.0 || s.burst_ms == 0)
            && self
                .flap
                .is_none_or(|f| f.link_frac <= 0.0 || f.down_ms == 0)
            && self.reroute.is_none()
    }

    /// A uniform draw in `[0, 1)` keyed on the seed, a domain tag, and
    /// up to three identity words.
    fn uniform(&self, tag: u64, a: u64, b: u64, c: u64) -> f64 {
        let mut state = self.seed ^ tag.wrapping_mul(0xd6e8_feb8_6659_fd93);
        state ^= splitmix64(&mut state) ^ a;
        state ^= splitmix64(&mut state) ^ b;
        state ^= splitmix64(&mut state) ^ c;
        let v = splitmix64(&mut state);
        (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A raw 64-bit key for phase offsets.
    fn key(&self, tag: u64, id: u64) -> u64 {
        let mut state = self.seed ^ tag.wrapping_mul(0xd6e8_feb8_6659_fd93) ^ id;
        splitmix64(&mut state)
    }

    /// The loss-episode bucket of an instant.
    fn bucket(&self, time_ms: u64) -> u64 {
        time_ms / self.bucket_ms.max(1)
    }

    /// Identity of a probe for loss draws: destination, TTL and flow.
    /// Retries of the *same* probe within one bucket repeat the draw;
    /// backing off past the bucket boundary refreshes it.
    fn probe_word(p: &Probe) -> u64 {
        (u32::from(p.dst) as u64) << 32 | (p.ttl as u64) << 16 | p.flow as u64
    }

    /// Is this probe dropped crossing `link` at its stamped time?
    /// Covers both stochastic loss and flap down-windows.
    pub fn drops_probe(&self, link: LinkId, p: &Probe) -> bool {
        if self.link_down(link, p.time_ms) {
            return true;
        }
        self.probe_loss > 0.0
            && self.uniform(
                domain::PROBE_LOSS,
                link.0 as u64,
                Self::probe_word(p),
                self.bucket(p.time_ms),
            ) < self.probe_loss
    }

    /// Is the response to this probe lost on the return path?
    pub fn drops_response(&self, p: &Probe) -> bool {
        self.response_loss > 0.0
            && self.uniform(
                domain::RESPONSE_LOSS,
                Self::probe_word(p),
                self.bucket(p.time_ms),
                0,
            ) < self.response_loss
    }

    /// Is `link` inside a flap down-window at `time_ms`?
    pub fn link_down(&self, link: LinkId, time_ms: u64) -> bool {
        let Some(f) = self.flap else { return false };
        if f.link_frac <= 0.0 || f.down_ms == 0 || f.period_ms == 0 {
            return false;
        }
        if self.uniform(domain::FLAP_MEMBER, link.0 as u64, 0, 0) >= f.link_frac {
            return false;
        }
        // Per-link phase so the fleet doesn't flap in lockstep.
        let phase = self.key(domain::FLAP_PHASE, link.0 as u64) % f.period_ms;
        (time_ms + phase) % f.period_ms < f.down_ms
    }

    /// Is `router` suppressing error ICMP in a storm burst at `time_ms`?
    pub fn storm_suppresses(&self, router: RouterId, time_ms: u64) -> bool {
        let Some(s) = self.storm else { return false };
        if s.router_frac <= 0.0 || s.burst_ms == 0 || s.period_ms == 0 {
            return false;
        }
        if self.uniform(domain::STORM_MEMBER, router.0 as u64, 0, 0) >= s.router_frac {
            return false;
        }
        let phase = self.key(domain::STORM_PHASE, router.0 as u64) % s.period_ms;
        (time_ms + phase) % s.period_ms < s.burst_ms
    }

    /// The flow salt of the reroute epoch containing `time_ms`; zero
    /// when reroutes are disabled (and for epoch 0, so short runs match
    /// the unfaulted baseline).
    pub fn flow_salt(&self, time_ms: u64) -> u16 {
        let Some(r) = self.reroute else { return 0 };
        if r.period_ms == 0 {
            return 0;
        }
        let epoch = time_ms / r.period_ms;
        if epoch == 0 {
            return 0;
        }
        (self.key(domain::REROUTE, epoch) & 0xffff) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ProbeKind;
    use bdrmap_types::addr;

    fn probe(dst: u32, ttl: u8, flow: u16, time_ms: u64) -> Probe {
        Probe {
            src: addr(0x0a00_0001),
            dst: addr(dst),
            ttl,
            flow,
            kind: ProbeKind::IcmpEcho,
            time_ms,
        }
    }

    #[test]
    fn noop_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(plan.is_noop());
        let p = probe(0x0102_0304, 5, 7, 123);
        assert!(!plan.drops_probe(LinkId(9), &p));
        assert!(!plan.drops_response(&p));
        assert!(!plan.storm_suppresses(RouterId(3), 123));
        assert_eq!(plan.flow_salt(123), 0);
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = FaultPlan::with_loss(42, 0.3);
        let b = FaultPlan::with_loss(42, 0.3);
        for t in (0..20_000).step_by(173) {
            let p = probe(0x0102_0304 + t as u32, (t % 30) as u8 + 1, 7, t);
            for l in 0..32 {
                assert_eq!(a.drops_probe(LinkId(l), &p), b.drops_probe(LinkId(l), &p));
            }
            assert_eq!(a.drops_response(&p), b.drops_response(&p));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::with_loss(1, 0.5);
        let b = FaultPlan::with_loss(2, 0.5);
        let mut differ = false;
        for t in 0..256 {
            let p = probe(0x0102_0304 + t, 8, 7, t as u64 * 300);
            if a.drops_probe(LinkId(1), &p) != b.drops_probe(LinkId(1), &p) {
                differ = true;
                break;
            }
        }
        assert!(differ, "seeds 1 and 2 drew identical loss patterns");
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let plan = FaultPlan::with_loss(7, 0.2);
        let mut dropped = 0;
        let n = 10_000;
        for i in 0..n {
            let p = probe(0x0102_0304 + i, (i % 30) as u8 + 1, i as u16, i as u64 * 7);
            if plan.drops_probe(LinkId(i % 64), &p) {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / n as f64;
        assert!((0.15..0.25).contains(&rate), "observed loss {rate}");
    }

    #[test]
    fn draws_are_stable_within_a_bucket_and_refresh_across() {
        let plan = FaultPlan {
            seed: 3,
            probe_loss: 0.5,
            bucket_ms: 1000,
            ..FaultPlan::none()
        };
        // Identical probe within one bucket: identical outcome.
        let p1 = probe(0x0102_0304, 8, 7, 100);
        let p2 = probe(0x0102_0304, 8, 7, 900);
        assert_eq!(
            plan.drops_probe(LinkId(5), &p1),
            plan.drops_probe(LinkId(5), &p2)
        );
        // Across buckets the draws eventually differ.
        let mut differ = false;
        for b in 1..64 {
            let q = probe(0x0102_0304, 8, 7, b * 1000 + 100);
            if plan.drops_probe(LinkId(5), &q) != plan.drops_probe(LinkId(5), &p1) {
                differ = true;
                break;
            }
        }
        assert!(differ, "bucket boundary never refreshed the draw");
    }

    #[test]
    fn flap_windows_are_periodic_and_link_scoped() {
        let plan = FaultPlan {
            seed: 11,
            flap: Some(FlapPlan {
                link_frac: 1.0,
                period_ms: 1000,
                down_ms: 200,
            }),
            ..FaultPlan::none()
        };
        let link = LinkId(4);
        let downs: Vec<u64> = (0..5000).filter(|&t| plan.link_down(link, t)).collect();
        assert_eq!(downs.len(), 5 * 200, "one 200 ms window per period");
        // Periodicity: the pattern repeats each period.
        for &t in downs.iter().take(200) {
            assert!(plan.link_down(link, t + 1000));
        }
        // A non-member fraction keeps some links up.
        let sparse = FaultPlan {
            flap: Some(FlapPlan {
                link_frac: 0.3,
                ..plan.flap.unwrap()
            }),
            ..plan.clone()
        };
        let members = (0..200)
            .filter(|&l| (0..1000).any(|t| sparse.link_down(LinkId(l), t)))
            .count();
        assert!(
            (20..120).contains(&members),
            "~30% of links should flap, got {members}/200"
        );
    }

    #[test]
    fn storm_bursts_only_on_member_routers() {
        let plan = FaultPlan {
            seed: 13,
            storm: Some(StormPlan {
                router_frac: 0.5,
                period_ms: 1000,
                burst_ms: 300,
            }),
            ..FaultPlan::none()
        };
        let mut member = 0;
        for r in 0..100 {
            let storms = (0..1000).any(|t| plan.storm_suppresses(RouterId(r), t));
            if storms {
                member += 1;
                let count = (0..1000)
                    .filter(|&t| plan.storm_suppresses(RouterId(r), t))
                    .count();
                assert_eq!(count, 300, "burst width for router {r}");
            }
        }
        assert!((30..70).contains(&member), "~50 routers, got {member}");
    }

    #[test]
    fn reroute_salt_is_zero_in_first_epoch_and_stable_within_epochs() {
        let plan = FaultPlan {
            seed: 17,
            reroute: Some(ReroutePlan { period_ms: 1000 }),
            ..FaultPlan::none()
        };
        assert_eq!(plan.flow_salt(0), 0);
        assert_eq!(plan.flow_salt(999), 0);
        let s1 = plan.flow_salt(1500);
        assert_eq!(s1, plan.flow_salt(1999));
        let mut seen = std::collections::BTreeSet::new();
        for e in 1..20 {
            seen.insert(plan.flow_salt(e * 1000 + 1));
        }
        assert!(seen.len() > 10, "epoch salts should vary: {seen:?}");
    }
}
