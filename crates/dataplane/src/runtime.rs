//! Mutable per-router runtime state: IPID counters and rate limiting.

use crate::spt::fnv;
use bdrmap_topo::{Internet, IpidModel};
use bdrmap_types::{Addr, RouterId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Runtime counters, shared behind a mutex (probe workers are threaded).
pub struct Runtime {
    inner: Mutex<Inner>,
}

/// A point-in-time copy of the mutable router state, for checkpointing.
///
/// IPID counters and rate-limit tallies advance as probes arrive, so a
/// run resumed in a fresh process would diverge from an uninterrupted
/// one unless this state is carried across. Maps are flattened to
/// sorted vectors so the encoding is canonical: identical state always
/// serializes to identical bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeSnapshot {
    /// Shared central counter per router: (router, value, last ms).
    pub shared: Vec<(RouterId, u16, u64)>,
    /// Per-interface counter: (source address, value, last ms).
    pub per_iface: Vec<(Addr, u16, u64)>,
    /// Responses emitted per router: (router, count).
    pub emitted: Vec<(RouterId, u64)>,
}

struct Inner {
    /// Shared central counter per router: (value, last update ms).
    shared: HashMap<RouterId, (u16, u64)>,
    /// Per-interface counter keyed by source address.
    per_iface: HashMap<Addr, (u16, u64)>,
    /// Responses emitted per router (rate limiting).
    emitted: HashMap<RouterId, u64>,
}

impl Runtime {
    /// Fresh state.
    pub fn new() -> Runtime {
        Runtime {
            inner: Mutex::new(Inner {
                shared: HashMap::new(),
                per_iface: HashMap::new(),
                emitted: HashMap::new(),
            }),
        }
    }

    /// The IPID for a response emitted by `router` from source address
    /// `src` at `time_ms`, advancing the counters.
    pub fn ipid(&self, net: &Internet, router: RouterId, src: Addr, time_ms: u64) -> u16 {
        let model = net.routers[router.index()].ipid;
        let mut g = self.inner.lock();
        match model {
            IpidModel::SharedCounter {
                init,
                velocity_per_ms,
            } => {
                let e = g.shared.entry(router).or_insert((init, time_ms));
                let dt = time_ms.saturating_sub(e.1);
                e.0 =
                    e.0.wrapping_add((velocity_per_ms as u64 * dt) as u16)
                        .wrapping_add(1);
                e.1 = time_ms;
                e.0
            }
            IpidModel::PerInterface { velocity_per_ms } => {
                let e = g.per_iface.entry(src).or_insert((
                    // Deterministic per-interface initial value.
                    (fnv(&[u32::from(src)]) & 0xffff) as u16,
                    time_ms,
                ));
                let dt = time_ms.saturating_sub(e.1);
                e.0 =
                    e.0.wrapping_add((velocity_per_ms as u64 * dt) as u16)
                        .wrapping_add(1);
                e.1 = time_ms;
                e.0
            }
            IpidModel::Random => {
                // Deterministic pseudo-random stream per router.
                let n = g.emitted.entry(router).or_insert(0);
                *n += 1;
                (fnv(&[router.0, *n as u32, (time_ms & 0xffffffff) as u32]) & 0xffff) as u16
            }
            IpidModel::Constant => 0,
        }
    }

    /// Copy out the mutable state in canonical (sorted) order.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        let g = self.inner.lock();
        let mut shared: Vec<_> = g.shared.iter().map(|(&r, &(v, t))| (r, v, t)).collect();
        let mut per_iface: Vec<_> = g.per_iface.iter().map(|(&a, &(v, t))| (a, v, t)).collect();
        let mut emitted: Vec<_> = g.emitted.iter().map(|(&r, &n)| (r, n)).collect();
        shared.sort_unstable_by_key(|e| e.0);
        per_iface.sort_unstable_by_key(|e| e.0);
        emitted.sort_unstable_by_key(|e| e.0);
        RuntimeSnapshot {
            shared,
            per_iface,
            emitted,
        }
    }

    /// Replace the mutable state with a previously taken snapshot.
    pub fn restore(&self, snap: &RuntimeSnapshot) {
        let mut g = self.inner.lock();
        g.shared = snap.shared.iter().map(|&(r, v, t)| (r, (v, t))).collect();
        g.per_iface = snap
            .per_iface
            .iter()
            .map(|&(a, v, t)| (a, (v, t)))
            .collect();
        g.emitted = snap.emitted.iter().copied().collect();
    }

    /// Whether a rate-limited router answers this particular probe:
    /// responds to one in `period` expirations.
    pub fn rate_limit_allows(&self, router: RouterId, period: u16) -> bool {
        let mut g = self.inner.lock();
        let n = g.emitted.entry(router).or_insert(0);
        *n += 1;
        (*n - 1).is_multiple_of(period as u64)
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdrmap_topo::{generate, TopoConfig};

    fn find_router(net: &Internet, pred: impl Fn(&IpidModel) -> bool) -> Option<RouterId> {
        net.routers.iter().find(|r| pred(&r.ipid)).map(|r| r.id)
    }

    #[test]
    fn shared_counter_is_monotone_and_shared() {
        let net = generate(&TopoConfig::tiny(1));
        let rt = Runtime::new();
        let r = find_router(&net, |m| matches!(m, IpidModel::SharedCounter { .. })).unwrap();
        let ifcs = &net.routers[r.index()].ifaces;
        let a0 = net.ifaces[ifcs[0].index()].addr;
        let id1 = rt.ipid(&net, r, a0, 100);
        let id2 = rt.ipid(&net, r, a0, 101);
        // Interleaved across "interfaces" but same counter: strictly
        // increasing modulo wrap for small velocity.
        assert_ne!(id1, id2);
        let diff = id2.wrapping_sub(id1);
        assert!(
            diff > 0 && diff < 1000,
            "shared counter should advance modestly: {diff}"
        );
    }

    #[test]
    fn constant_model_yields_zero() {
        let net = generate(&TopoConfig::tiny(1));
        let rt = Runtime::new();
        if let Some(r) = find_router(&net, |m| matches!(m, IpidModel::Constant)) {
            let a = net.ifaces[net.routers[r.index()].ifaces[0].index()].addr;
            assert_eq!(rt.ipid(&net, r, a, 5), 0);
            assert_eq!(rt.ipid(&net, r, a, 500), 0);
        }
    }

    #[test]
    fn rate_limit_period() {
        let rt = Runtime::new();
        let r = RouterId(7);
        let hits: Vec<bool> = (0..8).map(|_| rt.rate_limit_allows(r, 4)).collect();
        assert_eq!(
            hits,
            vec![true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let net = generate(&TopoConfig::tiny(1));
        let rt = Runtime::new();
        // Touch every model the topology has, plus rate limiting.
        for (i, r) in net.routers.iter().take(8).enumerate() {
            let a = net.ifaces[r.ifaces[0].index()].addr;
            let _ = rt.ipid(&net, r.id, a, 100 + i as u64);
            let _ = rt.rate_limit_allows(r.id, 4);
        }
        let snap = rt.snapshot();
        // A fresh runtime restored from the snapshot continues the
        // sequences exactly where the original does.
        let rt2 = Runtime::new();
        rt2.restore(&snap);
        assert_eq!(rt2.snapshot(), snap);
        for r in net.routers.iter().take(8) {
            let a = net.ifaces[r.ifaces[0].index()].addr;
            assert_eq!(rt.ipid(&net, r.id, a, 500), rt2.ipid(&net, r.id, a, 500));
            assert_eq!(
                rt.rate_limit_allows(r.id, 4),
                rt2.rate_limit_allows(r.id, 4)
            );
        }
    }

    #[test]
    fn snapshot_is_canonically_sorted() {
        let rt = Runtime::new();
        for r in [9u32, 3, 7, 1] {
            let _ = rt.rate_limit_allows(RouterId(r), 2);
        }
        let snap = rt.snapshot();
        let ids: Vec<u32> = snap.emitted.iter().map(|e| e.0 .0).collect();
        assert_eq!(ids, vec![1, 3, 7, 9]);
    }

    #[test]
    fn random_ipids_are_deterministic_per_sequence() {
        let net = generate(&TopoConfig::tiny(1));
        if let Some(r) = find_router(&net, |m| matches!(m, IpidModel::Random)) {
            let a = net.ifaces[net.routers[r.index()].ifaces[0].index()].addr;
            let rt1 = Runtime::new();
            let rt2 = Runtime::new();
            let s1: Vec<u16> = (0..5).map(|i| rt1.ipid(&net, r, a, i)).collect();
            let s2: Vec<u16> = (0..5).map(|i| rt2.ipid(&net, r, a, i)).collect();
            assert_eq!(s1, s2);
        }
    }
}
