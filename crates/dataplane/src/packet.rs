//! Probe and response packet types.

use bdrmap_types::Addr;

/// What kind of probe packet is sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// ICMP echo request (traceroute probes, pings, Ally-icmp).
    IcmpEcho,
    /// UDP datagram to an unused high port (Mercator, Ally-udp).
    Udp,
    /// TCP ACK to port 80 (Ally-tcp).
    TcpAck,
}

/// A probe packet leaving a vantage point.
#[derive(Clone, Copy, Debug)]
pub struct Probe {
    /// Source address — must be a VP address known to the data plane.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Initial TTL. Traceroute uses 1..n; alias probes use 64.
    pub ttl: u8,
    /// Paris flow identifier: the fields load balancers hash. Keeping it
    /// constant across a traceroute keeps the path stable.
    pub flow: u16,
    /// Probe type.
    pub kind: ProbeKind,
    /// Simulated send time in milliseconds (drives IPID velocity).
    pub time_ms: u64,
}

/// Why a destination was unreachable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnreachReason {
    /// No host at the probed address (ICMP host unreachable).
    Host,
    /// Administratively filtered at a network edge (the signal behind
    /// heuristic 8.2).
    AdminFiltered,
    /// UDP port unreachable (the Mercator signal).
    Port,
}

/// What kind of response came back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RespKind {
    /// ICMP time exceeded — the traceroute workhorse.
    TimeExceeded,
    /// ICMP echo reply.
    EchoReply,
    /// ICMP destination unreachable.
    DestUnreach(UnreachReason),
    /// TCP RST.
    TcpRst,
}

/// A response received at the vantage point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Response {
    /// Source address of the response — the only router identity
    /// bdrmap ever sees.
    pub src: Addr,
    /// Response type.
    pub kind: RespKind,
    /// IP-ID of the response packet (alias-resolution signal).
    pub ipid: u16,
    /// Round-trip time in microseconds: propagation along the forward
    /// path (doubled for the return) plus any queuing delay on
    /// congested links — the signal time-series latency probing (TSLP)
    /// consumes.
    pub rtt_us: u32,
}

impl RespKind {
    /// True for the message types whose source address bdrmap trusts to
    /// identify an inbound interface (§5.4: only time-exceeded).
    pub fn is_time_exceeded(self) -> bool {
        matches!(self, RespKind::TimeExceeded)
    }
}
