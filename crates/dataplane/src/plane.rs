//! The forwarding and ICMP-generation engine.

use crate::faults::FaultPlan;
use crate::packet::{Probe, ProbeKind, RespKind, Response, UnreachReason};
use crate::runtime::Runtime;
use crate::spt::{fnv, InternalGraph, SptCache};
use bdrmap_topo::{ExportStrategy, IfaceKind, Internet, LinkKind, ResponsePolicy, SrcSelect};
use bdrmap_types::{Addr, Asn, IfaceId, LinkId, OrgId, RouterId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Hop budget: drop anything still in flight after this many routers.
const MAX_HOPS: usize = 128;

/// Per-hop processing/serialisation delay (µs).
const PER_HOP_US: u32 = 50;
/// Propagation delay per link-metric unit (µs); the metric is ten times
/// the inter-PoP geographic distance in degrees, so one degree of
/// great-circle distance costs ~0.5 ms one-way — the right order for
/// fibre.
const US_PER_METRIC: u32 = 50;

/// A diurnal congestion profile on one link (the phenomenon the
/// CAIDA/MIT congestion project probes for, §2 of the paper).
#[derive(Clone, Copy, Debug)]
pub struct CongestionProfile {
    /// Peak queuing delay at the busiest point of the cycle (µs).
    pub peak_us: u32,
    /// Cycle length in milliseconds (a simulated "day").
    pub period_ms: u64,
}

impl CongestionProfile {
    /// Queuing delay at an instant: a half-rectified sinusoid — idle
    /// half the cycle, building to `peak_us` at the busy hour.
    pub fn delay_at(&self, time_ms: u64) -> u32 {
        let phase = (time_ms % self.period_ms) as f64 / self.period_ms as f64;
        let s = (std::f64::consts::TAU * phase).sin();
        if s <= 0.0 {
            0
        } else {
            (self.peak_us as f64 * s * s) as u32
        }
    }
}

/// One way out of an organisation toward a neighbor AS.
#[derive(Clone, Copy, Debug)]
struct EgressLink {
    /// The border router on our side.
    near: RouterId,
    /// Our interface on the link (source of RFC1812 responses).
    near_iface: IfaceId,
    /// The first router on the neighbor side.
    far: RouterId,
    /// The neighbor-side interface the packet arrives on.
    far_iface: IfaceId,
    /// Position in the deterministic ordering of this neighbor's
    /// sessions, consumed by [`ExportStrategy`].
    ordinal: u32,
    /// Longitude of the near PoP (Regional strategy).
    longitude_milli: i32,
    /// Underlying link.
    link: LinkId,
}

/// Cached egress link sets keyed by (organisation, neighbor AS).
type EgressCache = RwLock<HashMap<(OrgId, Asn), Arc<Vec<EgressLink>>>>;

/// Result of a single routing decision at a router.
enum Step {
    /// Hand the packet to `next`, arriving on `in_iface`; it left through
    /// `out_iface` on the current router.
    Forward {
        next: RouterId,
        in_iface: IfaceId,
        out_iface: IfaceId,
    },
    /// The destination does not exist beyond this router.
    Unreachable,
    /// No route at all; the packet is silently dropped.
    NoRoute,
}

/// The data-plane simulator. Cheap to share: all caches are interior.
///
/// # Examples
///
/// ```
/// use bdrmap_dataplane::{DataPlane, Probe, ProbeKind, RespKind};
/// use bdrmap_topo::{generate, TopoConfig};
///
/// let dp = DataPlane::new(generate(&TopoConfig::tiny(1)));
/// let vp = dp.internet().vps[0].addr;
/// let dst = dp.internet().origins.iter().next().unwrap().prefix.nth(1);
/// // A TTL-1 probe expires at the first hop.
/// let resp = dp
///     .probe(&Probe { src: vp, dst, ttl: 1, flow: 0, kind: ProbeKind::IcmpEcho, time_ms: 0 })
///     .unwrap();
/// assert_eq!(resp.kind, RespKind::TimeExceeded);
/// ```
pub struct DataPlane {
    net: Internet,
    oracle: bdrmap_bgp::RoutingOracle,
    spt: SptCache,
    runtime: Runtime,
    vp_by_addr: HashMap<Addr, RouterId>,
    /// Egress link sets keyed by (org of current AS, neighbor AS).
    egress_cache: EgressCache,
    /// Org membership for quick checks.
    org_of_as: Vec<OrgId>,
    /// Members of each organisation (usually one; the VP org may have
    /// siblings).
    org_members: HashMap<OrgId, Vec<Asn>>,
    /// Injected congestion per link.
    congestion: RwLock<HashMap<LinkId, CongestionProfile>>,
    /// Injected fault plan (loss, storms, flaps, reroutes).
    faults: RwLock<Arc<FaultPlan>>,
    /// Fast-path flag: false whenever the plan is a no-op, so unfaulted
    /// probes never take the `faults` lock.
    faults_active: AtomicBool,
}

impl DataPlane {
    /// Build the data plane over a generated Internet.
    pub fn new(net: Internet) -> DataPlane {
        let oracle = bdrmap_bgp::RoutingOracle::new(net.graph.clone(), net.origins.clone());
        let spt = SptCache::new(InternalGraph::build(&net));
        let vp_by_addr = net.vps.iter().map(|v| (v.addr, v.attach)).collect();
        let org_of_as: Vec<OrgId> = (0..=net.graph.num_ases() as u32)
            .map(|a| {
                if a == 0 {
                    OrgId(u32::MAX)
                } else {
                    net.graph.org(Asn(a))
                }
            })
            .collect();
        let mut org_members: HashMap<OrgId, Vec<Asn>> = HashMap::new();
        for a in net.graph.ases() {
            org_members.entry(net.graph.org(a)).or_default().push(a);
        }
        DataPlane {
            net,
            oracle,
            spt,
            runtime: Runtime::new(),
            vp_by_addr,
            egress_cache: RwLock::new(HashMap::new()),
            org_of_as,
            org_members,
            congestion: RwLock::new(HashMap::new()),
            faults: RwLock::new(Arc::new(FaultPlan::none())),
            faults_active: AtomicBool::new(false),
        }
    }

    /// Install a fault plan. A no-op plan (all rates zero) disables the
    /// fault layer entirely, restoring bit-for-bit unfaulted behaviour.
    pub fn set_faults(&self, plan: FaultPlan) {
        self.faults_active.store(!plan.is_noop(), Ordering::Release);
        *self.faults.write() = Arc::new(plan);
    }

    /// Remove any injected faults.
    pub fn clear_faults(&self) {
        self.set_faults(FaultPlan::none());
    }

    /// The currently installed fault plan (inert by default).
    pub fn fault_plan(&self) -> Arc<FaultPlan> {
        Arc::clone(&self.faults.read())
    }

    /// The plan, but only when it can actually change an outcome.
    fn active_faults(&self) -> Option<Arc<FaultPlan>> {
        if !self.faults_active.load(Ordering::Acquire) {
            return None;
        }
        Some(Arc::clone(&self.faults.read()))
    }

    /// Snapshot the mutable router state (IPID counters, rate-limit
    /// tallies) so a checkpointed probing run can be resumed without
    /// diverging from an uninterrupted one.
    pub fn runtime_snapshot(&self) -> crate::runtime::RuntimeSnapshot {
        self.runtime.snapshot()
    }

    /// Restore router state captured by
    /// [`runtime_snapshot`](Self::runtime_snapshot).
    pub fn restore_runtime(&self, snap: &crate::runtime::RuntimeSnapshot) {
        self.runtime.restore(snap);
    }

    /// Inject a diurnal congestion profile on a link (evaluation-side
    /// ground truth for the congestion-detection application).
    pub fn congest(&self, link: LinkId, profile: CongestionProfile) {
        self.congestion.write().insert(link, profile);
    }

    /// Remove all injected congestion.
    pub fn clear_congestion(&self) {
        self.congestion.write().clear();
    }

    fn queue_delay(&self, link: LinkId, time_ms: u64) -> u32 {
        self.congestion
            .read()
            .get(&link)
            .map_or(0, |c| c.delay_at(time_ms))
    }

    /// The ground truth (for evaluation only — the probing and inference
    /// layers must not look at it).
    pub fn internet(&self) -> &Internet {
        &self.net
    }

    /// The routing oracle (shared with collector-view assembly).
    pub fn oracle(&self) -> &bdrmap_bgp::RoutingOracle {
        &self.oracle
    }

    fn org(&self, a: Asn) -> OrgId {
        self.org_of_as[a.0 as usize]
    }

    fn router_org(&self, r: RouterId) -> OrgId {
        self.org(self.net.routers[r.index()].owner)
    }

    /// Ground-truth location of an address: the router it is on, or the
    /// router its covering subnet/prefix is homed at.
    fn target_router(&self, dst: Addr) -> Option<RouterId> {
        if let Some(r) = self.net.router_of_addr(dst) {
            return Some(r);
        }
        self.net.dest_home.lookup(dst).map(|(_, &r)| r)
    }

    // ------------------------------------------------------------ egress

    /// All ways out of `org` into neighbor AS `n`, ordinal-ordered.
    fn egress_links(&self, org: OrgId, n: Asn) -> Arc<Vec<EgressLink>> {
        if let Some(v) = self.egress_cache.read().get(&(org, n)) {
            return Arc::clone(v);
        }
        let mut out = Vec::new();
        for l in &self.net.links {
            match l.kind {
                LinkKind::Interdomain { .. } => {
                    let i0 = &self.net.ifaces[l.ifaces[0].index()];
                    let i1 = &self.net.ifaces[l.ifaces[1].index()];
                    let o0 = self.net.routers[i0.router.index()].owner;
                    let o1 = self.net.routers[i1.router.index()].owner;
                    let (near, far) = if self.org(o0) == org && o1 == n {
                        (i0, i1)
                    } else if self.org(o1) == org && o0 == n {
                        (i1, i0)
                    } else {
                        continue;
                    };
                    let pop = self.net.routers[near.router.index()].pop;
                    out.push(EgressLink {
                        near: near.router,
                        near_iface: near.id,
                        far: far.router,
                        far_iface: far.id,
                        ordinal: 0, // assigned below
                        longitude_milli: (self.net.pops[pop.index()].longitude * 1000.0) as i32,
                        link: l.id,
                    });
                }
                LinkKind::IxpLan { .. } => {
                    // Crossing a shared LAN: any of our ports to any of the
                    // neighbor's ports (route-server peering).
                    let ours: Vec<&bdrmap_topo::Iface> = l
                        .ifaces
                        .iter()
                        .map(|i| &self.net.ifaces[i.index()])
                        .filter(|i| self.router_org(i.router) == org)
                        .collect();
                    let theirs: Vec<&bdrmap_topo::Iface> = l
                        .ifaces
                        .iter()
                        .map(|i| &self.net.ifaces[i.index()])
                        .filter(|i| self.net.routers[i.router.index()].owner == n)
                        .collect();
                    for o in &ours {
                        for t in &theirs {
                            let pop = self.net.routers[o.router.index()].pop;
                            out.push(EgressLink {
                                near: o.router,
                                near_iface: o.id,
                                far: t.router,
                                far_iface: t.id,
                                ordinal: 0,
                                longitude_milli: (self.net.pops[pop.index()].longitude * 1000.0)
                                    as i32,
                                link: l.id,
                            });
                        }
                    }
                }
                LinkKind::Internal => {}
            }
        }
        // Deterministic ordinal assignment: sort by link id.
        out.sort_by_key(|e| (e.link, e.near_iface));
        for (i, e) in out.iter_mut().enumerate() {
            e.ordinal = i as u32;
        }
        let arc = Arc::new(out);
        self.egress_cache.write().insert((org, n), Arc::clone(&arc));
        arc
    }

    /// Does the neighbor's export strategy place `prefix` on session
    /// `ordinal` (out of `total`)?
    fn strategy_allows(
        &self,
        strategy: ExportStrategy,
        prefix: bdrmap_types::Prefix,
        e: &EgressLink,
        total: u32,
        median_longitude: i32,
    ) -> bool {
        if total <= 1 {
            return true;
        }
        let pbits = u32::from(prefix.network());
        match strategy {
            ExportStrategy::Everywhere => true,
            ExportStrategy::Subset { percent } => {
                // Guarantee at least one session: the anchor session is
                // always eligible.
                let anchor = fnv(&[pbits, prefix.len() as u32]) % total as u64;
                e.ordinal as u64 == anchor
                    || fnv(&[pbits, prefix.len() as u32, e.ordinal]) % 100 < percent as u64
            }
            ExportStrategy::Anchored => {
                // Consecutive prefixes rotate across sessions, so every
                // interconnection carries some prefix once the CDN
                // announces at least `total` prefixes — which is what
                // lets a single VP discover all of Akamai's links in
                // Figure 15.
                (pbits >> 8) % total == e.ordinal
            }
            ExportStrategy::Regional => {
                let west = fnv(&[pbits, prefix.len() as u32]).is_multiple_of(2);
                if west {
                    e.longitude_milli <= median_longitude
                } else {
                    e.longitude_milli > median_longitude
                }
            }
        }
    }

    /// Pick the hot-potato egress toward destination `dst` from router
    /// `cur`, over the union of BGP-multipath-tied next-hop ASes of
    /// every AS in the router's organisation (iBGP across siblings).
    fn pick_egress(&self, cur: RouterId, dst: Addr, flow: u16) -> Option<EgressLink> {
        let owner = self.net.routers[cur.index()].owner;
        let org = self.org(owner);
        let origination = self.oracle.origins().lookup(dst)?;
        let tree = self.oracle.route_tree(origination);
        // The org's members share routes; collect the union of their
        // externally-learned candidates. Same-org "next hops" (a sibling
        // taking transit from its parent AS) are internal, not egress.
        let members = &self.org_members[&org];
        let mut candidates: Vec<Asn> = Vec::new();
        let mut best: Option<bdrmap_bgp::BestRoute> = None;
        for &m in members {
            let Some(r) = tree.route(m) else { continue };
            if best.is_none() {
                best = Some(r);
            }
            if r.class == bdrmap_bgp::RouteClass::Origin {
                continue;
            }
            for n in self.oracle.tied_next_hops(m, origination) {
                if self.org(n) != org && !candidates.contains(&n) {
                    candidates.push(n);
                }
            }
        }
        let best = best?;
        if best.class == bdrmap_bgp::RouteClass::Origin && candidates.is_empty() {
            // The org announces the covering prefix but the address
            // physically lives elsewhere (PA space, neighbor link
            // subnets): fall back to a direct link toward the AS that
            // has it.
            let t = self.target_router(dst)?;
            candidates = vec![self.net.routers[t.index()].owner];
        }
        if candidates.is_empty() {
            if let Some(nh) = best.next_hop {
                if self.org(nh) != org {
                    candidates.push(nh);
                }
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let mut best_choice: Option<(u64, EgressLink)> = None;
        for n in candidates {
            let links = self.egress_links(org, n);
            if links.is_empty() {
                continue;
            }
            let total = links.len() as u32;
            let median = {
                let mut lons: Vec<i32> = links.iter().map(|e| e.longitude_milli).collect();
                lons.sort_unstable();
                lons[lons.len() / 2]
            };
            let strategy = self.net.as_info(n).export;
            let spt_root_cache: Vec<(u32, &EgressLink)> = links
                .iter()
                .filter(|e| self.strategy_allows(strategy, origination.prefix, e, total, median))
                .map(|e| {
                    let t = self.spt.tree(e.near);
                    (t.dist(cur), e)
                })
                .collect();
            for (d, e) in spt_root_cache {
                if d == u32::MAX {
                    continue;
                }
                // Hot potato first, then a deterministic flow-stable
                // shuffle among equal distances.
                let key = ((d as u64) << 32) | (fnv(&[e.link.0, flow as u32, n.0]) & 0xffff_ffff);
                if best_choice.as_ref().is_none_or(|(k, _)| key < *k) {
                    best_choice = Some((key, *e));
                }
            }
        }
        best_choice.map(|(_, e)| e)
    }

    // ----------------------------------------------------------- routing

    /// One routing decision: where does `cur` send a packet for `dst`?
    fn route_step(&self, cur: RouterId, dst: Addr, flow: u16) -> Step {
        let cur_org = self.router_org(cur);
        // (a) Directly attached subnet?
        for &ifc_id in &self.net.routers[cur.index()].ifaces {
            let ifc = &self.net.ifaces[ifc_id.index()];
            let Some(link_id) = ifc.link else { continue };
            let link = &self.net.links[link_id.index()];
            if !link.subnet.contains(dst) {
                continue;
            }
            // Deliver to the attached neighbor owning dst, if any.
            if let Some(peer) = link
                .ifaces
                .iter()
                .map(|i| &self.net.ifaces[i.index()])
                .find(|i| i.addr == dst && i.router != cur)
            {
                return Step::Forward {
                    next: peer.router,
                    in_iface: peer.id,
                    out_iface: ifc_id,
                };
            }
            if self.net.router_of_addr(dst) == Some(cur) {
                // Shouldn't happen (local delivery is handled earlier),
                // but be safe.
                return Step::Unreachable;
            }
            // An unused address on a directly attached subnet: nobody
            // home. Only conclude this for point-to-point subnets; a
            // larger covering aggregate can still route elsewhere.
            if link.subnet.len() >= 24 {
                return Step::Unreachable;
            }
        }
        // (b) Internal target?
        if let Some(target) = self.target_router(dst) {
            if self.router_org(target) == cur_org {
                if target == cur {
                    return Step::Unreachable; // homed here, host absent
                }
                let t = self.spt.tree(target);
                if let Some(next) = t.next_hop(cur, flow) {
                    let (out_iface, in_iface) = match self.internal_ifaces(cur, next) {
                        Some(x) => x,
                        None => return Step::NoRoute,
                    };
                    return Step::Forward {
                        next,
                        in_iface,
                        out_iface,
                    };
                }
                return Step::NoRoute;
            }
        }
        // (c) Interdomain forwarding.
        let Some(e) = self.pick_egress(cur, dst, flow) else {
            return Step::NoRoute;
        };
        if e.near == cur {
            return Step::Forward {
                next: e.far,
                in_iface: e.far_iface,
                out_iface: e.near_iface,
            };
        }
        let t = self.spt.tree(e.near);
        if let Some(next) = t.next_hop(cur, flow) {
            if let Some((out_iface, in_iface)) = self.internal_ifaces(cur, next) {
                return Step::Forward {
                    next,
                    in_iface,
                    out_iface,
                };
            }
        }
        Step::NoRoute
    }

    /// The pair of interfaces joining two internally adjacent routers,
    /// flow-independent and deterministic (first matching internal link).
    fn internal_ifaces(&self, a: RouterId, b: RouterId) -> Option<(IfaceId, IfaceId)> {
        for &ifc_id in &self.net.routers[a.index()].ifaces {
            let ifc = &self.net.ifaces[ifc_id.index()];
            let Some(link_id) = ifc.link else { continue };
            let link = &self.net.links[link_id.index()];
            if link.kind != LinkKind::Internal {
                continue;
            }
            if let Some(other) = link
                .ifaces
                .iter()
                .map(|i| &self.net.ifaces[i.index()])
                .find(|i| i.router == b)
            {
                return Some((ifc_id, other.id));
            }
        }
        None
    }

    // --------------------------------------------------------- responses

    /// The loopback (first) interface address of a router.
    fn loopback(&self, r: RouterId) -> Option<Addr> {
        self.net.routers[r.index()]
            .ifaces
            .iter()
            .map(|i| &self.net.ifaces[i.index()])
            .find(|i| i.kind == IfaceKind::Loopback)
            .map(|i| i.addr)
    }

    /// Any source address for a router (loopback, else first interface).
    fn any_addr(&self, r: RouterId) -> Option<Addr> {
        self.loopback(r).or_else(|| {
            self.net.routers[r.index()]
                .ifaces
                .first()
                .map(|i| self.net.ifaces[i.index()].addr)
        })
    }

    /// Can `r`'s network route a response back to the prober?
    fn can_respond_to(&self, r: RouterId, prober: Addr) -> bool {
        let owner = self.net.routers[r.index()].owner;
        if let Some(t) = self.target_router(prober) {
            if self.router_org(t) == self.router_org(r) {
                return true;
            }
        }
        self.oracle.best_route(owner, prober).is_some()
    }

    /// Choose the source address of a time-exceeded response per the
    /// router's [`SrcSelect`] behaviour.
    fn te_source(&self, r: RouterId, inbound: Option<IfaceId>, p: &Probe) -> Option<Addr> {
        let fallback = || {
            inbound
                .map(|i| self.net.ifaces[i.index()].addr)
                .or_else(|| self.any_addr(r))
        };
        match self.net.routers[r.index()].src_select {
            SrcSelect::Inbound => fallback(),
            SrcSelect::TowardProber => match self.route_step(r, p.src, p.flow) {
                Step::Forward { out_iface, .. } => Some(self.net.ifaces[out_iface.index()].addr),
                _ => fallback(),
            },
            SrcSelect::TowardDest => match self.route_step(r, p.dst, p.flow) {
                Step::Forward { out_iface, .. } => Some(self.net.ifaces[out_iface.index()].addr),
                _ => fallback(),
            },
        }
    }

    /// Build a TTL-expired response at router `r`, or `None` if policy or
    /// reachability suppresses it.
    fn ttl_expired(
        &self,
        rt: &Runtime,
        r: RouterId,
        inbound: Option<IfaceId>,
        p: &Probe,
        fwd_us: u32,
    ) -> Option<Response> {
        let policy = self.net.routers[r.index()].policy;
        match policy {
            ResponsePolicy::Silent | ResponsePolicy::EchoOtherIcmp => return None,
            ResponsePolicy::RateLimited { period } => {
                if !rt.rate_limit_allows(r, period) {
                    return None;
                }
            }
            ResponsePolicy::Normal | ResponsePolicy::Firewall => {}
        }
        if !self.can_respond_to(r, p.src) {
            return None;
        }
        let src = self.te_source(r, inbound, p)?;
        let ipid = rt.ipid(&self.net, r, src, p.time_ms);
        Some(Response {
            src,
            kind: RespKind::TimeExceeded,
            ipid,
            rtt_us: 2 * fwd_us + PER_HOP_US,
        })
    }

    /// Build the response for a probe delivered to one of `r`'s own
    /// addresses.
    fn delivered(&self, rt: &Runtime, r: RouterId, p: &Probe, fwd_us: u32) -> Option<Response> {
        let rtt_us = 2 * fwd_us + PER_HOP_US;
        let router = &self.net.routers[r.index()];
        if router.policy == ResponsePolicy::Silent {
            return None;
        }
        if !self.can_respond_to(r, p.src) {
            return None;
        }
        match p.kind {
            ProbeKind::IcmpEcho => {
                // Echo replies are sourced from the probed address — which
                // is why bdrmap refuses to locate interfaces with them
                // (§4 challenge 2).
                let ipid = rt.ipid(&self.net, r, p.dst, p.time_ms);
                Some(Response {
                    src: p.dst,
                    kind: RespKind::EchoReply,
                    ipid,
                    rtt_us,
                })
            }
            ProbeKind::Udp => match router.unreach_src {
                bdrmap_topo::UnreachSrc::Canonical => {
                    let src = self.any_addr(r)?;
                    let ipid = rt.ipid(&self.net, r, src, p.time_ms);
                    Some(Response {
                        src,
                        kind: RespKind::DestUnreach(UnreachReason::Port),
                        ipid,
                        rtt_us,
                    })
                }
                bdrmap_topo::UnreachSrc::Probed => {
                    let ipid = rt.ipid(&self.net, r, p.dst, p.time_ms);
                    Some(Response {
                        src: p.dst,
                        kind: RespKind::DestUnreach(UnreachReason::Port),
                        ipid,
                        rtt_us,
                    })
                }
                bdrmap_topo::UnreachSrc::None => None,
            },
            ProbeKind::TcpAck => {
                let ipid = rt.ipid(&self.net, r, p.dst, p.time_ms);
                Some(Response {
                    src: p.dst,
                    kind: RespKind::TcpRst,
                    ipid,
                    rtt_us,
                })
            }
        }
    }

    /// Response when the packet hit a dead end at `r` (host absent).
    fn unreachable(
        &self,
        rt: &Runtime,
        r: RouterId,
        inbound: Option<IfaceId>,
        p: &Probe,
        fwd_us: u32,
    ) -> Option<Response> {
        let policy = self.net.routers[r.index()].policy;
        if !policy.sends_ttl_expired() {
            return None;
        }
        if !self.can_respond_to(r, p.src) {
            return None;
        }
        let src = self.te_source(r, inbound, p)?;
        let ipid = rt.ipid(&self.net, r, src, p.time_ms);
        let reason = match p.kind {
            ProbeKind::Udp => UnreachReason::Port,
            _ => UnreachReason::Host,
        };
        Some(Response {
            src,
            kind: RespKind::DestUnreach(reason),
            ipid,
            rtt_us: 2 * fwd_us + PER_HOP_US,
        })
    }

    /// Response when a firewalling edge router discards a transiting
    /// probe.
    fn firewalled(&self, rt: &Runtime, r: RouterId, p: &Probe, fwd_us: u32) -> Option<Response> {
        match self.net.routers[r.index()].policy {
            ResponsePolicy::EchoOtherIcmp => {
                if !self.can_respond_to(r, p.src) {
                    return None;
                }
                // Responds from its own (announced) address space — the
                // heuristic-8.2 signal.
                let src = self.any_addr(r)?;
                let ipid = rt.ipid(&self.net, r, src, p.time_ms);
                Some(Response {
                    src,
                    kind: RespKind::DestUnreach(UnreachReason::AdminFiltered),
                    ipid,
                    rtt_us: 2 * fwd_us + PER_HOP_US,
                })
            }
            _ => None,
        }
    }

    // ------------------------------------------------------------- probe

    /// Send one probe and collect the response, if any.
    ///
    /// Returns `None` when the probe or its response is lost: dropped by
    /// a firewall, suppressed by policy or rate limiting, unroutable,
    /// the responder has no route back to the prober — or, when a
    /// [`FaultPlan`] is installed, lost to injected faults.
    pub fn probe(&self, p: &Probe) -> Option<Response> {
        self.probe_with(p, &self.runtime)
    }

    /// Send one probe against an explicit [`Runtime`] instead of the
    /// plane's shared one.
    ///
    /// The topology, routing, congestion, and fault state are all still
    /// the plane's; only the mutable counter state (IPID counters, rate
    /// limiting) comes from `rt`. A caller that gives each measurement
    /// its own fresh `Runtime` gets responses that are a pure function
    /// of the probe stream it sends — the isolation the parallel alias
    /// engine relies on for byte-identical results at any parallelism.
    pub fn probe_with(&self, p: &Probe, rt: &Runtime) -> Option<Response> {
        let faults = self.active_faults();
        let faults = faults.as_deref();
        let resp = self.probe_inner(rt, p, faults)?;
        // Return-path loss hits every response kind uniformly.
        if faults.is_some_and(|f| f.drops_response(p)) {
            return None;
        }
        Some(resp)
    }

    /// Forward a probe hop by hop and build the response at its end.
    fn probe_inner(&self, rt: &Runtime, p: &Probe, faults: Option<&FaultPlan>) -> Option<Response> {
        let mut cur = *self.vp_by_addr.get(&p.src)?;
        let mut inbound: Option<IfaceId> = None;
        let mut ttl = p.ttl;
        let mut fwd_us: u32 = 0;
        // Reroute epochs re-salt the per-flow hash mid-run, shifting
        // ECMP and hot-potato tie-breaks the way IGP events do. The
        // salt is zero in epoch 0 and whenever reroutes are disabled.
        let flow = match faults {
            Some(f) => p.flow ^ f.flow_salt(p.time_ms),
            None => p.flow,
        };
        for _ in 0..MAX_HOPS {
            // Local delivery beats everything.
            if self.net.router_of_addr(p.dst) == Some(cur) {
                return self.delivered(rt, cur, p, fwd_us);
            }
            // TTL check-and-decrement on arrival.
            ttl = ttl.saturating_sub(1);
            if ttl == 0 {
                // A storming router's control plane generates no error
                // ICMP during its burst window.
                if faults.is_some_and(|f| f.storm_suppresses(cur, p.time_ms)) {
                    return None;
                }
                return self.ttl_expired(rt, cur, inbound, p, fwd_us);
            }
            // Edge firewalls discard transit traffic.
            let policy = self.net.routers[cur.index()].policy;
            if policy.firewalls_transit() && inbound.is_some() {
                // The firewall applies at the edge of its network: only
                // once the packet tries to go *through* this router.
                if faults.is_some_and(|f| f.storm_suppresses(cur, p.time_ms)) {
                    return None;
                }
                return self.firewalled(rt, cur, p, fwd_us);
            }
            match self.route_step(cur, p.dst, flow) {
                Step::Forward {
                    next,
                    in_iface,
                    out_iface,
                } => {
                    // Accumulate propagation + any queuing on the link.
                    if let Some(link) = self.net.ifaces[out_iface.index()].link {
                        // Forward-path faults: flap down-windows and
                        // stochastic per-link loss.
                        if faults.is_some_and(|f| f.drops_probe(link, p)) {
                            return None;
                        }
                        let metric = self.net.links[link.index()].metric;
                        fwd_us = fwd_us
                            .saturating_add(metric.saturating_mul(US_PER_METRIC))
                            .saturating_add(PER_HOP_US)
                            .saturating_add(self.queue_delay(link, p.time_ms));
                    }
                    cur = next;
                    inbound = Some(in_iface);
                }
                Step::Unreachable => {
                    if faults.is_some_and(|f| f.storm_suppresses(cur, p.time_ms)) {
                        return None;
                    }
                    return self.unreachable(rt, cur, inbound, p, fwd_us);
                }
                Step::NoRoute => return None,
            }
        }
        debug_assert!(false, "forwarding loop for {}", p.dst);
        None
    }

    /// The attach router of a VP address (for tests and evaluation).
    pub fn vp_attach(&self, vp_addr: Addr) -> Option<RouterId> {
        self.vp_by_addr.get(&vp_addr).copied()
    }
}
