//! Intra-organisation shortest-path trees.
//!
//! Routers of one organisation (an AS plus its siblings) form an IGP
//! domain over the internal links. Forwarding toward an internal target —
//! a destination home router or a hot-potato egress border router — walks
//! the shortest-path tree rooted at that target. Trees are computed on
//! demand and cached; equal-cost next hops are kept so the data plane can
//! hash flows across them (ECMP).

use bdrmap_topo::{Internet, LinkKind};
use bdrmap_types::RouterId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-router internal adjacency: `(neighbor router, metric)`.
pub struct InternalGraph {
    adj: Vec<Vec<(RouterId, u32)>>,
    /// Organisation of each router's owner, for same-domain checks.
    org: Vec<u32>,
}

impl InternalGraph {
    /// Build the internal adjacency from the ground truth.
    pub fn build(net: &Internet) -> InternalGraph {
        let n = net.routers.len();
        let mut adj = vec![Vec::new(); n];
        for l in &net.links {
            if l.kind != LinkKind::Internal {
                continue;
            }
            let r0 = net.ifaces[l.ifaces[0].index()].router;
            let r1 = net.ifaces[l.ifaces[1].index()].router;
            adj[r0.index()].push((r1, l.metric));
            adj[r1.index()].push((r0, l.metric));
        }
        let org = net
            .routers
            .iter()
            .map(|r| net.graph.org(r.owner).0)
            .collect();
        InternalGraph { adj, org }
    }

    /// True if two routers are in the same IGP domain.
    pub fn same_domain(&self, a: RouterId, b: RouterId) -> bool {
        self.org[a.index()] == self.org[b.index()]
    }
}

/// A shortest-path tree rooted at a target router, restricted to the
/// target's IGP domain.
pub struct Spt {
    /// Distance from each router to the root (`u32::MAX` = unreachable or
    /// foreign domain).
    dist: Vec<u32>,
    /// Equal-cost next hops toward the root (empty at the root itself).
    next: Vec<Vec<RouterId>>,
}

impl Spt {
    /// Distance from `r` to the root.
    pub fn dist(&self, r: RouterId) -> u32 {
        self.dist[r.index()]
    }

    /// True if `r` can reach the root internally.
    pub fn reaches(&self, r: RouterId) -> bool {
        self.dist[r.index()] != u32::MAX
    }

    /// The next hop from `r` toward the root, choosing among equal-cost
    /// options by flow hash (Paris-stable).
    pub fn next_hop(&self, r: RouterId, flow: u16) -> Option<RouterId> {
        let opts = &self.next[r.index()];
        if opts.is_empty() {
            return None;
        }
        let h = fnv(&[r.0, flow as u32]);
        Some(opts[(h % opts.len() as u64) as usize])
    }
}

/// Cache of SPTs keyed by root router.
pub struct SptCache {
    graph: InternalGraph,
    cache: RwLock<HashMap<RouterId, Arc<Spt>>>,
}

/// Keep at most this many equal-cost next hops per router.
const MAX_ECMP: usize = 4;

impl SptCache {
    /// Create a cache over the internal graph.
    pub fn new(graph: InternalGraph) -> SptCache {
        SptCache {
            graph,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The internal graph.
    pub fn graph(&self) -> &InternalGraph {
        &self.graph
    }

    /// The SPT rooted at `root`.
    pub fn tree(&self, root: RouterId) -> Arc<Spt> {
        if let Some(t) = self.cache.read().get(&root) {
            return Arc::clone(t);
        }
        let t = Arc::new(self.compute(root));
        self.cache.write().insert(root, Arc::clone(&t));
        t
    }

    fn compute(&self, root: RouterId) -> Spt {
        let n = self.graph.adj.len();
        let mut dist = vec![u32::MAX; n];
        let mut next: Vec<Vec<RouterId>> = vec![Vec::new(); n];
        let domain = self.graph.org[root.index()];
        let mut heap = std::collections::BinaryHeap::new();
        dist[root.index()] = 0;
        heap.push(std::cmp::Reverse((0u32, root)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u.index()] {
                continue;
            }
            for &(v, w) in &self.graph.adj[u.index()] {
                if self.graph.org[v.index()] != domain {
                    continue;
                }
                let nd = d.saturating_add(w);
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    next[v.index()].clear();
                    next[v.index()].push(u);
                    heap.push(std::cmp::Reverse((nd, v)));
                } else if nd == dist[v.index()]
                    && !next[v.index()].contains(&u)
                    && next[v.index()].len() < MAX_ECMP
                {
                    next[v.index()].push(u);
                }
            }
        }
        // Deterministic ECMP order.
        for opts in &mut next {
            opts.sort_unstable();
        }
        Spt { dist, next }
    }
}

/// FNV-1a over a few words — the deterministic hash used for ECMP and
/// export-strategy decisions throughout the data plane.
pub fn fnv(words: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdrmap_topo::{generate, TopoConfig};

    #[test]
    fn spt_distances_are_symmetric_enough() {
        let net = generate(&TopoConfig::tiny(1));
        let cache = SptCache::new(InternalGraph::build(&net));
        // Pick two routers of the VP AS.
        let rs: Vec<RouterId> = net.as_info(net.vp_as).routers.clone();
        assert!(rs.len() >= 2);
        let (a, b) = (rs[0], rs[1]);
        let ta = cache.tree(a);
        let tb = cache.tree(b);
        assert_eq!(
            ta.dist(b),
            tb.dist(a),
            "undirected metric must be symmetric"
        );
        assert!(ta.reaches(b));
    }

    #[test]
    fn walk_reaches_root_without_loops() {
        let net = generate(&TopoConfig::tiny(2));
        let cache = SptCache::new(InternalGraph::build(&net));
        let rs = &net.as_info(net.vp_as).routers;
        let root = rs[0];
        let t = cache.tree(root);
        for &start in rs.iter().skip(1) {
            let mut cur = start;
            let mut hops = 0;
            while cur != root {
                cur = t.next_hop(cur, 7).expect("reachable");
                hops += 1;
                assert!(hops < 1000, "loop detected");
            }
        }
    }

    #[test]
    fn foreign_domain_is_unreachable() {
        let net = generate(&TopoConfig::tiny(3));
        let cache = SptCache::new(InternalGraph::build(&net));
        let vp_router = net.as_info(net.vp_as).routers[0];
        // Find a router in a different org.
        let other = net
            .routers
            .iter()
            .find(|r| !net.graph.same_org(r.owner, net.vp_as))
            .unwrap();
        let t = cache.tree(vp_router);
        assert!(!t.reaches(other.id));
        assert!(!cache.graph().same_domain(vp_router, other.id));
    }

    #[test]
    fn ecmp_next_hops_are_flow_stable() {
        let net = generate(&TopoConfig::tiny(4));
        let cache = SptCache::new(InternalGraph::build(&net));
        let rs = &net.as_info(net.vp_as).routers;
        let t = cache.tree(rs[0]);
        for &r in rs.iter().skip(1) {
            let a = t.next_hop(r, 42);
            let b = t.next_hop(r, 42);
            assert_eq!(a, b, "same flow must take the same path");
        }
    }

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(fnv(&[1, 2]), fnv(&[1, 2]));
        assert_ne!(fnv(&[1, 2]), fnv(&[2, 1]));
    }
}
