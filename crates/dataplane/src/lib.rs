//! Deterministic data-plane simulator.
//!
//! Given a ground-truth [`bdrmap_topo::Internet`], this crate answers a
//! single question: *if a probe packet left a vantage point, what
//! response (if any) would come back?* Everything bdrmap observes flows
//! through [`DataPlane::probe`].
//!
//! Faithfulness to the paper's traceroute idiosyncrasies (§4):
//!
//! * hop-by-hop forwarding with valley-free AS-level routing, hot-potato
//!   egress selection among BGP-multipath-tied next hops, and ECMP with
//!   Paris-stable per-flow hashing;
//! * interconnection-aware egress: the next-hop AS's
//!   [`bdrmap_topo::ExportStrategy`] decides which of several parallel
//!   interconnections may carry a given prefix (Figures 15/16);
//! * per-router response policies: firewalls that answer TTL-expired but
//!   drop transit, silent routers, routers that send only non-TTL-expired
//!   ICMP, and rate limiting;
//! * time-exceeded source-address selection: inbound interface, RFC 1812
//!   egress-toward-prober (third-party addresses), or virtual-router
//!   egress-toward-destination;
//! * IP-ID generation models (shared counter / per-interface / random /
//!   constant) advanced by a background velocity, which is what the
//!   Ally and MIDAR alias-resolution tests consume;
//! * Mercator behaviour: UDP probes answered from a canonical address,
//!   the probed address, or not at all;
//! * response loss when the responding AS has no route back to the
//!   prober.
//!
//! The simulator is deterministic: identical probe sequences (including
//! their `time_ms` stamps) produce identical responses. Fault injection
//! ([`FaultPlan`]) keeps that property — every fault draw is a pure
//! function of the plan's seed and the probe's identity and timestamp,
//! and an inert plan is bit-for-bit identical to no plan at all.

pub mod faults;
pub mod packet;
pub mod plane;
pub mod runtime;
pub mod spt;

#[cfg(test)]
mod tests;

pub use faults::{FaultPlan, FlapPlan, ReroutePlan, StormPlan};
pub use packet::{Probe, ProbeKind, RespKind, Response, UnreachReason};
pub use plane::{CongestionProfile, DataPlane};
pub use runtime::{Runtime, RuntimeSnapshot};
