//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! exposing the non-poisoning `lock()`/`read()`/`write()` API the
//! workspace uses. Poisoned guards are recovered (a panicking probe
//! worker must not wedge unrelated workers).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
