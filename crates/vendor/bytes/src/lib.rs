//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the surface the workspace's wire formats use:
//! big-endian `get_*`/`put_*`, framing (`split_to`, `advance`,
//! `freeze`), cheap shared slices of immutable buffers, and `Deref` to
//! `[u8]`. Semantics match `bytes` for that surface; the cheap-clone
//! machinery is a plain `Arc` around the backing vector.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte buffer (big-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copy out `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

/// Append-only writer of big-endian values.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wrap a static slice.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `n` bytes.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice out of range");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Growable byte buffer that reads from the front and appends at the
/// back.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `n` bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of range");
        let tail = self.data.split_off(n);
        let head = std::mem::replace(&mut self.data, tail);
        BytesMut { data: head }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.data.drain(..n);
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice out of range");
        dst.copy_from_slice(&self.data[..dst.len()]);
        self.data.drain(..dst.len());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        b.put_u64(0x08090a0b0c0d0e0f);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 0x0203);
        assert_eq!(r.get_u32(), 0x04050607);
        assert_eq!(r.get_u64(), 0x08090a0b0c0d0e0f);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_and_slice_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(&b.slice(1..3)[..], &[4, 5]);
        assert_eq!(&b.slice(..2)[..], &[3, 4]);
    }

    #[test]
    fn bytesmut_front_consumption() {
        let mut b = BytesMut::from(&[9u8, 8, 7, 6][..]);
        b.advance(1);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[8, 7]);
        assert_eq!(&b[..], &[6]);
    }
}
