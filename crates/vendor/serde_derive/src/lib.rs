//! No-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! This workspace never serialises through serde at runtime (artefact
//! persistence uses hand-rolled binary formats); the derives exist as
//! markers on public data types. The vendored shim keeps the build
//! working in offline environments by expanding to nothing.

use proc_macro::TokenStream;

/// Marker derive: expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Marker derive: expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
