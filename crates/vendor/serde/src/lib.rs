//! Offline stand-in for `serde`.
//!
//! The workspace tags its public data types `Serialize`/`Deserialize`
//! but performs all persistence through hand-rolled binary containers
//! (see `bdrmap-probe::store`), so the traits carry no methods here and
//! the derives expand to nothing. This keeps the dependency closure
//! fully vendored and the build reproducible offline.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
