//! Offline stand-in for the `proptest` crate.
//!
//! Random testing without shrinking: each `proptest!` test samples its
//! strategies from an RNG seeded deterministically from the test name,
//! so failures replay identically run after run. The `Strategy`
//! surface covers what this workspace's suites use — ranges, tuples,
//! `any`, `Just`, map/flat_map, `prop_oneof`, collections, `option::of`
//! and `sample::select`.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform produced values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Derive a dependent strategy from each produced value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the alternatives; at least one required.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8
    );
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9
    );
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// `any::<T>()` — the full uniform domain of `T`.
    pub fn any<T: Standard>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy behind [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy behind [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element`, sized within `size` where
    /// the element domain allows.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy behind [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Bounded retries: a narrow element domain may not hold n
            // distinct values.
            for _ in 0..n.saturating_mul(10).max(16) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy behind [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen::<bool>() {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select { options }
    }

    /// Strategy behind [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-suite knobs (only the case count is honoured).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; not a failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing-case error.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected-case marker.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drives the cases of one `proptest!` test.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Seed deterministically from the test's name so every run
        /// replays the same cases.
        pub fn new(_config: &ProptestConfig, name: &str) -> TestRunner {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expand each test fn in a `proptest!` block.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), runner.rng()),)+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("case {case} of {}: {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a proptest body; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!(
                    "assertion failed: ",
                    stringify!($left),
                    " == ",
                    stringify!($right)
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($left),
                " != ",
                stringify!($right)
            )));
        }
    }};
}

/// Filter the current case; rejected cases do not count as failures.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let cfg = ProptestConfig::default();
        let strat = (any::<u32>(), 0u8..=32).prop_map(|(a, b)| (a, b));
        let mut r1 = TestRunner::new(&cfg, "x");
        let mut r2 = TestRunner::new(&cfg, "x");
        for _ in 0..32 {
            assert_eq!(strat.sample(r1.rng()), strat.sample(r2.rng()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_collections_respect_bounds(
            v in prop::collection::vec(3u32..10, 2..5),
            s in prop::collection::btree_set(0u32..64, 1..4),
            o in prop::option::of(any::<bool>()),
            pick in prop::sample::select(vec![1u8, 2, 3]),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (3..10).contains(x)));
            prop_assert!(!s.is_empty() && s.len() < 4);
            prop_assert!(o.is_none() || o.is_some());
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn oneof_and_flat_map_compose(
            x in prop_oneof![Just(1u32), 5u32..8, (10u32..11).prop_map(|v| v)],
            pair in (1usize..4).prop_flat_map(|n| (Just(n), prop::collection::vec(any::<u16>(), n..n + 1))),
        ) {
            prop_assert!(x == 1 || (5..8).contains(&x) || x == 10);
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_rejects_without_failing(n in any::<u8>()) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
