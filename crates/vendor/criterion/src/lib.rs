//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark routine against a small wall-clock budget and
//! prints the mean time per iteration — a smoke harness, not a
//! statistics engine. CLI arguments (`--test`, filters) are accepted
//! and ignored, so `cargo bench -- --test` works unchanged.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration wall-clock budget for one `Bencher::iter` call.
const ITER_BUDGET: Duration = Duration::from_millis(50);

/// Measures one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly until the time budget is spent and
    /// record the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= ITER_BUDGET || iters >= 100_000 {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = if b.iters == 0 {
        0
    } else {
        b.elapsed.as_nanos() / b.iters as u128
    };
    println!("bench {name}: {mean_ns} ns/iter ({} iters)", b.iters);
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _c: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke harness is time-bounded
    /// rather than sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Register and immediately run one benchmark in the group.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group; ignores CLI arguments.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        Criterion::default().bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_accepts_string_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function(format!("case/{}", 1), |b| b.iter(|| 2 + 2));
        g.bench_function("plain", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
