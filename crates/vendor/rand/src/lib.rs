//! Offline stand-in for the `rand` crate.
//!
//! Provides `StdRng::seed_from_u64` plus the `Rng` surface the topology
//! generator uses (`gen`, `gen_bool`, `gen_range`). The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic, fast, and
//! identical on every platform, which is all the workspace requires
//! (topologies are defined by whatever stream the seed produces, not by
//! compatibility with upstream rand's ChaCha stream).

/// splitmix64 step — used for seeding and stateless keyed draws.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types producible from a uniform u64 draw (the `gen()` surface).
pub trait Standard: Sized {
    /// Map one uniform 64-bit draw to a uniform value of `Self`.
    fn from_u64(v: u64) -> Self;
}

impl Standard for u8 {
    fn from_u64(v: u64) -> u8 {
        v as u8
    }
}
impl Standard for u16 {
    fn from_u64(v: u64) -> u16 {
        v as u16
    }
}
impl Standard for u32 {
    fn from_u64(v: u64) -> u32 {
        v as u32
    }
}
impl Standard for u64 {
    fn from_u64(v: u64) -> u64 {
        v
    }
}
impl Standard for usize {
    fn from_u64(v: u64) -> usize {
        v as usize
    }
}
impl Standard for bool {
    fn from_u64(v: u64) -> bool {
        v & 1 == 1
    }
}
impl Standard for f64 {
    fn from_u64(v: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer/float types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_closed(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_closed(rng: &mut dyn RngCore, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
            fn sample_closed(rng: &mut dyn RngCore, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::from_u64(rng.next_u64()) * (hi - lo)
    }
    fn sample_closed(rng: &mut dyn RngCore, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::from_u64(rng.next_u64()) * (hi - lo)
    }
}

/// Ranges accepted by `gen_range`.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Core entropy source.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling surface.
pub trait Rng: RngCore {
    /// A uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::from_u64(self.next_u64()) < p
    }

    /// A uniform value from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = r.gen_range(4u8..=10);
            assert!((4..=10).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).map(|_| r.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| r.gen_bool(1.0)).all(|b| b));
    }
}
