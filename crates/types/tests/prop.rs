//! Property-based tests for the core types: the prefix algebra, the
//! longest-prefix-match trie against a naive oracle, and the block
//! arithmetic used for target-list generation.

use bdrmap_types::{addr, AddressBlock, Prefix, PrefixTrie};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(addr(bits), len))
}

proptest! {
    #[test]
    fn prefix_display_parse_round_trip(p in arb_prefix()) {
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn prefix_contains_network_and_broadcast(p in arb_prefix()) {
        prop_assert!(p.contains(p.network()));
        prop_assert!(p.contains(p.broadcast()));
    }

    #[test]
    fn split_children_partition_parent(p in arb_prefix()) {
        prop_assume!(p.len() < 32);
        let (l, r) = p.split();
        prop_assert!(p.covers(l) && p.covers(r));
        prop_assert!(!l.covers(r) && !r.covers(l));
        let expected = if p.len() == 0 { 1u64 << 32 } else { p.size() as u64 };
        prop_assert_eq!(l.size() as u64 + r.size() as u64, expected);
        // Network of left child equals parent's network.
        prop_assert_eq!(l.network(), p.network());
    }

    #[test]
    fn covers_is_consistent_with_contains(p in arb_prefix(), q in arb_prefix()) {
        if p.covers(q) {
            prop_assert!(p.contains(q.network()));
            prop_assert!(p.contains(q.broadcast()));
        }
    }

    #[test]
    fn ptp_mate_is_involutive(bits in any::<u32>(), len in prop::sample::select(vec![30u8, 31u8])) {
        let a = addr(bits);
        if let Some(mate) = Prefix::ptp_mate(a, len) {
            prop_assert_eq!(Prefix::ptp_mate(mate, len), Some(a));
            // Mate shares the same subnet.
            prop_assert_eq!(Prefix::new(a, len), Prefix::new(mate, len));
        }
    }

    #[test]
    fn trie_lookup_matches_naive_oracle(
        entries in prop::collection::vec((arb_prefix(), any::<u32>()), 1..40),
        probes in prop::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut trie = PrefixTrie::new();
        // Last insert wins, as in the trie.
        let mut map: Vec<(Prefix, u32)> = Vec::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            map.retain(|(q, _)| q != p);
            map.push((*p, *v));
        }
        for bits in probes {
            let a = addr(bits);
            let expect = map
                .iter()
                .filter(|(p, _)| p.contains(a))
                .max_by_key(|(p, _)| p.len())
                .map(|&(p, v)| (p.len(), v));
            let got = trie.lookup(a).map(|(p, &v)| (p.len(), v));
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn trie_remove_restores_shorter_match(
        outer in arb_prefix(),
        probe_bits in any::<u32>(),
    ) {
        prop_assume!(outer.len() < 32);
        let inner = Prefix::new(outer.network(), outer.len() + 1);
        let mut trie = PrefixTrie::new();
        trie.insert(outer, 1u8);
        trie.insert(inner, 2u8);
        let a = addr(probe_bits);
        if inner.contains(a) {
            prop_assert_eq!(trie.lookup(a).map(|(_, &v)| v), Some(2));
            trie.remove(inner);
            prop_assert_eq!(trie.lookup(a).map(|(_, &v)| v), Some(1));
        }
    }

    #[test]
    fn block_subtract_partitions(
        base in arb_prefix(),
        holes in prop::collection::vec(arb_prefix(), 0..8),
    ) {
        prop_assume!(base.len() >= 8); // keep sizes sane
        let block = AddressBlock::from_prefix(base);
        let hole_blocks: Vec<AddressBlock> =
            holes.iter().map(|h| AddressBlock::from_prefix(*h)).collect();
        let rest = block.subtract(&hole_blocks);
        // Pieces are within the base, ascending, disjoint.
        let mut prev_end: Option<u32> = None;
        let mut total: u64 = 0;
        for piece in &rest {
            prop_assert!(block.contains(piece.start()));
            prop_assert!(block.contains(piece.end()));
            if let Some(pe) = prev_end {
                prop_assert!(u32::from(piece.start()) > pe);
            }
            prev_end = Some(u32::from(piece.end()));
            total += piece.size();
            // No piece intersects a hole.
            for h in &hole_blocks {
                prop_assert!(
                    u32::from(piece.end()) < u32::from(h.start())
                        || u32::from(piece.start()) > u32::from(h.end())
                );
            }
        }
        // Conservation: remaining + covered-by-holes = base size.
        let mut covered: u64 = 0;
        let (bs, be) = (u32::from(block.start()) as u64, u32::from(block.end()) as u64);
        let mut marks: Vec<(u64, u64)> = hole_blocks
            .iter()
            .filter_map(|h| {
                let s = (u32::from(h.start()) as u64).max(bs);
                let e = (u32::from(h.end()) as u64).min(be);
                (s <= e).then_some((s, e))
            })
            .collect();
        marks.sort_unstable();
        let mut cursor = bs;
        for (s, e) in marks {
            let s = s.max(cursor);
            if e >= s {
                covered += e - s + 1;
                cursor = e + 1;
            }
        }
        prop_assert_eq!(total + covered, block.size());
    }

    #[test]
    fn block_to_prefixes_is_exact(base in arb_prefix(), cut in any::<u32>()) {
        prop_assume!(base.len() >= 12 && base.len() < 32);
        // A ragged sub-block of the prefix.
        let start = base.nth(cut % (base.size() / 2));
        let block = AddressBlock::new(start, base.broadcast());
        let ps = block.to_prefixes();
        let total: u64 = ps.iter().map(|p| p.size() as u64).sum();
        prop_assert_eq!(total, block.size());
        prop_assert_eq!(ps.first().map(|p| p.network()), Some(block.start()));
        prop_assert_eq!(ps.last().map(|p| p.broadcast()), Some(block.end()));
        for w in ps.windows(2) {
            prop_assert!(u32::from(w[0].broadcast()) < u32::from(w[1].network()));
        }
    }
}
