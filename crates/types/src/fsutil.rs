//! Filesystem helpers shared across the workspace.
//!
//! The one pattern every artifact writer needs: atomic replacement.
//! Checkpoints, border-map snapshots, bench JSON, and CSV artifacts are
//! all files another process (or a resumed run) may read at any moment,
//! so they must never be observable half-written.

use std::ffi::OsString;
use std::io::{self, Write};
use std::path::Path;

/// Write `data` to `path` atomically *and durably*: the bytes land in a
/// sibling temporary file first, are fsynced, renamed into place, and
/// the parent directory is fsynced. A crash mid-write leaves either the
/// old file or the new one, never a torn mix — and once this returns,
/// a power loss cannot roll the rename back out of the directory.
pub fn write_atomic(path: &Path, data: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        // fsync the temp file *before* the rename: renaming first could
        // publish a name whose bytes are still only in the page cache.
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// fsync the directory containing `path`, so the rename that just put
/// `path` in place survives power loss. Directory fds are a Unix
/// notion; elsewhere this is a no-op.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// The temporary sibling used by [`write_atomic`]: the same path with
/// `.tmp` appended, which stays in the same directory (and therefore on
/// the same filesystem, keeping the rename atomic).
pub(crate) fn tmp_sibling(path: &Path) -> OsString {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    tmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join("bdrmap-fsutil-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let path = tmp_dir().join("a.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn leaves_no_temporary_behind() {
        let path = tmp_dir().join("b.bin");
        write_atomic(&path, b"data").unwrap();
        assert!(!Path::new(&tmp_sibling(&path)).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dotted_names_do_not_collide() {
        // `with_extension`-style tmp naming would map x.a and x.b to the
        // same temporary; appending must keep them distinct.
        assert_ne!(
            tmp_sibling(Path::new("/d/x.a")),
            tmp_sibling(Path::new("/d/x.b"))
        );
    }
}
