//! IPv4 prefixes.

use crate::{addr, addr_bits, Addr};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix: a network address and a mask length.
///
/// The network address is always stored in canonical form (host bits
/// zeroed), so two `Prefix` values compare equal iff they denote the same
/// set of addresses.
///
/// # Examples
///
/// ```
/// use bdrmap_types::Prefix;
///
/// let p: Prefix = "192.0.2.64/26".parse().unwrap();
/// assert!(p.contains("192.0.2.100".parse().unwrap()));
/// assert_eq!(p.size(), 64);
///
/// // The prefixscan building block: /31 and /30 subnet mates.
/// let mate = Prefix::ptp_mate("192.0.2.4".parse().unwrap(), 31).unwrap();
/// assert_eq!(mate, "192.0.2.5".parse::<std::net::Ipv4Addr>().unwrap());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// The default route, `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { bits: 0, len: 0 };

    /// Build a prefix from a network address and length, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(network: Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            bits: addr_bits(network) & Self::mask_for(len),
            len,
        }
    }

    /// Build a host prefix (`/32`) for a single address.
    #[inline]
    pub fn host(a: Addr) -> Prefix {
        Prefix {
            bits: addr_bits(a),
            len: 32,
        }
    }

    /// The network mask for a given length as a host-order `u32`.
    #[inline]
    fn mask_for(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The first address covered by this prefix.
    #[inline]
    pub fn network(self) -> Addr {
        addr(self.bits)
    }

    /// The last address covered by this prefix.
    #[inline]
    pub fn broadcast(self) -> Addr {
        addr(self.bits | !Self::mask_for(self.len))
    }

    /// Mask length.
    // `len` here is CIDR terminology, not a container size; a prefix is
    // never "empty".
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Number of addresses covered (saturating at `u32::MAX` for `/0`).
    #[inline]
    pub fn size(self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len)
        }
    }

    /// True if `a` falls inside this prefix.
    #[inline]
    pub fn contains(self, a: Addr) -> bool {
        (addr_bits(a) & Self::mask_for(self.len)) == self.bits
    }

    /// True if `other` is fully covered by (is a subnet of, or equal to)
    /// this prefix.
    #[inline]
    pub fn covers(self, other: Prefix) -> bool {
        other.len >= self.len && (other.bits & Self::mask_for(self.len)) == self.bits
    }

    /// The `i`-th address inside the prefix.
    ///
    /// # Panics
    /// Panics if `i >= self.size()`.
    #[inline]
    pub fn nth(self, i: u32) -> Addr {
        assert!(
            self.len == 0 || i < self.size(),
            "address index out of range"
        );
        addr(self.bits.wrapping_add(i))
    }

    /// Split into the two child prefixes one bit longer.
    ///
    /// # Panics
    /// Panics on a `/32`.
    pub fn split(self) -> (Prefix, Prefix) {
        assert!(self.len < 32, "cannot split a /32");
        let left = Prefix {
            bits: self.bits,
            len: self.len + 1,
        };
        let right = Prefix {
            bits: self.bits | (1u32 << (31 - self.len)),
            len: self.len + 1,
        };
        (left, right)
    }

    /// For an address on a point-to-point subnet, the other usable address
    /// of its /30 or /31 *subnet mate* — the heart of the paper's
    /// `prefixscan` technique (§5.3). `len` must be 30 or 31.
    ///
    /// For a /31 the mate is the other address of the pair; for a /30 the
    /// mate is the other *usable* address (network and broadcast addresses
    /// are skipped). Returns `None` when `a` is the network or broadcast
    /// address of its /30.
    pub fn ptp_mate(a: Addr, len: u8) -> Option<Addr> {
        assert!(
            len == 30 || len == 31,
            "point-to-point subnets are /30 or /31"
        );
        let bits = addr_bits(a);
        if len == 31 {
            return Some(addr(bits ^ 1));
        }
        match bits & 3 {
            1 => Some(addr(bits + 1)),
            2 => Some(addr(bits - 1)),
            _ => None, // network or broadcast address of the /30
        }
    }

    /// Iterate over the addresses of the prefix, in order.
    pub fn addrs(self) -> impl Iterator<Item = Addr> {
        let base = self.bits;
        let n = self.size() as u64;
        (0..n).map(move |i| addr(base.wrapping_add(i as u32)))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error parsing a prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(pub String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (net, len) = s
            .split_once('/')
            .ok_or_else(|| ParsePrefixError(s.into()))?;
        let net: Addr = net.parse().map_err(|_| ParsePrefixError(s.into()))?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError(s.into()))?;
        if len > 32 {
            return Err(ParsePrefixError(s.into()));
        }
        Ok(Prefix::new(net, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonical_form_zeroes_host_bits() {
        let a = Prefix::new("10.1.2.3".parse().unwrap(), 24);
        assert_eq!(a.to_string(), "10.1.2.0/24");
        assert_eq!(a, p("10.1.2.0/24"));
    }

    #[test]
    fn contains_and_covers() {
        let net = p("128.66.0.0/16");
        assert!(net.contains("128.66.255.1".parse().unwrap()));
        assert!(!net.contains("128.67.0.0".parse().unwrap()));
        assert!(net.covers(p("128.66.2.0/24")));
        assert!(net.covers(net));
        assert!(!p("128.66.2.0/24").covers(net));
    }

    #[test]
    fn default_route_contains_everything() {
        assert!(Prefix::DEFAULT.contains("255.255.255.255".parse().unwrap()));
        assert!(Prefix::DEFAULT.contains("0.0.0.0".parse().unwrap()));
        assert!(Prefix::DEFAULT.covers(p("10.0.0.0/8")));
    }

    #[test]
    fn split_produces_disjoint_children() {
        let (l, r) = p("10.0.0.0/8").split();
        assert_eq!(l, p("10.0.0.0/9"));
        assert_eq!(r, p("10.128.0.0/9"));
        assert!(!l.covers(r) && !r.covers(l));
    }

    #[test]
    fn nth_and_size() {
        let n = p("192.0.2.0/30");
        assert_eq!(n.size(), 4);
        assert_eq!(n.nth(0), "192.0.2.0".parse::<Addr>().unwrap());
        assert_eq!(n.nth(3), "192.0.2.3".parse::<Addr>().unwrap());
        assert_eq!(n.broadcast(), "192.0.2.3".parse::<Addr>().unwrap());
    }

    #[test]
    #[should_panic]
    fn nth_out_of_range_panics() {
        p("192.0.2.0/30").nth(4);
    }

    #[test]
    fn ptp_mate_slash31() {
        let a: Addr = "192.0.2.4".parse().unwrap();
        let b: Addr = "192.0.2.5".parse().unwrap();
        assert_eq!(Prefix::ptp_mate(a, 31), Some(b));
        assert_eq!(Prefix::ptp_mate(b, 31), Some(a));
    }

    #[test]
    fn ptp_mate_slash30() {
        let a: Addr = "192.0.2.1".parse().unwrap();
        let b: Addr = "192.0.2.2".parse().unwrap();
        assert_eq!(Prefix::ptp_mate(a, 30), Some(b));
        assert_eq!(Prefix::ptp_mate(b, 30), Some(a));
        assert_eq!(Prefix::ptp_mate("192.0.2.0".parse().unwrap(), 30), None);
        assert_eq!(Prefix::ptp_mate("192.0.2.3".parse().unwrap(), 30), None);
    }

    #[test]
    fn parse_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.64/26", "203.0.113.7/32"] {
            assert_eq!(p(s).to_string(), s);
        }
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("foo/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn addrs_iterates_in_order() {
        let got: Vec<Addr> = p("198.51.100.248/30").addrs().collect();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], "198.51.100.248".parse::<Addr>().unwrap());
        assert_eq!(got[3], "198.51.100.251".parse::<Addr>().unwrap());
    }
}
