//! CRC32C (Castagnoli) integrity checksums.
//!
//! The BDRM snapshot format (and anything else that wants to detect
//! bit rot or torn writes) needs a checksum that is cheap, incremental,
//! and dependency-free. CRC32C is the storage-industry standard for
//! exactly this role (iSCSI, ext4, Btrfs, LevelDB); the reflected
//! polynomial `0x82F63B78` here matches every one of those
//! implementations, so the test vectors below are externally checkable.
//!
//! [`Crc32c`] is an incremental hasher: feed it section bytes as they
//! are produced and [`finalize`](Crc32c::finalize) when the section
//! closes. [`crc32c`] is the one-shot convenience over a slice.

/// Reflected CRC32C polynomial (Castagnoli).
const POLY: u32 = 0x82F6_3B78;

/// Byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC32C hasher.
///
/// # Examples
///
/// ```
/// use bdrmap_types::integrity::{crc32c, Crc32c};
///
/// let mut h = Crc32c::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finalize(), crc32c(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Crc32c {
        Crc32c::new()
    }
}

impl Crc32c {
    /// A fresh hasher.
    pub fn new() -> Crc32c {
        Crc32c { state: !0 }
    }

    /// Feed `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum over everything fed so far.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer tests against the published CRC32C vectors (RFC
    /// 3720 appendix B.4 and the common check value).
    #[test]
    fn known_answers() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(
            crc32c(b"The quick brown fox jumps over the lazy dog"),
            0x2262_0404
        );
        // 32 zero bytes (iSCSI test vector).
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 0xFF bytes.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    /// Incremental hashing over arbitrary split points must equal the
    /// one-shot checksum.
    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = crc32c(&data);
        for split in [0, 1, 7, 499, 999, 1000] {
            let mut h = Crc32c::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
        // Byte-at-a-time.
        let mut h = Crc32c::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), whole);
    }

    /// Any single-bit flip must change the checksum (the property the
    /// snapshot codec relies on to catch bit rot).
    #[test]
    fn single_bit_flips_are_detected() {
        let data = b"border maps must not rot on disk".to_vec();
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), clean, "flip {byte}:{bit} undetected");
            }
        }
    }
}
