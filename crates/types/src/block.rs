//! Contiguous address blocks.
//!
//! bdrmap's target list is built from *blocks*: the address ranges an AS
//! actually routes once more-specific announcements by other ASes are
//! carved out (§5.3 of the paper: if X originates `128.66.0.0/16` and Y
//! originates `128.66.2.0/24`, then X's blocks are `128.66.0.0–128.66.1.255`
//! and `128.66.3.0–128.66.255.255`).

use crate::{addr, addr_bits, Addr, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive range of IPv4 addresses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AddressBlock {
    start: u32,
    end: u32,
}

impl AddressBlock {
    /// An inclusive block `[start, end]`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    pub fn new(start: Addr, end: Addr) -> AddressBlock {
        let (s, e) = (addr_bits(start), addr_bits(end));
        assert!(s <= e, "block start after end");
        AddressBlock { start: s, end: e }
    }

    /// The block covering exactly one prefix.
    pub fn from_prefix(p: Prefix) -> AddressBlock {
        AddressBlock {
            start: addr_bits(p.network()),
            end: addr_bits(p.broadcast()),
        }
    }

    /// First address.
    #[inline]
    pub fn start(self) -> Addr {
        addr(self.start)
    }

    /// Last address.
    #[inline]
    pub fn end(self) -> Addr {
        addr(self.end)
    }

    /// Number of addresses in the block.
    #[inline]
    pub fn size(self) -> u64 {
        (self.end - self.start) as u64 + 1
    }

    /// True if `a` falls in the block.
    #[inline]
    pub fn contains(self, a: Addr) -> bool {
        let b = addr_bits(a);
        self.start <= b && b <= self.end
    }

    /// The `i`-th address in the block.
    ///
    /// # Panics
    /// Panics if `i >= self.size()`.
    #[inline]
    pub fn nth(self, i: u64) -> Addr {
        assert!(i < self.size(), "address index out of range");
        addr(self.start + i as u32)
    }

    /// Carve `holes` out of this block, returning the remaining pieces in
    /// ascending order. Holes may overlap each other or extend beyond the
    /// block; they are clipped.
    pub fn subtract(self, holes: &[AddressBlock]) -> Vec<AddressBlock> {
        let mut clipped: Vec<(u32, u32)> = holes
            .iter()
            .filter_map(|h| {
                let s = h.start.max(self.start);
                let e = h.end.min(self.end);
                (s <= e).then_some((s, e))
            })
            .collect();
        clipped.sort_unstable();
        let mut out = Vec::new();
        let mut cursor = self.start;
        let mut done = false;
        for (hs, he) in clipped {
            if done || hs > self.end {
                break;
            }
            if hs > cursor {
                out.push(AddressBlock {
                    start: cursor,
                    end: hs - 1,
                });
            }
            // Advance past the hole, watching for overflow at 255.255.255.255.
            match he.checked_add(1) {
                Some(next) => cursor = cursor.max(next),
                None => {
                    done = true;
                }
            }
        }
        if !done && cursor <= self.end {
            out.push(AddressBlock {
                start: cursor,
                end: self.end,
            });
        }
        out
    }

    /// Decompose the block into the minimal list of CIDR prefixes covering
    /// exactly its addresses.
    pub fn to_prefixes(self) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut cur = self.start as u64;
        let end = self.end as u64;
        while cur <= end {
            // Largest power-of-two aligned chunk starting at `cur` that
            // fits within the block.
            let align = if cur == 0 {
                32
            } else {
                cur.trailing_zeros().min(32)
            };
            let span = 64 - (end - cur + 1).leading_zeros() - 1; // floor(log2(remaining))
            let bits = align.min(span);
            out.push(Prefix::new(addr(cur as u32), 32 - bits as u8));
            cur += 1u64 << bits;
        }
        out
    }
}

impl fmt::Display for AddressBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start(), self.end())
    }
}

impl fmt::Debug for AddressBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn blk(s: &str, e: &str) -> AddressBlock {
        AddressBlock::new(a(s), a(e))
    }

    #[test]
    fn paper_example_carve_out() {
        // X originates 128.66.0.0/16, Y originates 128.66.2.0/24.
        let x = AddressBlock::from_prefix(p("128.66.0.0/16"));
        let holes = [AddressBlock::from_prefix(p("128.66.2.0/24"))];
        let rest = x.subtract(&holes);
        assert_eq!(
            rest,
            vec![
                blk("128.66.0.0", "128.66.1.255"),
                blk("128.66.3.0", "128.66.255.255")
            ]
        );
    }

    #[test]
    fn subtract_no_holes_returns_self() {
        let b = blk("10.0.0.0", "10.0.0.255");
        assert_eq!(b.subtract(&[]), vec![b]);
    }

    #[test]
    fn subtract_full_hole_returns_empty() {
        let b = blk("10.0.0.0", "10.0.0.255");
        assert!(b.subtract(&[blk("9.0.0.0", "11.0.0.0")]).is_empty());
    }

    #[test]
    fn subtract_overlapping_holes() {
        let b = blk("10.0.0.0", "10.0.0.99");
        let rest = b.subtract(&[blk("10.0.0.10", "10.0.0.50"), blk("10.0.0.40", "10.0.0.60")]);
        assert_eq!(
            rest,
            vec![blk("10.0.0.0", "10.0.0.9"), blk("10.0.0.61", "10.0.0.99")]
        );
    }

    #[test]
    fn subtract_hole_at_address_space_end() {
        let b = blk("255.255.255.0", "255.255.255.255");
        let rest = b.subtract(&[blk("255.255.255.128", "255.255.255.255")]);
        assert_eq!(rest, vec![blk("255.255.255.0", "255.255.255.127")]);
    }

    #[test]
    fn to_prefixes_exact_cidr() {
        assert_eq!(
            blk("10.0.0.0", "10.0.0.255").to_prefixes(),
            vec![p("10.0.0.0/24")]
        );
    }

    #[test]
    fn to_prefixes_ragged_range() {
        // 128.66.3.0 - 128.66.255.255 = /24 at 3.0, then /22? Let's just
        // verify the cover is exact and minimal-ish.
        let b = blk("128.66.3.0", "128.66.255.255");
        let ps = b.to_prefixes();
        let total: u64 = ps.iter().map(|p| p.size() as u64).sum();
        assert_eq!(total, b.size());
        // Exactness: every prefix within the block, prefixes sorted/disjoint.
        for w in ps.windows(2) {
            assert!(addr_bits(w[0].broadcast()) < addr_bits(w[1].network()));
        }
        assert_eq!(ps[0].network(), b.start());
        assert_eq!(ps.last().unwrap().broadcast(), b.end());
    }

    #[test]
    fn contains_and_nth() {
        let b = blk("192.0.2.10", "192.0.2.20");
        assert_eq!(b.size(), 11);
        assert!(b.contains(a("192.0.2.10")));
        assert!(b.contains(a("192.0.2.20")));
        assert!(!b.contains(a("192.0.2.21")));
        assert_eq!(b.nth(0), a("192.0.2.10"));
        assert_eq!(b.nth(10), a("192.0.2.20"));
    }
}
