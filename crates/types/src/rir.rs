//! RIR delegation records.

use crate::Prefix;
use serde::{Deserialize, Serialize};

/// One RIR delegation record: a block and the opaque organisation ID it
/// was delegated to. The public RIR files cannot be tied directly to an
/// AS (§5.2 of the paper), which is why the ID is opaque.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RirRecord {
    /// The delegated block.
    pub prefix: Prefix,
    /// Opaque per-organisation ID.
    pub opaque_org: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_copy() {
        let r = RirRecord {
            prefix: "10.0.0.0/16".parse().unwrap(),
            opaque_org: 9,
        };
        let s = r;
        assert_eq!(r, s);
    }
}
