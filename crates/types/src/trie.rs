//! Longest-prefix-match tables.
//!
//! A compact binary trie keyed by [`Prefix`]. This is the workhorse for
//! both the BGP simulator's RIBs and bdrmap's IP-to-AS mapping: lookups
//! walk the address bits from the top and remember the last node that
//! carried a value, yielding the longest matching prefix.

use crate::{addr_bits, Addr, Prefix};
use serde::{Deserialize, Serialize};

/// A map from [`Prefix`] to `T` supporting longest-prefix-match lookup.
///
/// # Examples
///
/// ```
/// use bdrmap_types::{Prefix, PrefixTrie};
///
/// let mut table: PrefixTrie<&str> = PrefixTrie::new();
/// table.insert("128.66.0.0/16".parse().unwrap(), "X");
/// table.insert("128.66.2.0/24".parse().unwrap(), "Y");
///
/// // Longest match wins.
/// let (p, owner) = table.lookup("128.66.2.9".parse().unwrap()).unwrap();
/// assert_eq!((p.to_string().as_str(), *owner), ("128.66.2.0/24", "Y"));
/// let (p, owner) = table.lookup("128.66.9.9".parse().unwrap()).unwrap();
/// assert_eq!((p.to_string().as_str(), *owner), ("128.66.0.0/16", "X"));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Node<T> {
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn empty() -> Node<T> {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty table.
    pub fn new() -> PrefixTrie<T> {
        PrefixTrie {
            nodes: vec![Node::empty()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(bits: u32, depth: u8) -> usize {
        ((bits >> (31 - depth)) & 1) as usize
    }

    /// Insert `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let bits = addr_bits(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(bits, depth);
            node = match self.nodes[node].children[b] {
                Some(c) => c as usize,
                None => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node::empty());
                    self.nodes[node].children[b] = Some(idx);
                    idx as usize
                }
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove the value at exactly `prefix`, returning it if present.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let bits = addr_bits(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(bits, depth);
            node = self.nodes[node].children[b]? as usize;
        }
        let old = self.nodes[node].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let bits = addr_bits(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(bits, depth);
            node = self.nodes[node].children[b]? as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Mutable exact-match lookup.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut T> {
        let bits = addr_bits(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(bits, depth);
            node = self.nodes[node].children[b]? as usize;
        }
        self.nodes[node].value.as_mut()
    }

    /// Longest-prefix-match lookup: the most-specific stored prefix
    /// containing `a`, with its value.
    pub fn lookup(&self, a: Addr) -> Option<(Prefix, &T)> {
        let bits = addr_bits(a);
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            let b = Self::bit(bits, depth);
            match self.nodes[node].children[b] {
                Some(c) => {
                    node = c as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::new(a, len), v))
    }

    /// All stored prefixes that contain `a`, least-specific first.
    pub fn matches(&self, a: Addr) -> Vec<(Prefix, &T)> {
        let bits = addr_bits(a);
        let mut out = Vec::new();
        let mut node = 0usize;
        if let Some(v) = self.nodes[0].value.as_ref() {
            out.push((Prefix::DEFAULT, v));
        }
        for depth in 0..32u8 {
            let b = Self::bit(bits, depth);
            match self.nodes[node].children[b] {
                Some(c) => {
                    node = c as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        out.push((Prefix::new(a, depth + 1), v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Number of arena nodes, including valueless interior nodes.
    /// Node 0 is always the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Raw arena nodes in storage order: `(children, value)` per node.
    /// Child indices always exceed their parent's index (children are
    /// appended after the parent exists), so the array is acyclic by
    /// construction — flat serializations can validate links with a
    /// single monotonicity check.
    pub fn raw_nodes(&self) -> impl Iterator<Item = ([Option<u32>; 2], Option<&T>)> {
        self.nodes.iter().map(|n| (n.children, n.value.as_ref()))
    }

    /// Iterate over all `(prefix, value)` pairs in lexicographic
    /// (network address, then length) order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::new();
        self.walk(0, 0, 0, &mut out);
        out.into_iter()
    }

    fn walk<'a>(&'a self, node: usize, bits: u32, depth: u8, out: &mut Vec<(Prefix, &'a T)>) {
        if let Some(v) = self.nodes[node].value.as_ref() {
            out.push((Prefix::new(crate::addr(bits), depth), v));
        }
        if depth == 32 {
            return;
        }
        if let Some(c) = self.nodes[node].children[0] {
            self.walk(c as usize, bits, depth + 1, out);
        }
        if let Some(c) = self.nodes[node].children[1] {
            self.walk(c as usize, bits | (1 << (31 - depth)), depth + 1, out);
        }
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

/// A set of prefixes with longest-match membership tests.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PrefixSet {
    trie: PrefixTrie<()>,
}

impl PrefixSet {
    /// An empty set.
    pub fn new() -> PrefixSet {
        PrefixSet {
            trie: PrefixTrie::new(),
        }
    }

    /// Insert a prefix; returns true if it was not already present.
    pub fn insert(&mut self, p: Prefix) -> bool {
        self.trie.insert(p, ()).is_none()
    }

    /// True if exactly `p` is in the set.
    pub fn contains(&self, p: Prefix) -> bool {
        self.trie.get(p).is_some()
    }

    /// True if any stored prefix contains `a`.
    pub fn covers_addr(&self, a: Addr) -> bool {
        self.trie.lookup(a).is_some()
    }

    /// The most specific stored prefix containing `a`.
    pub fn longest_match(&self, a: Addr) -> Option<Prefix> {
        self.trie.lookup(a).map(|(p, _)| p)
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Iterate over stored prefixes.
    pub fn iter(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.trie.iter().map(|(p, _)| p)
    }
}

impl FromIterator<Prefix> for PrefixSet {
    fn from_iter<I: IntoIterator<Item = Prefix>>(iter: I) -> Self {
        let mut s = PrefixSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_prefers_more_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("128.66.0.0/16"), "X");
        t.insert(p("128.66.2.0/24"), "Y");
        assert_eq!(t.lookup(a("128.66.2.9")), Some((p("128.66.2.0/24"), &"Y")));
        assert_eq!(t.lookup(a("128.66.3.9")), Some((p("128.66.0.0/16"), &"X")));
        assert_eq!(t.lookup(a("128.67.0.1")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, 0u8);
        assert_eq!(t.lookup(a("1.2.3.4")), Some((Prefix::DEFAULT, &0u8)));
    }

    #[test]
    fn insert_returns_old_value() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_works() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(1));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(a("10.1.2.3")), Some((p("10.1.0.0/16"), &2)));
        assert_eq!(t.lookup(a("10.2.0.0")), None);
    }

    #[test]
    fn matches_returns_all_covering_prefixes() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        let m = t.matches(a("10.1.2.3"));
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].0, Prefix::DEFAULT);
        assert_eq!(m[2].0, p("10.1.0.0/16"));
    }

    #[test]
    fn iter_visits_in_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.0/24"), 3);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.128.0.0/9"), 2);
        let got: Vec<Prefix> = t.iter().map(|(p, _)| p).collect();
        assert_eq!(
            got,
            vec![p("10.0.0.0/8"), p("10.128.0.0/9"), p("192.0.2.0/24")]
        );
    }

    #[test]
    fn slash32_entries() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::host(a("203.0.113.7")), "h");
        assert_eq!(t.lookup(a("203.0.113.7")).map(|x| x.1), Some(&"h"));
        assert_eq!(t.lookup(a("203.0.113.8")), None);
    }

    #[test]
    fn lpm_default_route_under_nested_chain() {
        // /0 below a /8–/16–/24–/32 chain: every address gets its
        // deepest cover, and addresses outside the chain fall through
        // to the default route rather than to a partial match.
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "dfl");
        t.insert(p("10.0.0.0/8"), "a8");
        t.insert(p("10.20.0.0/16"), "a16");
        t.insert(p("10.20.30.0/24"), "a24");
        t.insert(Prefix::host(a("10.20.30.40")), "a32");
        assert_eq!(
            t.lookup(a("10.20.30.40")),
            Some((p("10.20.30.40/32"), &"a32"))
        );
        assert_eq!(
            t.lookup(a("10.20.30.41")),
            Some((p("10.20.30.0/24"), &"a24"))
        );
        assert_eq!(t.lookup(a("10.20.31.1")), Some((p("10.20.0.0/16"), &"a16")));
        assert_eq!(t.lookup(a("10.21.0.1")), Some((p("10.0.0.0/8"), &"a8")));
        assert_eq!(t.lookup(a("11.0.0.1")), Some((p("0.0.0.0/0"), &"dfl")));
        assert_eq!(
            t.lookup(a("255.255.255.255")),
            Some((p("0.0.0.0/0"), &"dfl"))
        );
    }

    #[test]
    fn lpm_no_covering_entry_despite_populated_siblings() {
        // Without a default route, an address whose path shares trie
        // nodes with stored prefixes but is covered by none must miss.
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/9"), 1);
        t.insert(p("10.128.0.0/10"), 2);
        t.insert(Prefix::host(a("10.192.0.1")), 3);
        // 10.192.0.2 walks through the 10.128.0.0/9 subtree's bits but
        // only /10 covers 10.128–10.191; 10.192+ has no entry.
        assert_eq!(t.lookup(a("10.192.0.2")), None);
        assert_eq!(t.lookup(a("11.0.0.1")), None);
        assert_eq!(t.lookup(a("9.255.255.255")), None);
        // The /32 island still matches exactly.
        assert_eq!(t.lookup(a("10.192.0.1")), Some((p("10.192.0.1/32"), &3)));
    }

    #[test]
    fn lpm_overlapping_nested_prefixes_report_stored_network() {
        // The reported prefix is the canonical stored network (host
        // bits masked), not the queried address.
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "outer");
        t.insert(p("10.64.0.0/10"), "inner");
        let (got, v) = t.lookup(a("10.64.3.4")).unwrap();
        assert_eq!((got, *v), (p("10.64.0.0/10"), "inner"));
        assert_eq!(got.network(), a("10.64.0.0"));
        let (got, v) = t.lookup(a("10.128.3.4")).unwrap();
        assert_eq!((got, *v), (p("10.0.0.0/8"), "outer"));
    }

    #[test]
    fn lpm_host_entries_and_their_neighbors() {
        // /32 entries shadow every shorter cover for exactly one
        // address; adjacent addresses fall back to the covering prefix.
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.0/24"), 0u32);
        t.insert(Prefix::host(a("192.0.2.1")), 1);
        t.insert(Prefix::host(a("192.0.2.255")), 2);
        assert_eq!(t.lookup(a("192.0.2.1")).map(|x| *x.1), Some(1));
        assert_eq!(t.lookup(a("192.0.2.2")).map(|x| *x.1), Some(0));
        assert_eq!(t.lookup(a("192.0.2.255")).map(|x| *x.1), Some(2));
        assert_eq!(t.lookup(a("192.0.3.1")), None);
        // matches() reports the full nesting for the /32.
        let m = t.matches(a("192.0.2.255"));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, p("192.0.2.0/24"));
        assert_eq!(m[1].0, p("192.0.2.255/32"));
    }

    #[test]
    fn prefix_set_basics() {
        let mut s = PrefixSet::new();
        assert!(s.insert(p("198.51.100.0/24")));
        assert!(!s.insert(p("198.51.100.0/24")));
        assert!(s.contains(p("198.51.100.0/24")));
        assert!(!s.contains(p("198.51.0.0/16")));
        assert!(s.covers_addr(a("198.51.100.77")));
        assert!(!s.covers_addr(a("198.51.101.77")));
        assert_eq!(
            s.longest_match(a("198.51.100.77")),
            Some(p("198.51.100.0/24"))
        );
    }
}
