//! Opaque identifiers for simulator entities.
//!
//! These are dense indices allocated by the topology generator. They exist
//! only inside the simulator and the evaluation harness; the probing and
//! inference crates never see them — they see IP addresses, exactly like
//! the real tool.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A physical router in the simulated Internet.
    RouterId, "R"
);
id_type!(
    /// An interface (one IP address) on a router.
    IfaceId, "if"
);
id_type!(
    /// A point of presence: a geographic location housing routers.
    PopId, "pop"
);
id_type!(
    /// A link between two interfaces (internal, interdomain, or IXP LAN).
    LinkId, "L"
);
id_type!(
    /// A vantage point: a measurement host attached to an access router.
    VpId, "vp"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_tags() {
        assert_eq!(RouterId(7).to_string(), "R7");
        assert_eq!(IfaceId(0).to_string(), "if0");
        assert_eq!(PopId(3).to_string(), "pop3");
        assert_eq!(LinkId(12).to_string(), "L12");
        assert_eq!(VpId(1).to_string(), "vp1");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(RouterId(42).index(), 42);
    }
}
