//! Thin Linux syscall wrappers for the event-driven server.
//!
//! The workspace is zero-dependency by policy (no `libc`, no `mio`),
//! but `std` already links the platform libc, so the handful of calls
//! the epoll backend needs — `epoll_create1`/`epoll_ctl`/`epoll_wait`,
//! `writev`, and `getrlimit`/`setrlimit` — are declared here directly
//! and wrapped in safe, misuse-resistant types. Everything in this
//! module is Linux-only; the serving crate gates its epoll backend on
//! the same `cfg`.

#![cfg(target_os = "linux")]

use std::io::{self, IoSlice};
use std::os::unix::io::RawFd;

/// Readable readiness (or a pending accept on a listener).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition; always reported, never needs registering.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up; always reported, never needs registering.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the writing half (TCP half-close). Must be
/// registered explicitly; lets the server answer buffered requests
/// before closing instead of treating half-close as a dead socket.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const RLIMIT_NOFILE: i32 = 7;

/// One readiness event. The kernel ABI packs this struct on x86-64
/// (no padding between the 32-bit mask and the 64-bit payload); other
/// architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Debug, Default)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    // `IoSlice` is guaranteed ABI-compatible with `struct iovec`; the
    // declaration uses a raw pointer so the signature stays FFI-clean.
    fn writev(fd: i32, iov: *const std::ffi::c_void, iovcnt: i32) -> isize;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn geteuid() -> u32;
}

/// Linux caps one `writev` at `IOV_MAX` iovecs.
pub const IOV_MAX: usize = 1024;

/// An owned epoll instance. Registered fds are identified by a
/// caller-chosen `u64` token; the instance closes with the handle.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` (level-triggered) for `events`, tagged `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister `fd`. Closing the fd deregisters implicitly; this is
    /// for fds that outlive their registration (shared listeners).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` for readiness, filling `events` from the
    /// front. Returns the number of events delivered; an interrupting
    /// signal counts as zero events rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// Vectored write: submit up to [`IOV_MAX`] buffers in one syscall.
/// Returns the number of bytes accepted (possibly short).
pub fn writev_fd(fd: RawFd, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
    let cnt = bufs.len().min(IOV_MAX);
    let n = unsafe { writev(fd, bufs.as_ptr() as *const std::ffi::c_void, cnt as i32) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(n as usize)
}

/// Raise the open-file soft limit to at least `want` descriptors,
/// pushing the hard limit too when running as root. Returns the soft
/// limit actually in effect, which may be below `want` on constrained
/// hosts — callers decide whether that is fatal.
pub fn ensure_nofile(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    if lim.max < want && unsafe { geteuid() } == 0 {
        let raised = Rlimit {
            cur: want,
            max: want,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return Ok(want);
        }
    }
    let target = want.min(lim.max);
    let raised = Rlimit {
        cur: target,
        max: lim.max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_listener_and_stream_readiness() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 8];
        // Nothing pending: a short wait delivers zero events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let (data, bits) = (events[0].data, events[0].events);
        assert_eq!(data, 7);
        assert_ne!(bits & EPOLLIN, 0);

        // Accept, register the stream, and see data-readiness on it.
        let (server, _) = listener.accept().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 9).unwrap();
        client.write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let n = ep.wait(&mut events, 100).unwrap();
            if (0..n).any(|i| {
                let ev = events[i];
                ev.data == 9 && ev.events & EPOLLIN != 0
            }) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no stream readiness");
        }
        ep.del(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn epoll_modify_switches_interest() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        // An empty-socket EPOLLOUT registration is immediately ready.
        ep.add(server.as_raw_fd(), EPOLLOUT, 1).unwrap();
        let mut events = [EpollEvent::default(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_ne!(ev.events & EPOLLOUT, 0);
        // Switch to read interest: no data yet, so no events.
        ep.modify(server.as_raw_fd(), EPOLLIN, 1).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        drop(client);
    }

    #[test]
    fn writev_scatters_across_buffers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let bufs = [
            IoSlice::new(b"alpha-"),
            IoSlice::new(b"beta-"),
            IoSlice::new(b"gamma"),
        ];
        let wrote = writev_fd(server.as_raw_fd(), &bufs).unwrap();
        assert_eq!(wrote, 16);
        let mut got = vec![0u8; 16];
        let mut client = client;
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"alpha-beta-gamma");
    }

    #[test]
    fn ensure_nofile_reports_a_usable_limit() {
        let lim = ensure_nofile(1024).unwrap();
        assert!(lim >= 1024 || lim > 0);
        // Asking again for what we already have is a no-op success.
        assert!(ensure_nofile(lim).unwrap() >= lim);
    }
}
