//! Core types shared across the bdrmap workspace.
//!
//! This crate deliberately contains no policy or algorithm code: it defines
//! the vocabulary — autonomous system numbers, IPv4 prefixes, address
//! blocks, longest-prefix-match tables, and opaque identifiers for routers,
//! interfaces, and points of presence — that every other crate speaks.
//!
//! Everything here is `Copy` or cheaply clonable, deterministic, and
//! `serde`-serialisable so experiment artefacts can be persisted.

pub mod asn;
pub mod block;
pub mod fsutil;
pub mod ids;
pub mod integrity;
pub mod prefix;
pub mod rir;
pub mod swap;
pub mod sys;
pub mod trie;
pub mod vfs;
pub mod wire;

pub use asn::{Asn, OrgId, Relationship};
pub use block::AddressBlock;
pub use ids::{IfaceId, LinkId, PopId, RouterId, VpId};
pub use prefix::Prefix;
pub use rir::RirRecord;
pub use swap::{SwapCell, SwapReader};
pub use trie::{PrefixSet, PrefixTrie};
pub use vfs::{ChaosFsConfig, ChaosVfs, FaultKind, FsFaultBudget, Vfs, VfsBackend};

/// Convenience alias: the workspace is IPv4-only, like the paper's study.
pub type Addr = std::net::Ipv4Addr;

/// Construct an [`Addr`] from a host-order `u32`.
#[inline]
pub fn addr(bits: u32) -> Addr {
    Addr::from(bits)
}

/// Host-order `u32` view of an [`Addr`].
#[inline]
pub fn addr_bits(a: Addr) -> u32 {
    u32::from(a)
}
