//! The virtual-filesystem seam: every durable write in the workspace
//! goes through a [`Vfs`] so faults can be injected under it.
//!
//! Production code holds a [`Vfs`] backed by [`RealVfs`], which is just
//! [`fsutil`](crate::fsutil) plus `std::fs`. The chaos harness swaps in
//! a [`ChaosVfs`]: a seeded, budgeted fault injector that turns
//! ordinary reads/writes/renames into the failures a long-running
//! deployment actually meets — `ENOSPC`, short writes, fsync failures,
//! torn renames (the *silent* one: the call reports success but the
//! destination holds a truncated prefix), read-side bit-rot, and rename
//! failures (so even the quarantine path can double-fault).
//!
//! Determinism contract: a [`ChaosVfs`] is a pure function of its seed
//! and the *sequence* of operations issued through it. Callers that
//! issue operations sequentially (every durable-write path in this repo
//! does) therefore replay byte-identically under the same seed; that is
//! what lets `bdrmap chaos` diff two same-seed runs.

use crate::fsutil;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One splitmix64 step — the same mixer the loadgen and fuzzer use, so
/// every seeded subsystem in the repo shares one replay story.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The operations a durable-write path needs. Implementations must be
/// safe to share across threads (the snapshot store is cloned into the
/// serving daemon's reload path).
pub trait VfsBackend: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Write a whole file atomically (write-to-sibling + fsync +
    /// rename + parent fsync; see [`fsutil::write_atomic`]).
    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Append bytes to the end of a file (creating it if absent) and
    /// fsync — the write-ahead journal's primitive. Unlike
    /// `write_atomic` an interrupted append can leave a torn suffix;
    /// callers must frame appended records so a reader can detect and
    /// discard the tail.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Rename a file (quarantine moves).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The real-filesystem append: open O_APPEND, write, fdatasync.
fn real_append(path: &Path, data: &[u8]) -> io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(data)?;
    f.sync_data()
}

/// The production backend: plain `std::fs` + [`fsutil`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl VfsBackend for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fsutil::write_atomic(path, data)
    }
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        real_append(path, data)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// A cheaply-clonable handle to a [`VfsBackend`].
#[derive(Clone)]
pub struct Vfs {
    inner: Arc<dyn VfsBackend>,
}

impl std::fmt::Debug for Vfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Vfs")
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::real()
    }
}

impl Vfs {
    /// The production filesystem.
    pub fn real() -> Vfs {
        Vfs::new(RealVfs)
    }

    /// Wrap any backend (chaos injectors, test doubles).
    pub fn new(backend: impl VfsBackend + 'static) -> Vfs {
        Vfs {
            inner: Arc::new(backend),
        }
    }

    /// Read a whole file.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    /// Write a whole file atomically + durably.
    pub fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.inner.write_atomic(path, data)
    }

    /// Append bytes to a file durably (journal writes). Torn suffixes
    /// are possible; frame your records.
    pub fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.inner.append(path, data)
    }

    /// Rename a file.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    /// Create a directory and its parents.
    pub fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }
}

/// The filesystem fault taxonomy (DESIGN.md §11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `write_atomic` fails up front with `ENOSPC`; nothing is written.
    Enospc,
    /// `write_atomic` writes a truncated temp file, then errors. The
    /// destination is untouched (the rename never runs).
    ShortWrite,
    /// `write_atomic` writes the full temp file but the fsync fails;
    /// the destination is untouched.
    FsyncFail,
    /// The silent one: `write_atomic` *returns `Ok`* but the
    /// destination holds a truncated prefix — the post-crash state of a
    /// rename that was not fsynced. Only read-back verification (CRC)
    /// can catch it.
    TornRename,
    /// `read` returns the file with one bit flipped.
    BitRot,
    /// `rename` fails (exercises the quarantine double-fault path).
    RenameFail,
}

impl FaultKind {
    /// Every kind, in stable report order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Enospc,
        FaultKind::ShortWrite,
        FaultKind::FsyncFail,
        FaultKind::TornRename,
        FaultKind::BitRot,
        FaultKind::RenameFail,
    ];

    /// Stable lowercase label (report keys, fault log lines).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::ShortWrite => "short_write",
            FaultKind::FsyncFail => "fsync_fail",
            FaultKind::TornRename => "torn_rename",
            FaultKind::BitRot => "bit_rot",
            FaultKind::RenameFail => "rename_fail",
        }
    }
}

/// How many faults of each kind a [`ChaosVfs`] may inject before that
/// kind goes quiet. Budgets are what make chaos runs terminate: every
/// retry loop in the harness drains at least one budget unit per
/// failure, so convergence is guaranteed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsFaultBudget {
    /// Injectable `ENOSPC` failures.
    pub enospc: u32,
    /// Injectable short writes.
    pub short_write: u32,
    /// Injectable fsync failures.
    pub fsync_fail: u32,
    /// Injectable silent torn renames.
    pub torn_rename: u32,
    /// Injectable read-side bit flips.
    pub bit_rot: u32,
    /// Injectable rename failures.
    pub rename_fail: u32,
}

impl FsFaultBudget {
    fn get(&self, kind: FaultKind) -> u32 {
        match kind {
            FaultKind::Enospc => self.enospc,
            FaultKind::ShortWrite => self.short_write,
            FaultKind::FsyncFail => self.fsync_fail,
            FaultKind::TornRename => self.torn_rename,
            FaultKind::BitRot => self.bit_rot,
            FaultKind::RenameFail => self.rename_fail,
        }
    }

    /// Total faults this budget may still inject.
    pub fn total(&self) -> u64 {
        FaultKind::ALL.iter().map(|&k| self.get(k) as u64).sum()
    }
}

/// Seed + probability + budgets for a [`ChaosVfs`].
#[derive(Clone, Copy, Debug)]
pub struct ChaosFsConfig {
    /// Fault PRNG seed; same seed, same fault schedule.
    pub seed: u64,
    /// Probability that an eligible operation draws a fault, in [0, 1].
    pub fault_rate: f64,
    /// Per-kind caps.
    pub budget: FsFaultBudget,
}

struct ChaosFsState {
    rng: u64,
    remaining: [u32; 6],
    injected: [u64; 6],
    ops: u64,
    quiesced: bool,
    log: Vec<String>,
}

/// A seeded fault-injecting [`VfsBackend`]. Clones share one state, so
/// a clone kept by the harness observes (and can quiesce) the injector
/// it handed to the system under test.
#[derive(Clone)]
pub struct ChaosVfs {
    fault_rate: f64,
    state: Arc<Mutex<ChaosFsState>>,
}

impl ChaosVfs {
    /// Build an injector from a seed, rate, and budget.
    pub fn new(cfg: ChaosFsConfig) -> ChaosVfs {
        let remaining = std::array::from_fn(|i| cfg.budget.get(FaultKind::ALL[i]));
        ChaosVfs {
            fault_rate: cfg.fault_rate.clamp(0.0, 1.0),
            state: Arc::new(Mutex::new(ChaosFsState {
                rng: cfg.seed,
                remaining,
                injected: [0; 6],
                ops: 0,
                quiesced: false,
                log: Vec::new(),
            })),
        }
    }

    /// A [`Vfs`] handle over this injector (the harness keeps `self` as
    /// the control/observation side).
    pub fn vfs(&self) -> Vfs {
        Vfs::new(self.clone())
    }

    /// Stop injecting; every later operation behaves like [`RealVfs`].
    /// Budgets and counters are preserved for the final report.
    pub fn quiesce(&self) {
        self.lock().quiesced = true;
    }

    /// Faults injected so far of `kind`.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        let idx = FaultKind::ALL.iter().position(|&k| k == kind).unwrap();
        self.lock().injected[idx]
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.lock().injected.iter().sum()
    }

    /// The deterministic fault log: one line per injected fault,
    /// `op<N> <kind> <file-name>`.
    pub fn log(&self) -> Vec<String> {
        self.lock().log.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosFsState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Count an operation and decide whether to fault it. `candidates`
    /// are the kinds this operation can express; kinds whose budget is
    /// exhausted are skipped.
    fn draw(&self, candidates: &[FaultKind], path: &Path) -> Option<FaultKind> {
        let mut st = self.lock();
        st.ops += 1;
        if st.quiesced {
            return None;
        }
        let eligible: Vec<usize> = candidates
            .iter()
            .map(|&k| FaultKind::ALL.iter().position(|&x| x == k).unwrap())
            .filter(|&i| st.remaining[i] > 0)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let r = splitmix64(&mut st.rng);
        let p = (r >> 11) as f64 / (1u64 << 53) as f64;
        if p >= self.fault_rate {
            return None;
        }
        let pick = eligible[(splitmix64(&mut st.rng) % eligible.len() as u64) as usize];
        st.remaining[pick] -= 1;
        st.injected[pick] += 1;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let line = format!("op{} {} {}", st.ops, FaultKind::ALL[pick].as_str(), name);
        st.log.push(line);
        Some(FaultKind::ALL[pick])
    }

    /// An auxiliary deterministic draw (bit positions, cut points).
    fn aux(&self) -> u64 {
        splitmix64(&mut self.lock().rng)
    }
}

fn enospc(path: &Path) -> io::Error {
    io::Error::new(
        io::Error::from_raw_os_error(28).kind(),
        format!("chaos: no space left on device writing {}", path.display()),
    )
}

impl VfsBackend for ChaosVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = std::fs::read(path)?;
        if self.draw(&[FaultKind::BitRot], path).is_some() && !data.is_empty() {
            let bit = self.aux() % (data.len() as u64 * 8);
            data[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        Ok(data)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use FaultKind::*;
        match self.draw(&[Enospc, ShortWrite, FsyncFail, TornRename], path) {
            None => fsutil::write_atomic(path, data),
            Some(Enospc) => Err(enospc(path)),
            Some(ShortWrite) => {
                // Half the bytes reach the temp file, then the device
                // gives up; the destination is never touched.
                let cut = data.len() / 2;
                std::fs::write(fsutil::tmp_sibling(path), &data[..cut])?;
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!(
                        "chaos: short write ({cut}/{} bytes) to {}",
                        data.len(),
                        path.display()
                    ),
                ))
            }
            Some(FsyncFail) => {
                // All bytes reach the temp file but the fsync fails, so
                // the rename must not run.
                std::fs::write(fsutil::tmp_sibling(path), data)?;
                Err(io::Error::other(format!(
                    "chaos: fsync failed for {}",
                    path.display()
                )))
            }
            Some(TornRename) => {
                // Silent corruption: report success while the
                // destination holds only a prefix (a crash between
                // rename and directory fsync). Cut in the back quarter
                // so headers survive and only checksums can object.
                let cut = if data.len() > 4 {
                    data.len() - 1 - (self.aux() % (data.len() as u64 / 4)) as usize
                } else {
                    0
                };
                std::fs::write(path, &data[..cut])?;
                Ok(())
            }
            Some(BitRot) | Some(RenameFail) => unreachable!("not write candidates"),
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use FaultKind::*;
        match self.draw(&[Enospc, ShortWrite, FsyncFail], path) {
            None => real_append(path, data),
            Some(Enospc) => Err(enospc(path)),
            Some(ShortWrite) => {
                // Half the record reaches the file before the device
                // gives up: the journal now ends in a torn frame the
                // reader must detect (CRC) and discard.
                let cut = data.len() / 2;
                real_append(path, &data[..cut])?;
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!(
                        "chaos: short append ({cut}/{} bytes) to {}",
                        data.len(),
                        path.display()
                    ),
                ))
            }
            Some(FsyncFail) => {
                // Every byte landed but the fsync failed: the caller
                // must treat the record as unacknowledged even though a
                // post-crash reader may see it whole. Idempotent replay
                // (LSN dedupe) is what makes this safe.
                real_append(path, data)?;
                Err(io::Error::other(format!(
                    "chaos: fsync failed appending to {}",
                    path.display()
                )))
            }
            Some(TornRename) | Some(BitRot) | Some(RenameFail) => {
                unreachable!("not append candidates")
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.draw(&[FaultKind::RenameFail], from).is_some() {
            return Err(io::Error::other(format!(
                "chaos: rename {} -> {} failed",
                from.display(),
                to.display()
            )));
        }
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdrmap-vfs-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn chaos(seed: u64, rate: f64, budget: FsFaultBudget) -> ChaosVfs {
        ChaosVfs::new(ChaosFsConfig {
            seed,
            fault_rate: rate,
            budget,
        })
    }

    #[test]
    fn real_vfs_round_trips() {
        let dir = tmp_dir("real");
        let vfs = Vfs::real();
        let p = dir.join("a.bin");
        vfs.write_atomic(&p, b"payload").unwrap();
        assert_eq!(vfs.read(&p).unwrap(), b"payload");
        let q = dir.join("b.bin");
        vfs.rename(&p, &q).unwrap();
        assert_eq!(vfs.read(&q).unwrap(), b"payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let dir = tmp_dir("seed");
        let budget = FsFaultBudget {
            enospc: 2,
            short_write: 2,
            fsync_fail: 2,
            torn_rename: 2,
            ..Default::default()
        };
        let mut logs = Vec::new();
        for round in 0..2 {
            let c = chaos(99, 0.5, budget);
            let vfs = c.vfs();
            for i in 0..32 {
                let p = dir.join(format!("r{round}-f{i}.bin"));
                let _ = vfs.write_atomic(&p, b"0123456789abcdef0123456789abcdef");
            }
            // Normalise: drop the round-specific file names, keep op
            // index + kind (the schedule itself).
            logs.push(
                c.log()
                    .iter()
                    .map(|l| l.split(' ').take(2).collect::<Vec<_>>().join(" "))
                    .collect::<Vec<_>>(),
            );
            assert_eq!(c.injected_total(), 8, "budget fully drained");
        }
        assert_eq!(logs[0], logs[1], "same seed must replay identically");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_exhaustion_goes_clean() {
        let dir = tmp_dir("budget");
        let c = chaos(
            7,
            1.0,
            FsFaultBudget {
                enospc: 3,
                ..Default::default()
            },
        );
        let vfs = c.vfs();
        let mut failures = 0;
        for i in 0..10 {
            let p = dir.join(format!("f{i}.bin"));
            if vfs.write_atomic(&p, b"x").is_err() {
                failures += 1;
            } else {
                assert_eq!(std::fs::read(&p).unwrap(), b"x");
            }
        }
        assert_eq!(failures, 3, "rate 1.0 burns the whole budget first");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_and_short_write_leave_destination_untouched() {
        let dir = tmp_dir("writefaults");
        for (budget, tag) in [
            (
                FsFaultBudget {
                    enospc: 1,
                    ..Default::default()
                },
                "enospc",
            ),
            (
                FsFaultBudget {
                    short_write: 1,
                    ..Default::default()
                },
                "short",
            ),
            (
                FsFaultBudget {
                    fsync_fail: 1,
                    ..Default::default()
                },
                "fsync",
            ),
        ] {
            let c = chaos(1, 1.0, budget);
            let vfs = c.vfs();
            let p = dir.join(format!("{tag}.bin"));
            vfs.write_atomic(&p, b"old").unwrap_err();
            assert!(!p.exists(), "{tag}: destination must not appear");
            // After the budget drains, the same write succeeds.
            vfs.write_atomic(&p, b"new").unwrap();
            assert_eq!(std::fs::read(&p).unwrap(), b"new");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_rename_is_silent_and_truncated() {
        let dir = tmp_dir("torn");
        let c = chaos(
            3,
            1.0,
            FsFaultBudget {
                torn_rename: 1,
                ..Default::default()
            },
        );
        let vfs = c.vfs();
        let p = dir.join("t.bin");
        let data = vec![0xAAu8; 256];
        vfs.write_atomic(&p, &data).unwrap(); // lies: reports success
        let on_disk = std::fs::read(&p).unwrap();
        assert!(on_disk.len() < data.len(), "must be truncated");
        assert_eq!(on_disk, data[..on_disk.len()], "must be a prefix");
        assert_eq!(c.injected(FaultKind::TornRename), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit() {
        let dir = tmp_dir("bitrot");
        let p = dir.join("r.bin");
        let data = vec![0u8; 64];
        std::fs::write(&p, &data).unwrap();
        let c = chaos(
            5,
            1.0,
            FsFaultBudget {
                bit_rot: 1,
                ..Default::default()
            },
        );
        let vfs = c.vfs();
        let rotten = vfs.read(&p).unwrap();
        let flipped: u32 = rotten.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flips");
        // The file itself is untouched; a second read (budget spent) is
        // clean.
        assert_eq!(vfs.read(&p).unwrap(), data);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rename_fail_keeps_source() {
        let dir = tmp_dir("renamefail");
        let p = dir.join("src.bin");
        std::fs::write(&p, b"keep").unwrap();
        let c = chaos(
            9,
            1.0,
            FsFaultBudget {
                rename_fail: 1,
                ..Default::default()
            },
        );
        let vfs = c.vfs();
        let q = dir.join("dst.bin");
        vfs.rename(&p, &q).unwrap_err();
        assert!(p.exists() && !q.exists());
        vfs.rename(&p, &q).unwrap();
        assert!(!p.exists() && q.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn real_append_accumulates() {
        let dir = tmp_dir("append");
        let vfs = Vfs::real();
        let p = dir.join("log.wal");
        vfs.append(&p, b"one").unwrap();
        vfs.append(&p, b"two").unwrap();
        assert_eq!(vfs.read(&p).unwrap(), b"onetwo");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_append_leaves_torn_suffix() {
        let dir = tmp_dir("shortappend");
        let c = chaos(
            13,
            1.0,
            FsFaultBudget {
                short_write: 1,
                ..Default::default()
            },
        );
        let vfs = c.vfs();
        let p = dir.join("log.wal");
        vfs.append(&p, b"head").unwrap_err();
        // Half the record landed: the reader's framing must catch this.
        assert_eq!(std::fs::read(&p).unwrap(), b"he");
        // Budget spent, the next append is clean and goes after the tear.
        vfs.append(&p, b"tail").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"hetail");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_fail_append_lands_bytes_but_reports_failure() {
        let dir = tmp_dir("fsyncappend");
        let c = chaos(
            15,
            1.0,
            FsFaultBudget {
                fsync_fail: 1,
                ..Default::default()
            },
        );
        let vfs = c.vfs();
        let p = dir.join("log.wal");
        vfs.append(&p, b"ghost").unwrap_err();
        // The unacknowledged record is nonetheless on disk whole.
        assert_eq!(std::fs::read(&p).unwrap(), b"ghost");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_append_writes_nothing() {
        let dir = tmp_dir("enospcappend");
        let c = chaos(
            17,
            1.0,
            FsFaultBudget {
                enospc: 1,
                ..Default::default()
            },
        );
        let vfs = c.vfs();
        let p = dir.join("log.wal");
        vfs.append(&p, b"never").unwrap_err();
        assert!(!p.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quiesce_stops_injection() {
        let dir = tmp_dir("quiesce");
        let c = chaos(
            11,
            1.0,
            FsFaultBudget {
                enospc: 100,
                ..Default::default()
            },
        );
        c.quiesce();
        let vfs = c.vfs();
        for i in 0..5 {
            vfs.write_atomic(&dir.join(format!("q{i}.bin")), b"ok")
                .unwrap();
        }
        assert_eq!(c.injected_total(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
