//! Autonomous system numbers, organisations, and business relationships.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An autonomous system number.
///
/// The simulator allocates ASNs densely from 1, so `Asn` doubles as a
/// compact index into per-AS vectors. ASN 0 is reserved and never assigned;
/// [`Asn::RESERVED`] is used as a sentinel for "no AS".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl Asn {
    /// Sentinel for "no AS" (ASN 0 is reserved by IANA).
    pub const RESERVED: Asn = Asn(0);

    /// True if this is a real, assigned ASN.
    #[inline]
    pub fn is_assigned(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// An organisation identifier.
///
/// Multiple ASes under common administrative control (*siblings*, §4
/// challenge 5 of the paper) share one `OrgId`. bdrmap treats a match
/// against any sibling of the expected AS as a correct ownership inference,
/// mirroring the paper's validation methodology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OrgId(pub u32);

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "org{}", self.0)
    }
}

impl fmt::Debug for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "org{}", self.0)
    }
}

/// Business relationship between two ASes, from the perspective of the
/// first ("near") AS.
///
/// The simulator and the relationship-inference pass both use the
/// conventional Gao–Rexford model: links are either customer-to-provider
/// or settlement-free peer-to-peer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Relationship {
    /// The far AS is a customer of the near AS.
    Customer,
    /// The two ASes are settlement-free peers.
    Peer,
    /// The far AS is a provider of the near AS.
    Provider,
}

impl Relationship {
    /// The same link viewed from the other side.
    #[inline]
    pub fn flip(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Peer => Relationship::Peer,
            Relationship::Provider => Relationship::Customer,
        }
    }

    /// Route preference under Gao–Rexford economics: routes learned from
    /// customers are preferred over peers, which are preferred over
    /// providers (lower is better).
    #[inline]
    pub fn preference(self) -> u8 {
        match self {
            Relationship::Customer => 0,
            Relationship::Peer => 1,
            Relationship::Provider => 2,
        }
    }

    /// Whether a route learned over this kind of link may be exported to a
    /// neighbor of kind `to`. Under valley-free export, routes learned from
    /// peers or providers are only exported to customers.
    #[inline]
    pub fn exportable_to(self, to: Relationship) -> bool {
        match self {
            // Customer routes go to everyone.
            Relationship::Customer => true,
            // Peer and provider routes go only to customers.
            Relationship::Peer | Relationship::Provider => to == Relationship::Customer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involution() {
        for r in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
        ] {
            assert_eq!(r.flip().flip(), r);
        }
    }

    #[test]
    fn customer_routes_export_everywhere() {
        for to in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
        ] {
            assert!(Relationship::Customer.exportable_to(to));
        }
    }

    #[test]
    fn peer_and_provider_routes_export_only_to_customers() {
        for from in [Relationship::Peer, Relationship::Provider] {
            assert!(from.exportable_to(Relationship::Customer));
            assert!(!from.exportable_to(Relationship::Peer));
            assert!(!from.exportable_to(Relationship::Provider));
        }
    }

    #[test]
    fn preference_orders_customer_first() {
        assert!(Relationship::Customer.preference() < Relationship::Peer.preference());
        assert!(Relationship::Peer.preference() < Relationship::Provider.preference());
    }

    #[test]
    fn asn_display() {
        assert_eq!(Asn(64512).to_string(), "AS64512");
        assert!(!Asn::RESERVED.is_assigned());
        assert!(Asn(1).is_assigned());
    }
}
