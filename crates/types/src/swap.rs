//! Hot-swappable shared snapshots with lock-free readers.
//!
//! [`SwapCell`] holds an `Arc<T>` behind an atomic pointer so a writer
//! can publish a replacement while readers keep serving from whichever
//! snapshot they grabbed — the read path a query daemon needs to reload
//! its index without dropping in-flight requests.
//!
//! Readers register once (producing a [`SwapReader`]) and then [`load`]
//! with three atomic operations and no locks; reclamation is epoch
//! based: the writer swaps the pointer, bumps the epoch, and waits for
//! every registered reader to either be idle or pinned at a later epoch
//! before dropping the displaced snapshot. The reader's pinned window is
//! a handful of instructions and never blocks, so the writer's wait is
//! bounded and the hot path stays wait-free in practice.
//!
//! [`load`]: SwapReader::load

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// A slot shared by one reader and the writer: 0 when the reader is
/// idle, otherwise the epoch the reader pinned at.
type Slot = Arc<AtomicU64>;

/// An atomically replaceable `Arc<T>`.
///
/// # Examples
///
/// ```
/// use bdrmap_types::SwapCell;
/// use std::sync::Arc;
///
/// let cell = Arc::new(SwapCell::new(Arc::new(1u32)));
/// let reader = SwapCell::reader(&cell);
/// assert_eq!(*reader.load(), 1);
/// cell.store(Arc::new(2));
/// assert_eq!(*reader.load(), 2);
/// ```
pub struct SwapCell<T> {
    /// The current snapshot, as a raw pointer owning one strong count.
    ptr: AtomicPtr<T>,
    /// Publication epoch; starts at 1 and increments on every store, so
    /// 0 is free to mean "idle" in reader slots.
    epoch: AtomicU64,
    /// One slot per registered reader.
    slots: Mutex<Vec<Slot>>,
    /// Serializes writers (and the slow-path load).
    writer: Mutex<()>,
}

impl<T> SwapCell<T> {
    /// A cell holding `value`.
    pub fn new(value: Arc<T>) -> SwapCell<T> {
        SwapCell {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            epoch: AtomicU64::new(1),
            slots: Mutex::new(Vec::new()),
            writer: Mutex::new(()),
        }
    }

    /// Register a lock-free reader. Each worker thread should hold its
    /// own; the handle keeps the cell alive.
    pub fn reader(cell: &Arc<SwapCell<T>>) -> SwapReader<T> {
        let slot: Slot = Arc::new(AtomicU64::new(0));
        cell.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&slot));
        SwapReader {
            cell: Arc::clone(cell),
            slot,
        }
    }

    /// Publish `new`, retiring the current snapshot once every
    /// registered reader has moved past it. Readers that already cloned
    /// the old `Arc` keep it alive for as long as they need.
    pub fn store(&self, new: Arc<T>) {
        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let old = self.ptr.swap(Arc::into_raw(new) as *mut T, SeqCst);
        let retired_epoch = self.epoch.fetch_add(1, SeqCst);
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        for slot in slots.iter() {
            // Wait out readers pinned at or before the retired epoch;
            // they may be mid-clone of the old pointer. Their pinned
            // window never blocks, so this spin is bounded.
            loop {
                let pinned = slot.load(SeqCst);
                if pinned == 0 || pinned > retired_epoch {
                    break;
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        // Now no reader can still be dereferencing the old pointer.
        unsafe { drop(Arc::from_raw(old)) };
    }

    /// Current snapshot via the writer lock — for control paths and
    /// threads that have not registered a [`SwapReader`].
    pub fn load_locked(&self) -> Arc<T> {
        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let ptr = self.ptr.load(SeqCst);
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Number of publications so far (1 for a freshly built cell).
    pub fn generation(&self) -> u64 {
        self.epoch.load(SeqCst)
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        unsafe { drop(Arc::from_raw(self.ptr.load(SeqCst))) };
    }
}

// The cell only hands out `Arc<T>`, so the usual Arc bounds apply.
unsafe impl<T: Send + Sync> Send for SwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}

/// A registered reader of a [`SwapCell`].
pub struct SwapReader<T> {
    cell: Arc<SwapCell<T>>,
    slot: Slot,
}

impl<T> SwapReader<T> {
    /// Clone the current snapshot without taking any lock.
    pub fn load(&self) -> Arc<T> {
        loop {
            let seen = self.cell.epoch.load(SeqCst);
            self.slot.store(seen, SeqCst);
            // If a writer published between our epoch read and the pin,
            // it may have missed our pin when scanning slots; retry so
            // we never dereference a pointer it might have retired.
            if self.cell.epoch.load(SeqCst) != seen {
                self.slot.store(0, SeqCst);
                continue;
            }
            let ptr = self.cell.ptr.load(SeqCst);
            let arc = unsafe {
                Arc::increment_strong_count(ptr);
                Arc::from_raw(ptr)
            };
            self.slot.store(0, SeqCst);
            return arc;
        }
    }

    /// The cell this reader is registered with.
    pub fn cell(&self) -> &Arc<SwapCell<T>> {
        &self.cell
    }
}

impl<T> Drop for SwapReader<T> {
    fn drop(&mut self) {
        let mut slots = self.cell.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.retain(|s| !Arc::ptr_eq(s, &self.slot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn load_sees_latest_store() {
        let cell = Arc::new(SwapCell::new(Arc::new(10u64)));
        let r = SwapCell::reader(&cell);
        assert_eq!(*r.load(), 10);
        assert_eq!(cell.generation(), 1);
        cell.store(Arc::new(11));
        assert_eq!(*r.load(), 11);
        assert_eq!(*cell.load_locked(), 11);
        assert_eq!(cell.generation(), 2);
    }

    #[test]
    fn retired_snapshots_are_dropped() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SwapCell::new(Arc::new(Counted(Arc::clone(&drops)))));
        let r = SwapCell::reader(&cell);
        let held = r.load();
        cell.store(Arc::new(Counted(Arc::clone(&drops))));
        // The reader's clone keeps the first snapshot alive.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(held);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(r);
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    /// The reload pattern a serving daemon uses: build the replacement
    /// value inside `catch_unwind`, store only on success. A build that
    /// panics mid-way must leave the old epoch readable and must not
    /// poison later swaps.
    #[test]
    fn panicking_build_leaves_cell_usable() {
        let cell = Arc::new(SwapCell::new(Arc::new(10u64)));
        let r = SwapCell::reader(&cell);

        // The "reload": a builder that panics before producing a value.
        let build = || -> Arc<u64> { panic!("index build exploded") };
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let next = build();
            cell.store(next);
        }));
        assert!(attempt.is_err(), "build must have panicked");

        // Old snapshot still served, epoch unchanged.
        assert_eq!(*r.load(), 10);
        assert_eq!(*cell.load_locked(), 10);
        assert_eq!(cell.generation(), 1);

        // A later good reload swaps normally — nothing was poisoned.
        cell.store(Arc::new(11));
        assert_eq!(*r.load(), 11);
        assert_eq!(cell.generation(), 2);

        // Same property when the panic happens on another thread (the
        // worker-thread shape bdrmapd actually runs).
        fn exploding_build(n: u64) -> Arc<u64> {
            assert!(n < 12, "cross-thread build exploded");
            Arc::new(n)
        }
        let cell2 = Arc::clone(&cell);
        let handle = std::thread::spawn(move || {
            cell2.store(exploding_build(12));
        });
        assert!(handle.join().is_err());
        assert_eq!(*r.load(), 11);
        cell.store(Arc::new(12));
        assert_eq!(*r.load(), 12);
        assert_eq!(cell.generation(), 3);
    }

    /// Hammer the cell from several readers while a writer swaps
    /// continuously; every load must observe a coherent snapshot.
    #[test]
    fn concurrent_swaps_never_tear() {
        // Invariant carried by each snapshot: b == a + 1.
        let cell = Arc::new(SwapCell::new(Arc::new((0u64, 1u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let started = Arc::new(AtomicUsize::new(0));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let r = SwapCell::reader(&cell);
            let stop = Arc::clone(&stop);
            let started = Arc::clone(&started);
            readers.push(std::thread::spawn(move || {
                let mut loads = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let snap = r.load();
                    assert_eq!(snap.1, snap.0 + 1, "torn snapshot");
                    loads += 1;
                    if loads == 1 {
                        started.fetch_add(1, Ordering::SeqCst);
                    }
                }
                loads
            }));
        }
        // Don't start (or stop) swapping until every reader has loaded
        // at least once, so the test races reads against writes rather
        // than against thread spawn latency on a loaded machine.
        while started.load(Ordering::SeqCst) < 4 {
            std::thread::yield_now();
        }
        for i in 1..500u64 {
            cell.store(Arc::new((i, i + 1)));
        }
        stop.store(true, Ordering::SeqCst);
        for h in readers {
            assert!(h.join().unwrap() > 0, "reader made no progress");
        }
        let r = SwapCell::reader(&cell);
        assert_eq!(*r.load(), (499, 500));
        assert_eq!(cell.generation(), 500);
    }
}
