//! Length-prefixed binary wire helpers.
//!
//! The workspace's on-disk stores (`BDRW`, `BDRC`) hand-roll big-endian
//! encoding over the vendored `bytes` crate; this module is the shared,
//! dependency-free equivalent for the serving path: a growable writer, a
//! bounds-checked reader, and frame I/O (`u32` length + payload) over
//! any `Read`/`Write` — the framing bdrmapd speaks on TCP and the
//! snapshot codec uses on disk.

use std::io::{self, Read, Write};

/// Hard cap on a frame's payload, protecting both sides from a
/// corrupted or hostile length prefix.
pub const MAX_FRAME: usize = 1 << 22;

/// A decode failure: the buffer ended before the value did, or a length
/// field pointed past the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError;

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated or malformed wire data")
    }
}

impl std::error::Error for WireError {}

/// Big-endian binary writer over a growable buffer.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes with no length prefix.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a `u16` length followed by the bytes.
    pub fn put_bytes16(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= u16::MAX as usize);
        self.put_u16(v.len() as u16);
        self.put_slice(v);
    }

    /// Append a `u32` length followed by the bytes — for embedded
    /// records (journal trace bodies) that can outgrow a `u16` prefix.
    pub fn put_bytes32(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= u32::MAX as usize);
        self.put_u32(v.len() as u32);
        self.put_slice(v);
    }

    /// Append a UTF-8 string as [`put_bytes16`](Self::put_bytes16).
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes16(v.as_bytes());
    }

    /// The encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked big-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Next byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Next big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Next big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Next big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next `u16`-length-prefixed byte run.
    pub fn get_bytes16(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_u16()? as usize;
        self.take(n)
    }

    /// Next `u32`-length-prefixed byte run.
    pub fn get_bytes32(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Next `u16`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes16()?).map_err(|_| WireError)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fail unless every byte was consumed — rejects trailing garbage.
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError)
        }
    }
}

/// Write one frame: a big-endian `u32` payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on clean end-of-stream (the peer
/// closed between frames); a close mid-frame is an error.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_str("hi");
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_str().unwrap(), "hi");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.put_u32(1);
        w.put_str("hello");
        let buf = w.into_vec();
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            let ok = r.get_u32().and_then(|_| r.get_str().map(|_| ()));
            assert_eq!(ok, Err(WireError), "cut at {cut}");
        }
    }

    #[test]
    fn bytes32_round_trip_and_truncation() {
        let big = vec![0xabu8; 70_000]; // longer than a u16 prefix allows
        let mut w = WireWriter::new();
        w.put_bytes32(&big);
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_bytes32().unwrap(), &big[..]);
        r.finish().unwrap();
        let mut short = WireReader::new(&buf[..buf.len() - 1]);
        assert_eq!(short.get_bytes32(), Err(WireError));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let buf = [1u8, 2, 3];
        let mut r = WireReader::new(&buf);
        r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(WireError));
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"beta").unwrap();
        let mut cursor = io::Cursor::new(stream);
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap().as_deref(),
            Some(&b"alpha"[..])
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap().as_deref(),
            Some(&b"beta"[..])
        );
        assert_eq!(read_frame(&mut cursor, MAX_FRAME).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &[0u8; 64]).unwrap();
        let mut cursor = io::Cursor::new(stream);
        assert!(read_frame(&mut cursor, 16).is_err());
    }

    #[test]
    fn mid_frame_close_is_an_error() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"abcdef").unwrap();
        stream.truncate(stream.len() - 2);
        let mut cursor = io::Cursor::new(stream);
        assert!(read_frame(&mut cursor, MAX_FRAME).is_err());
    }
}
