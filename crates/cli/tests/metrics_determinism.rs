//! Acceptance: metrics are deterministic under fault seeds.
//!
//! Two `bdrmap run --fault-seed N --metrics-out <path>` invocations
//! with identical flags must write identical values for every
//! virtual-time metric family. The registry is process-global, so each
//! run gets its own subprocess of the real binary — exactly the shape
//! a user or CI job sees.
//!
//! Wall-clock families (suffix `_us`) are the one documented exemption
//! (DESIGN.md §10): build/stage durations depend on the host, not the
//! seed. Everything else — packets probed, alias tests, heuristic rule
//! attributions, cache hits, quarantine events — is a pure function of
//! (topology, seed, config) and must not drift by a single count.

use std::process::Command;

fn run_with_metrics(tag: &str, fault_seed: &str) -> String {
    let out = std::env::temp_dir().join(format!(
        "bdrmap-metrics-det-{}-{tag}.prom",
        std::process::id()
    ));
    let status = Command::new(env!("CARGO_BIN_EXE_bdrmap"))
        .args([
            "run",
            "--preset",
            "tiny",
            "--seed",
            "7",
            "--fault-seed",
            fault_seed,
            "--loss",
            "0.05",
            "--metrics-out",
        ])
        .arg(&out)
        .output()
        .expect("bdrmap binary runs");
    assert!(
        status.status.success(),
        "bdrmap run failed:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
    let text = std::fs::read_to_string(&out).expect("metrics file written");
    std::fs::remove_file(&out).ok();
    text
}

/// Keep only deterministic lines: drop `# `-comments tied to dropped
/// families and every sample from a wall-clock (`_us`) family.
fn virtual_time_lines(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| {
            let name = l
                .strip_prefix("# TYPE ")
                .map(|rest| rest.split(' ').next().unwrap_or(""))
                .unwrap_or_else(|| l.split(['{', ' ']).next().unwrap_or(""));
            // Histogram samples append `_bucket`/`_sum`/`_count` to the
            // family name; strip them before the wall-clock check.
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            !family.ends_with("_us")
        })
        .map(str::to_string)
        .collect()
}

#[test]
fn same_fault_seed_same_virtual_time_metrics() {
    let a = run_with_metrics("a", "9");
    let b = run_with_metrics("b", "9");
    let va = virtual_time_lines(&a);
    let vb = virtual_time_lines(&b);
    assert!(
        va.iter()
            .any(|l| l.starts_with("bdrmap_probe_packets_total")),
        "exposition missing probe counters:\n{a}"
    );
    assert!(
        va.iter()
            .any(|l| l.starts_with("bdrmap_heuristic_routers_total")),
        "exposition missing heuristic attribution:\n{a}"
    );
    assert_eq!(
        va, vb,
        "identically-seeded runs disagreed on virtual-time metrics"
    );
    // And the exemption is real: the same two runs *did* measure
    // wall-clock somewhere (stage histograms exist in both).
    assert!(a.contains("bdrmap_pipeline_stage_us"));
    assert!(b.contains("bdrmap_pipeline_stage_us"));
}

#[test]
fn different_fault_seed_changes_probe_metrics() {
    let a = run_with_metrics("c", "9");
    let b = run_with_metrics("d", "10");
    let va = virtual_time_lines(&a);
    let vb = virtual_time_lines(&b);
    // Different fault seeds reorder losses, so retry/packet counts
    // should differ — if they never do, the fault plumbing is dead and
    // the determinism test above is vacuous.
    assert_ne!(
        va, vb,
        "fault seed had no effect on any virtual-time metric"
    );
}
