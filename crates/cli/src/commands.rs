//! Subcommand implementations.

use crate::args::{ArgError, Args};
use bdrmap_core::{merge_maps, BdrmapConfig};
use bdrmap_eval::report::TextTable;
use bdrmap_eval::Scenario;
use bdrmap_serve::{Client, LoadgenConfig, Request, Response, ServeConfig, Server};
use bdrmap_topo::TopoConfig;
use bdrmap_types::{Asn, Prefix};

/// Resolve `--preset/--seed/--scale` into a generator config.
pub fn preset(args: &Args) -> Result<TopoConfig, ArgError> {
    let seed: u64 = args.get_parse("seed", 42)?;
    let scale: f64 = args.get_parse("scale", 0.1)?;
    let name = args.get("preset").unwrap_or("tiny");
    let cfg = match name {
        "tiny" => TopoConfig::tiny(seed),
        "re" | "r&e" => TopoConfig::re_network(seed),
        "large-access" | "access" => {
            if args.flag("full") {
                TopoConfig::large_access(seed)
            } else {
                TopoConfig::large_access_scaled(seed, scale)
            }
        }
        "tier1" => {
            if args.flag("full") {
                TopoConfig::tier1(seed)
            } else {
                TopoConfig::tier1_scaled(seed, scale)
            }
        }
        "small-access" => TopoConfig::small_access(seed),
        other => return Err(ArgError(format!("unknown preset: {other}"))),
    };
    Ok(cfg)
}

/// Resolve `--alias-parallelism`: defaults to the machine's available
/// cores. Alias output is byte-identical at any value (each pair test
/// is an isolated task), so this only trades wall time for threads.
fn alias_parallelism(args: &Args) -> Result<usize, ArgError> {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n: usize = args.get_parse("alias-parallelism", default)?;
    if n == 0 {
        return Err(ArgError(
            "--alias-parallelism must be at least 1 (0 workers cannot make progress)".into(),
        ));
    }
    Ok(n)
}

fn bdrmap_config(args: &Args) -> Result<BdrmapConfig, ArgError> {
    Ok(BdrmapConfig {
        alias_resolution: !args.flag("no-alias"),
        addrs_per_block: if args.flag("one-addr") { 1 } else { 5 },
        use_stop_sets: !args.flag("no-stop-sets"),
        alias_parallelism: alias_parallelism(args)?,
        ..Default::default()
    })
}

/// Resolve `--snapshot-version`: which BDRM format run/watch/chaos
/// write. Defaults to the newest (v3, the flat zero-copy layout).
fn snapshot_version(args: &Args) -> Result<u16, ArgError> {
    let v: u16 = args.get_parse("snapshot-version", bdrmap_core::snapshot::DEFAULT_VERSION)?;
    if !(1..=bdrmap_core::snapshot::LATEST_VERSION).contains(&v) {
        return Err(ArgError(format!(
            "--snapshot-version {v} unsupported (have 1..={})",
            bdrmap_core::snapshot::LATEST_VERSION
        )));
    }
    Ok(v)
}

/// Resolve `--vp` against the scenario, rejecting out-of-range indices
/// with an error instead of an index panic deep in the pipeline.
fn vp_index(args: &Args, sc: &Scenario) -> Result<usize, ArgError> {
    let vp: usize = args.get_parse("vp", 0)?;
    if vp >= sc.num_vps() {
        return Err(ArgError(format!(
            "--vp {vp} out of range (have {})",
            sc.num_vps()
        )));
    }
    Ok(vp)
}

/// Resolve `--fault-seed/--loss/--flap` into a fault plan, or `None`
/// when no fault was requested (keeping the exact pre-fault code path).
fn fault_args(args: &Args) -> Result<Option<bdrmap_dataplane::FaultPlan>, ArgError> {
    let seed: u64 = args.get_parse("fault-seed", 1)?;
    let loss: f64 = args.get_parse("loss", 0.0)?;
    let flap: f64 = args.get_parse("flap", 0.0)?;
    if !(0.0..=1.0).contains(&loss) || !(0.0..=1.0).contains(&flap) {
        return Err(ArgError(format!(
            "--loss/--flap must be in [0, 1], got {loss}/{flap}"
        )));
    }
    if loss == 0.0 && flap == 0.0 {
        return Ok(None);
    }
    Ok(Some(bdrmap_eval::degradation::fault_plan(seed, loss, flap)))
}

/// `bdrmap generate`: build a topology, print the inventory.
pub fn generate(args: &Args) -> Result<(), ArgError> {
    let cfg = preset(args)?;
    let sc = Scenario::build(args.get("preset").unwrap_or("tiny"), &cfg);
    let net = sc.net();
    println!(
        "generated: {} ASes, {} routers, {} interfaces, {} links, {} routed prefixes, {} IXPs, {} VPs",
        net.graph.num_ases(),
        net.routers.len(),
        net.ifaces.len(),
        net.links.len(),
        net.origins.len(),
        net.ixps.len(),
        net.vps.len()
    );
    let mut kinds: std::collections::BTreeMap<String, usize> = Default::default();
    for a in net.graph.ases() {
        *kinds
            .entry(format!("{:?}", net.as_info(a).kind))
            .or_insert(0) += 1;
    }
    let mut t = TextTable::new(&["AS kind", "count"]);
    for (k, c) in kinds {
        t.row(vec![k, c.to_string()]);
    }
    println!("\n{}", t.render());
    println!(
        "measured network: {} ({} PoPs, {} interdomain links, {} BGP neighbors)",
        net.vp_as,
        net.as_info(net.vp_as).pops.len(),
        net.border_links_of(net.vp_as).len(),
        net.graph.neighbors(net.vp_as).len()
    );
    Ok(())
}

/// `bdrmap run`: one VP, full pipeline, printed border map + score.
pub fn run(args: &Args) -> Result<(), ArgError> {
    let cfg = preset(args)?;
    let sc = Scenario::build(args.get("preset").unwrap_or("tiny"), &cfg);
    let vp = vp_index(args, &sc)?;
    let map = match fault_args(args)? {
        Some(plan) => {
            // Faulted runs go through the self-healing engine and probe
            // sequentially, so identical flags replay identically.
            sc.dp.set_faults(plan);
            let engine = bdrmap_probe::ProbeEngine::new(
                std::sync::Arc::clone(&sc.dp),
                sc.net().vps[vp].addr,
                bdrmap_eval::degradation::hardened_config(),
            );
            let cfg = BdrmapConfig {
                parallelism: 1,
                alias_parallelism: 1,
                ..bdrmap_config(args)?
            };
            let m = bdrmap_core::run_bdrmap(&engine, &sc.input, &cfg);
            sc.dp.clear_faults();
            m
        }
        None => sc.run_vp(vp, &bdrmap_config(args)?),
    };
    println!(
        "vp{} probed {} packets ({:.2} simulated h at 100 pps)\n",
        vp,
        map.packets,
        map.elapsed_ms as f64 / 3.6e6
    );
    let mut t = TextTable::new(&["neighbor", "links", "heuristics"]);
    for (nb, links) in map.links_by_neighbor() {
        let mut tags: Vec<String> = links.iter().map(|l| format!("{:?}", l.heuristic)).collect();
        tags.sort();
        tags.dedup();
        t.row(vec![
            nb.to_string(),
            links.len().to_string(),
            tags.join(","),
        ]);
    }
    println!("{}", t.render());
    let neighbors = sc.input.view.neighbors_of(sc.net().vp_as);
    let v = bdrmap_eval::validate::validate(sc.net(), &neighbors, &map);
    println!(
        "validation: {}/{} links correct ({:.1}%), BGP coverage {:.1}%, owner accuracy {:.1}%",
        v.links_correct,
        v.links_total,
        v.link_accuracy() * 100.0,
        v.bgp_coverage() * 100.0,
        v.owner_accuracy() * 100.0
    );
    if let Some(out) = args.get("map-out") {
        bdrmap_core::snapshot::save_as(std::path::Path::new(out), &map, snapshot_version(args)?)
            .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
        println!(
            "wrote border-map snapshot to {out} (serve it with `bdrmap serve --snapshot {out}`)"
        );
    }
    if let Some(dir) = args.get("snap-dir") {
        let store = bdrmap_core::SnapStore::open(dir)
            .map_err(|e| ArgError(format!("opening snapshot store {dir}: {e}")))?
            .with_snapshot_version(snapshot_version(args)?);
        let generation = store
            .publish(&map)
            .map_err(|e| ArgError(format!("publishing into {dir}: {e}")))?;
        println!(
            "published generation {generation} into {dir} (serve it with `bdrmap serve --snap-dir {dir}`)"
        );
    }
    write_metrics_out(args)?;
    Ok(())
}

/// Write the global metric exposition to `--metrics-out`, when given.
///
/// Everything recorded during the invocation — probe engine, alias
/// resolution, pipeline stages, heuristics attribution — lands in one
/// Prometheus-style exposition. Count-valued families are pure
/// functions of (preset, seed, fault flags); only `_us` wall-clock
/// families vary between identically-seeded runs.
fn write_metrics_out(args: &Args) -> Result<(), ArgError> {
    if let Some(out) = args.get("metrics-out") {
        bdrmap_types::fsutil::write_atomic(
            std::path::Path::new(out),
            bdrmap_obs::global().render().as_bytes(),
        )
        .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
        println!("wrote metric exposition to {out}");
    }
    Ok(())
}

/// `bdrmap merge`: all VPs merged into one interconnectivity view.
pub fn merge(args: &Args) -> Result<(), ArgError> {
    let cfg = preset(args)?;
    let sc = Scenario::build(args.get("preset").unwrap_or("tiny"), &cfg);
    let nvps: usize = args.get_parse("vps", sc.num_vps())?;
    let nvps = nvps.min(sc.num_vps());
    let bcfg = bdrmap_config(args)?;
    let maps: Vec<_> = (0..nvps).map(|i| sc.run_vp(i, &bcfg)).collect();
    // Each per-VP run above reports its stage timings through
    // `run_stages`; the cross-VP union is the one stage that happens
    // nowhere else, so it gets accounted here.
    let t = std::time::Instant::now();
    let merged = merge_maps(&maps);
    bdrmap_core::pipeline::record_extra_stage("merge", t.elapsed().as_secs_f64() * 1e3);
    let reg = bdrmap_obs::global();
    reg.gauge("bdrmap_merge_vps", &[]).set(merged.vps as u64);
    reg.gauge("bdrmap_merge_routers", &[])
        .set(merged.routers.len() as u64);
    reg.gauge("bdrmap_merge_links", &[])
        .set(merged.links.len() as u64);
    println!(
        "merged {} VPs: {} routers, {} links, {} neighbors",
        merged.vps,
        merged.routers.len(),
        merged.links.len(),
        merged.neighbors().len()
    );
    // Top neighbors by link count — the inference-side Figure 15 view.
    let mut by_links: Vec<_> = merged.links_per_neighbor().into_iter().collect();
    by_links.sort_by_key(|&(a, c)| (std::cmp::Reverse(c), a));
    let mut t = TextTable::new(&["neighbor", "links (merged)", "name"]);
    for (nb, c) in by_links.iter().take(15) {
        t.row(vec![
            nb.to_string(),
            c.to_string(),
            sc.net().as_info(*nb).name.clone(),
        ]);
    }
    println!("\n{}", t.render());
    write_metrics_out(args)?;
    Ok(())
}

/// `bdrmap table1`: the Table 1 suite.
pub fn table1(args: &Args) -> Result<(), ArgError> {
    let full = args.flag("full");
    let seed: u64 = args.get_parse("seed", 1)?;
    let scale: f64 = args.get_parse("scale", 0.12)?;
    let scenarios: Vec<(&str, TopoConfig)> = vec![
        ("R&E network", TopoConfig::re_network(seed)),
        (
            "Large access network",
            if full {
                TopoConfig::large_access(seed + 1)
            } else {
                TopoConfig::large_access_scaled(seed + 1, scale)
            },
        ),
        (
            "Tier-1 network",
            if full {
                TopoConfig::tier1(seed + 2)
            } else {
                TopoConfig::tier1_scaled(seed + 2, scale)
            },
        ),
        ("Small access network", TopoConfig::small_access(seed + 3)),
    ];
    for (name, cfg) in scenarios {
        let sc = Scenario::build(name, &cfg);
        let map = sc.run_vp(0, &bdrmap_config(args)?);
        println!(
            "{}",
            bdrmap_eval::table1::render(&bdrmap_eval::table1::table1(&sc, &map))
        );
        let neighbors = sc.input.view.neighbors_of(sc.net().vp_as);
        let v = bdrmap_eval::validate::validate(sc.net(), &neighbors, &map);
        println!(
            "validation: {:.1}% links correct, {:.1}% coverage (paper: 96.3-98.9%, 92.2-96.8%)\n",
            v.link_accuracy() * 100.0,
            v.bgp_coverage() * 100.0
        );
    }
    Ok(())
}

/// `bdrmap insights`: Figures 14/15/16.
pub fn insights(args: &Args) -> Result<(), ArgError> {
    let seed: u64 = args.get_parse("seed", 20)?;
    let scale: f64 = args.get_parse("scale", 0.1)?;
    let cfg = if args.flag("full") {
        TopoConfig::large_access(seed)
    } else {
        TopoConfig::large_access_scaled(seed, scale)
    };
    let sc = Scenario::build("large access network", &cfg);
    let per_vp =
        bdrmap_eval::insights::collect_vp_traces(&sc, if args.flag("full") { 5 } else { 3 });

    let f14 = bdrmap_eval::insights::fig14(&sc, &per_vp);
    println!(
        "Figure 14 ({} prefixes, {} far):",
        f14.all.per_prefix.len(),
        f14.far.per_prefix.len()
    );
    for (label, d) in [("all", &f14.all), ("far", &f14.far)] {
        println!(
            "  [{label}] 1 router {:.1}% | 5-15 {:.1}% | >15 {:.1}% | same next-hop {:.1}%",
            d.frac_routers(|r| r == 1) * 100.0,
            d.frac_routers(|r| (5..=15).contains(&r)) * 100.0,
            d.frac_routers(|r| r > 15) * 100.0,
            d.frac_same_next_hop() * 100.0
        );
    }
    println!("\nFigure 15 (cumulative links by #VPs):");
    for c in bdrmap_eval::insights::fig15(&sc, &per_vp) {
        println!(
            "  {:<24} truth={:<3} {:?}",
            c.name, c.true_links, c.cumulative
        );
    }
    println!("\nFigure 16 (per-VP link longitudes, first/middle/last VP):");
    let f16 = bdrmap_eval::insights::fig16(&sc, &per_vp);
    for row in [f16.first(), f16.get(f16.len() / 2), f16.last()]
        .into_iter()
        .flatten()
    {
        print!("  vp{:<2} @ {:>7.1}:", row.vp, row.vp_longitude);
        for (name, lons) in &row.links {
            let s: Vec<String> = lons.iter().map(|l| format!("{l:.0}")).collect();
            print!("  {}=[{}]", name, s.join(","));
        }
        println!();
    }
    Ok(())
}

/// `bdrmap ablation`.
pub fn ablation(args: &Args) -> Result<(), ArgError> {
    let seed: u64 = args.get_parse("seed", 55)?;
    let scale: f64 = args.get_parse("scale", 0.08)?;
    let sc = Scenario::build(
        "ablation",
        &bdrmap_eval::ablation::stress_config(seed, scale),
    );
    let results = bdrmap_eval::ablation::run_ablations(&sc, 0);
    let mut t = TextTable::new(&[
        "variant", "links", "accuracy", "coverage", "routers", "packets",
    ]);
    for r in &results {
        t.row(vec![
            r.name.clone(),
            r.validation.links_total.to_string(),
            format!("{:.1}%", r.validation.link_accuracy() * 100.0),
            format!("{:.1}%", r.validation.bgp_coverage() * 100.0),
            r.routers.to_string(),
            r.packets.to_string(),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

/// `bdrmap resources`: §5.8 accounting.
pub fn resources(args: &Args) -> Result<(), ArgError> {
    let seed: u64 = args.get_parse("seed", 77)?;
    let sc = Scenario::build("resources", &TopoConfig::re_network(seed));
    let r = bdrmap_eval::resources::resources(&sc, 0);
    println!(
        "central {} B vs device {} B over {} traces — ratio ×{:.0} (paper: ≈43×)",
        r.central_bytes,
        r.device_bytes,
        r.traces,
        r.ratio()
    );
    Ok(())
}

/// `bdrmap probe`: trace collection only, saved to a warts-like store.
/// Decouples probing from inference exactly as scamper/warts does.
pub fn probe(args: &Args) -> Result<(), ArgError> {
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("probe needs --out <path>".into()))?;
    let cfg = preset(args)?;
    let sc = Scenario::build(args.get("preset").unwrap_or("tiny"), &cfg);
    let vp = vp_index(args, &sc)?;
    let faults = fault_args(args)?;
    let engine = match &faults {
        Some(plan) => {
            sc.dp.set_faults(plan.clone());
            bdrmap_probe::ProbeEngine::new(
                std::sync::Arc::clone(&sc.dp),
                sc.net().vps[vp].addr,
                bdrmap_eval::degradation::hardened_config(),
            )
        }
        None => sc.engine(vp),
    };
    let ip2as = sc.input.ip2as_for_probing();
    let targets = bdrmap_probe::target_blocks(&sc.input.view, &sc.input.vp_asns);
    let bcfg = bdrmap_config(args)?;
    let opts = bdrmap_probe::RunOptions {
        // Faulted runs probe sequentially so identical flags replay
        // identically (fault draws are keyed on probe send times).
        parallelism: if faults.is_some() {
            1
        } else {
            bcfg.parallelism
        },
        addrs_per_block: bcfg.addrs_per_block,
        use_stop_sets: bcfg.use_stop_sets,
        quarantine: faults
            .is_some()
            .then(bdrmap_probe::QuarantinePolicy::default),
    };
    let every: u32 = args.get_parse("checkpoint-every", 0)?;
    let coll = if every > 0 {
        let ckpt = std::path::PathBuf::from(format!("{out}.ckpt"));
        let resume = if args.flag("resume") && ckpt.exists() {
            let cp = bdrmap_probe::Checkpoint::load(&ckpt)
                .map_err(|e| ArgError(format!("reading {}: {e}", ckpt.display())))?;
            println!(
                "resuming from {} ({} traces, {} target ASes done)",
                ckpt.display(),
                cp.traces.len(),
                cp.next_target
            );
            Some(cp)
        } else {
            None
        };
        let ccfg = bdrmap_probe::CheckpointConfig {
            every,
            path: ckpt,
            vfs: bdrmap_types::Vfs::real(),
        };
        bdrmap_probe::run_traces_checkpointed(
            &engine,
            &targets,
            opts,
            |a| ip2as.is_external(a),
            &ccfg,
            resume,
        )
        .map_err(|e| ArgError(format!("writing {}: {e}", ccfg.path.display())))?
    } else {
        bdrmap_probe::run_traces(&engine, &targets, opts, |a| ip2as.is_external(a))
    };
    sc.dp.clear_faults();
    let n = coll.traces.len();
    let packets = coll.budget.packets;
    bdrmap_probe::store::save(std::path::Path::new(out), &coll)
        .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!("saved {n} traces ({packets} packets) to {out}");
    Ok(())
}

/// `bdrmap degradation`: sweep fault intensity, report precision/recall
/// of the border inference at each point.
pub fn degradation(args: &Args) -> Result<(), ArgError> {
    let cfg = preset(args)?;
    let sc = Scenario::build(args.get("preset").unwrap_or("tiny"), &cfg);
    let vp = vp_index(args, &sc)?;
    let fault_seed: u64 = args.get_parse("fault-seed", 1)?;
    let max_loss: f64 = args.get_parse("loss", 0.2)?;
    let max_flap: f64 = args.get_parse("flap", 0.25)?;
    if !(0.0..=1.0).contains(&max_loss) || !(0.0..=1.0).contains(&max_flap) {
        return Err(ArgError(format!(
            "--loss/--flap must be in [0, 1], got {max_loss}/{max_flap}"
        )));
    }
    let losses = [max_loss / 4.0, max_loss / 2.0, max_loss];
    let flaps = [max_flap];
    let points = bdrmap_eval::degradation::sweep(&sc, vp, fault_seed, &losses, &flaps);
    let mut t = TextTable::new(&[
        "loss",
        "flap",
        "links",
        "precision",
        "recall",
        "packets",
        "sim h",
    ]);
    for p in &points {
        t.row(vec![
            format!("{:.3}", p.loss),
            format!("{:.3}", p.flap),
            p.validation.links_total.to_string(),
            format!("{:.1}%", p.precision() * 100.0),
            format!("{:.1}%", p.recall() * 100.0),
            p.packets.to_string(),
            format!("{:.2}", p.elapsed_ms as f64 / 3.6e6),
        ]);
    }
    println!("{}", t.render());
    println!(
        "fault seed {fault_seed}: identical flags replay this table exactly; \
         the self-healing engine (3 attempts, 300 ms backoff, quarantine) absorbs \
         moderate loss at the cost of extra packets"
    );
    Ok(())
}

/// `bdrmap infer`: run the heuristics over a saved trace store (the
/// scenario must be regenerated with the same preset/seed so the public
/// inputs and the alias-probing substrate match the collection run).
pub fn infer(args: &Args) -> Result<(), ArgError> {
    let input_path = args
        .get("in")
        .ok_or_else(|| ArgError("infer needs --in <path>".into()))?;
    let cfg = preset(args)?;
    let sc = Scenario::build(args.get("preset").unwrap_or("tiny"), &cfg);
    let vp = vp_index(args, &sc)?;
    let coll = bdrmap_probe::store::load(std::path::Path::new(input_path))
        .map_err(|e| ArgError(format!("reading {input_path}: {e}")))?;
    println!("loaded {} traces from {input_path}", coll.traces.len());
    let engine = sc.engine(vp);
    let map = bdrmap_core::run_bdrmap_on_traces(&engine, &sc.input, &bdrmap_config(args)?, coll);
    let neighbors = sc.input.view.neighbors_of(sc.net().vp_as);
    let v = bdrmap_eval::validate::validate(sc.net(), &neighbors, &map);
    println!(
        "inferred {} links to {} neighbors — {:.1}% correct, {:.1}% coverage",
        map.links.len(),
        map.neighbors().len(),
        v.link_accuracy() * 100.0,
        v.bgp_coverage() * 100.0
    );
    Ok(())
}

/// `bdrmap fleet`: the §5.7 "25 other networks" experiment.
pub fn fleet(args: &Args) -> Result<(), ArgError> {
    let mut cfg = preset(args)?;
    cfg.extra_vp_hosts = args.get_parse("hosts", 5)?;
    let sc = Scenario::build(args.get("preset").unwrap_or("tiny"), &cfg);
    // Every hosted VP runs through `run_bdrmap` → `run_stages`, so the
    // per-stage histograms accumulate across the whole fleet; the
    // cross-host sweep itself is timed as its own stage.
    let t = std::time::Instant::now();
    let results = bdrmap_eval::fleet::run_fleet(&sc, &bdrmap_config(args)?);
    bdrmap_core::pipeline::record_extra_stage("fleet", t.elapsed().as_secs_f64() * 1e3);
    let mut t = TextTable::new(&["host", "kind", "links", "accuracy", "coverage"]);
    for r in &results {
        t.row(vec![
            r.host.to_string(),
            r.kind.clone(),
            r.links.to_string(),
            format!("{:.1}%", r.validation.link_accuracy() * 100.0),
            format!("{:.1}%", r.validation.bgp_coverage() * 100.0),
        ]);
    }
    println!("{}", t.render());
    let avg: f64 = results
        .iter()
        .map(|r| r.validation.link_accuracy())
        .sum::<f64>()
        / results.len().max(1) as f64;
    println!(
        "{} hosting networks, mean link accuracy {:.1}% (paper §5.7: 'similar results' across 25 networks)",
        results.len(),
        avg * 100.0
    );
    write_metrics_out(args)?;
    Ok(())
}

/// `bdrmap congestion`: the end-to-end §2 application — discover the
/// borders, inject diurnal queuing, find it with TSLP.
pub fn congestion(args: &Args) -> Result<(), ArgError> {
    use bdrmap_dataplane::CongestionProfile;
    const PERIOD_MS: u64 = 3_600_000;
    let cfg = preset(args)?;
    let sc = Scenario::build(args.get("preset").unwrap_or("re"), &cfg);
    let net = sc.net();
    let map = sc.run_vp(0, &bdrmap_config(args)?);
    // Congest three links found on the map.
    let mut congested = Vec::new();
    for l in &map.links {
        if congested.len() == 3 {
            break;
        }
        let Some(far) = l.far_addr else { continue };
        let Some(lid) = net.iface_of_addr(far).and_then(|i| i.link) else {
            continue;
        };
        if !congested.contains(&lid) {
            sc.dp.congest(
                lid,
                CongestionProfile {
                    peak_us: 40_000,
                    period_ms: PERIOD_MS,
                },
            );
            congested.push(lid);
        }
    }
    let engine = sc.engine(0);
    let (mut tp, mut fp, mut fnn) = (0, 0, 0);
    for l in &map.links {
        let (Some(near), Some(far)) = (l.near_addr, l.far_addr) else {
            continue;
        };
        let r = bdrmap_probe::tslp::tslp(&engine, near, far, PERIOD_MS, 2, 24);
        if r.far.samples.is_empty() {
            continue;
        }
        let flagged = r.congested(8_000);
        let truth = net
            .iface_of_addr(far)
            .and_then(|i| i.link)
            .map(|lid| congested.contains(&lid))
            .unwrap_or(false);
        match (flagged, truth) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fnn += 1,
            _ => {}
        }
    }
    println!(
        "injected congestion on {} discovered links; TSLP found {tp} (false positives {fp}, missed {fnn})",
        congested.len()
    );
    Ok(())
}

/// `bdrmap devcheck`: the §5.1 development-mode sanity checks — DNS
/// agreement and the border-router degree anomaly scan.
pub fn devcheck(args: &Args) -> Result<(), ArgError> {
    use bdrmap_topo::{DnsConfig, DnsDb};
    let cfg = preset(args)?;
    let sc = Scenario::build(args.get("preset").unwrap_or("tiny"), &cfg);
    let map = sc.run_vp(0, &bdrmap_config(args)?);
    let db = DnsDb::synthesize(sc.net(), cfg.seed, &DnsConfig::default());
    let net = sc.net();
    let check = bdrmap_eval::devcheck::dns_check(&db, &map, |a| net.as_info(a).name.clone());
    println!(
        "DNS cross-check: {}/{} labels agree ({:.1}%), {} uncovered/unparseable, {} disagreements",
        check.agree,
        check.comparable,
        check.agreement() * 100.0,
        check.uncovered,
        check.disagree.len()
    );
    for (host, asn) in check.disagree.iter().take(5) {
        println!("  suspicious: {host} inferred as {asn} (stale label or inference error — §5.1)");
    }
    let anomalies = bdrmap_eval::devcheck::degree_anomalies(&map, 4);
    if anomalies.is_empty() {
        println!("degree check: no border router fronts >4 links to one neighbor — clean");
    } else {
        for a in anomalies {
            println!(
                "degree check: router #{} shows {} links to {} — possible unresolved aliases",
                a.near, a.count, a.far_as
            );
        }
    }
    Ok(())
}

/// The coarse ownership layer bdrmapd builds under every snapshot: the
/// collector view's single-origin prefixes (MOAS prefixes are skipped —
/// no unambiguous owner).
fn single_origin_prefixes(view: &bdrmap_bgp::CollectorView) -> Vec<(Prefix, Asn)> {
    view.prefixes()
        .filter_map(|(p, origins)| match origins {
            [asn] => Some((p, *asn)),
            _ => None,
        })
        .collect()
}

/// Resolve what `serve`/`loadgen` should serve: a saved snapshot file
/// (`--snapshot`), or a fresh inference over a generated scenario.
fn serve_map(args: &Args) -> Result<(bdrmap_core::BorderMap, Vec<(Prefix, Asn)>), ArgError> {
    if let Some(path) = args.get("snapshot") {
        let map = bdrmap_core::snapshot::load(std::path::Path::new(path))
            .map_err(|e| ArgError(format!("reading {path}: {e}")))?;
        // A bare snapshot carries no BGP view, so no prefix layer.
        Ok((map, Vec::new()))
    } else {
        let cfg = preset(args)?;
        let sc = Scenario::build(args.get("preset").unwrap_or("tiny"), &cfg);
        let vp = vp_index(args, &sc)?;
        let map = sc.run_vp(vp, &bdrmap_config(args)?);
        Ok((map, single_origin_prefixes(&sc.input.view)))
    }
}

fn serve_config(args: &Args, listen: String) -> Result<ServeConfig, ArgError> {
    let backend = match args.get("server-backend") {
        Some(s) => s.parse::<bdrmap_serve::ServerBackend>().map_err(ArgError)?,
        None => bdrmap_serve::ServerBackend::default(),
    };
    Ok(ServeConfig {
        listen,
        backend,
        metrics_addr: args.get("metrics-addr").map(str::to_string),
        workers: args.get_parse("workers", 4)?,
        queue: args.get_parse("queue", 128)?,
        prefix_owners: Vec::new(),
        ..ServeConfig::default()
    })
}

/// `bdrmap serve`: bdrmapd. Load (or infer) a border map and answer
/// queries until killed. With `--snap-dir`, boot from the store's
/// newest verified-good generation, rolling back past corrupt files.
pub fn serve(args: &Args) -> Result<(), ArgError> {
    let listen = args.get("listen").unwrap_or("127.0.0.1:47700").to_string();
    let server = if let Some(dir) = args.get("snap-dir") {
        let cfg = serve_config(args, listen)?;
        let workers = cfg.workers;
        let queue = cfg.queue;
        let backend = cfg.backend;
        let server = Server::start_from_store(dir, cfg)
            .map_err(|e| ArgError(format!("starting bdrmapd from store {dir}: {e}")))?;
        println!(
            "bdrmapd serving store {dir} generation {} on {} ({backend} backend, {} workers, accept queue {})",
            server.store_generation(),
            server.local_addr(),
            workers,
            queue
        );
        server
    } else {
        let (map, prefix_owners) = serve_map(args)?;
        let cfg = ServeConfig {
            prefix_owners,
            ..serve_config(args, listen)?
        };
        let workers = cfg.workers;
        let queue = cfg.queue;
        let backend = cfg.backend;
        let server =
            Server::start(&map, cfg).map_err(|e| ArgError(format!("starting bdrmapd: {e}")))?;
        println!(
            "bdrmapd serving {} routers / {} links on {} ({backend} backend, {} workers, accept queue {})",
            map.routers.len(),
            map.links.len(),
            server.local_addr(),
            workers,
            queue
        );
        server
    };
    if let Some(ma) = server.metrics_addr() {
        println!("metrics:   curl http://{ma}/metrics");
    }
    println!(
        "query it:  bdrmap query --connect {} --stats",
        server.local_addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn breaker_name(code: u8) -> &'static str {
    match code {
        0 => "closed",
        1 => "open",
        2 => "half-open",
        _ => "unknown",
    }
}

fn print_link(l: &bdrmap_serve::LinkInfo) {
    let owner = l
        .near_owner
        .map(|a| a.to_string())
        .unwrap_or_else(|| "?".to_string());
    let near = l
        .near_addr
        .map(|a| a.to_string())
        .unwrap_or_else(|| "-".to_string());
    let far = l
        .far_addr
        .map(|a| a.to_string())
        .unwrap_or_else(|| "-".to_string());
    println!(
        "link #{}: border router #{} (owner {owner}) {near} -> {far} to {} [{:?}]",
        l.link, l.near_router, l.far_as, l.heuristic
    );
}

/// `bdrmap query`: one-shot client for a running bdrmapd.
pub fn query(args: &Args) -> Result<(), ArgError> {
    let connect = args
        .get("connect")
        .ok_or_else(|| ArgError("query needs --connect <host:port>".into()))?;
    let addr: std::net::SocketAddr = connect
        .parse()
        .map_err(|_| ArgError(format!("invalid --connect address: {connect}")))?;
    let req = if let Some(a) = args.get("addr") {
        Request::Owner(
            a.parse()
                .map_err(|_| ArgError(format!("invalid --addr: {a}")))?,
        )
    } else if let Some(a) = args.get("border") {
        Request::Border(
            a.parse()
                .map_err(|_| ArgError(format!("invalid --border: {a}")))?,
        )
    } else if let Some(n) = args.get("neighbor") {
        Request::Neighbor(Asn(n
            .parse()
            .map_err(|_| ArgError(format!("invalid --neighbor: {n}")))?))
    } else if let Some(path) = args.get("reload") {
        Request::Reload(path.to_string())
    } else if args.flag("reload-store") {
        // Empty path = "reload from the server's snapshot store".
        Request::Reload(String::new())
    } else if args.flag("stats") {
        Request::Stats
    } else if args.flag("health") {
        Request::Health
    } else if args.flag("metrics") {
        Request::Metrics
    } else {
        return Err(ArgError(
            "query needs one of --addr/--border/--neighbor/--reload/--reload-store/--stats/--health/--metrics"
                .into(),
        ));
    };
    let mut client =
        Client::connect(&addr).map_err(|e| ArgError(format!("connecting to {addr}: {e}")))?;
    let resp = client
        .call(&req)
        .map_err(|e| ArgError(format!("querying {addr}: {e}")))?;
    match resp {
        Response::Owner(Some(o)) => {
            let router = o
                .router
                .map(|r| format!("border router #{r}"))
                .unwrap_or_else(|| "no observed router".to_string());
            println!("owner {} via {} ({router})", o.asn, o.prefix);
        }
        Response::Owner(None) => println!("no covering prefix"),
        Response::Border(Some(l)) => print_link(&l),
        Response::Border(None) => println!("address is on no inferred interdomain link"),
        Response::Neighbor(links) => {
            println!("{} inferred links:", links.len());
            for l in &links {
                print_link(l);
            }
        }
        Response::Stats(s) => {
            println!(
                "generation {} | {} routers, {} links, {} prefixes | {} queries, {} shed | last reload: build {} us, swap {} us",
                s.generation,
                s.routers,
                s.links,
                s.prefixes,
                s.queries,
                s.sheds,
                s.last_build_us,
                s.last_swap_us
            );
            println!(
                "robustness: {} slow evicted, {} flood evicted, {} setup errors, {} reload failures, {} drained | breaker {}",
                s.evicted_slow,
                s.evicted_flood,
                s.setup_errors,
                s.reload_failures,
                s.drained,
                breaker_name(s.breaker_state)
            );
        }
        Response::Health(h) => {
            println!(
                "generation {} | swap epoch {} | breaker {} | {} reload failures | \
                 journal lsn {} ({} batches recovered) | up {:.1}s",
                h.generation,
                h.swap_epoch,
                breaker_name(h.breaker_state),
                h.reload_failures,
                h.journal_lsn,
                h.recovered_batches,
                h.uptime_ms as f64 / 1e3
            );
        }
        Response::Reloaded {
            generation,
            build_us,
            swap_us,
            routers,
            links,
        } => {
            println!(
                "reloaded: generation {generation}, {routers} routers / {links} links (build {build_us} us, swap {swap_us} us)"
            );
        }
        Response::Metrics(text) => {
            // Raw exposition on stdout, scrape-ready: `bdrmap query
            // --metrics | promtool check metrics` style tooling works.
            print!("{text}");
        }
        Response::Overload => return Err(ArgError("server overloaded; retry".into())),
        Response::Error(msg) => return Err(ArgError(format!("server error: {msg}"))),
    }
    Ok(())
}

/// `bdrmap loadgen`: closed-loop load against bdrmapd. With
/// `--connect`, hammers an external daemon (needs `--snapshot` for the
/// query mix); without it, infers a map, serves it in-process, and
/// fires a mid-run hot swap — the CI smoke path.
pub fn loadgen(args: &Args) -> Result<(), ArgError> {
    if args.get("connections").is_some() {
        return loadgen_scale(args);
    }
    let secs: f64 = args.get_parse("secs", 2.0)?;
    if secs <= 0.0 || !secs.is_finite() {
        return Err(ArgError(format!("--secs must be positive, got {secs}")));
    }
    let corrupt_rate: f64 = args.get_parse("corrupt-rate", 0.0)?;
    if !(0.0..=1.0).contains(&corrupt_rate) {
        return Err(ArgError(format!(
            "--corrupt-rate must be in [0,1], got {corrupt_rate}"
        )));
    }
    let base = LoadgenConfig {
        conns: args.get_parse("conns", 4)?,
        duration: std::time::Duration::from_secs_f64(secs),
        reload_with: None,
        corrupt_rate,
        stall_conns: args.get_parse("stall-conns", 0)?,
        ..LoadgenConfig::default()
    };
    let report = if let Some(connect) = args.get("connect") {
        let addr: std::net::SocketAddr = connect
            .parse()
            .map_err(|_| ArgError(format!("invalid --connect address: {connect}")))?;
        let snap = args.get("snapshot").ok_or_else(|| {
            ArgError("loadgen --connect needs --snapshot <path> to derive the query mix".into())
        })?;
        let map = bdrmap_core::snapshot::load(std::path::Path::new(snap))
            .map_err(|e| ArgError(format!("reading {snap}: {e}")))?;
        let cfg = LoadgenConfig {
            reload_with: args.get("reload").map(std::path::PathBuf::from),
            ..base
        };
        bdrmap_serve::loadgen::run(addr, &bdrmap_serve::queries_for_map(&map), &cfg)
            .map_err(|e| ArgError(format!("load generation failed: {e}")))?
    } else {
        let (map, prefix_owners) = serve_map(args)?;
        let mut cfg = ServeConfig {
            prefix_owners,
            ..serve_config(args, "127.0.0.1:0".to_string())?
        };
        if base.stall_conns > 0 {
            // Stalled connections must be evictable within the run, so
            // the in-process server's deadline scales with --secs.
            cfg.request_deadline = (base.duration / 2).max(std::time::Duration::from_millis(100));
        }
        let server =
            Server::start(&map, cfg).map_err(|e| ArgError(format!("starting bdrmapd: {e}")))?;
        // Mid-run hot swap of the same map: exercises the reload path
        // and measures build/swap latency without changing answers.
        let snap_path =
            std::env::temp_dir().join(format!("bdrmap-loadgen-{}.bdrm", std::process::id()));
        bdrmap_core::snapshot::save(&snap_path, &map)
            .map_err(|e| ArgError(format!("writing {}: {e}", snap_path.display())))?;
        let cfg = LoadgenConfig {
            reload_with: Some(snap_path.clone()),
            ..base
        };
        let result = bdrmap_serve::loadgen::run(
            server.local_addr(),
            &bdrmap_serve::queries_for_map(&map),
            &cfg,
        );
        std::fs::remove_file(&snap_path).ok();
        server.shutdown();
        result.map_err(|e| ArgError(format!("load generation failed: {e}")))?
    };
    println!(
        "{} conns for {:.2}s: {} ok ({} not-found), {} shed, {} errors | {:.0} qps | p50 {} us, p99 {} us, p99.9 {} us",
        report.conns,
        report.duration_s,
        report.queries_ok,
        report.queries_not_found,
        report.queries_shed,
        report.queries_error,
        report.qps,
        report.p50_us,
        report.p99_us,
        report.p999_us
    );
    // Per-opcode split on its own line, in a fixed grep-able shape: the
    // CI metrics-smoke job diffs these numbers against the server's
    // `bdrmapd_requests_total{op=...}` counters.
    println!(
        "per-op ok: owner={} border={} neighbor={}",
        report.ok_owner, report.ok_border, report.ok_neighbor
    );
    if let Some(r) = &report.reload {
        println!(
            "hot swap under load: round trip {} us (build {} us, swap {} us), generation {}",
            r.round_trip_us, r.build_us, r.swap_us, r.generation
        );
    }
    if report.corrupt_sent > 0 {
        println!(
            "hostile frames: {} sent, {} answered well-formed",
            report.corrupt_sent, report.corrupt_survived
        );
    }
    if report.stalled > 0 {
        println!(
            "slow-loris: {} stalled connections, {} evicted by deadline",
            report.stalled, report.stalled_evicted
        );
    }
    if let Some(json) = args.get("json") {
        report
            .write_json(std::path::Path::new(json))
            .map_err(|e| ArgError(format!("writing {json}: {e}")))?;
        println!("wrote {json}");
    }
    if report.queries_ok == 0 {
        return Err(ArgError(
            "load generator completed zero successful queries".into(),
        ));
    }
    if report.queries_error > 0 {
        return Err(ArgError(format!(
            "{} queries were lost in flight",
            report.queries_error
        )));
    }
    if report.corrupt_survived < report.corrupt_sent {
        return Err(ArgError(format!(
            "{} corrupt frames did not get a well-formed response",
            report.corrupt_sent - report.corrupt_survived
        )));
    }
    if report.stalled_evicted < report.stalled {
        return Err(ArgError(format!(
            "{} stalled connections were not evicted by the deadline",
            report.stalled - report.stalled_evicted
        )));
    }
    Ok(())
}

/// `bdrmap loadgen --connections N`: scale mode. One epoll client loop
/// holds N concurrent connections (a fraction idle as keepalive
/// ballast, the rest pipelined closed-loop) against an in-process or
/// remote bdrmapd, then writes `BENCH_serve_scale.json`. Hard-fails on
/// any acked-then-lost query or any evicted idle connection.
#[cfg(target_os = "linux")]
fn loadgen_scale(args: &Args) -> Result<(), ArgError> {
    use bdrmap_serve::{ScaleConfig, ScaleLoopStat};

    let connections: usize = args.get_parse("connections", 1000)?;
    if connections == 0 {
        return Err(ArgError("--connections must be at least 1".into()));
    }
    let idle_frac: f64 = args.get_parse("idle-frac", 0.5)?;
    if !(0.0..=1.0).contains(&idle_frac) || !idle_frac.is_finite() {
        return Err(ArgError(format!(
            "--idle-frac must be in [0,1], got {idle_frac}"
        )));
    }
    let secs: f64 = args.get_parse("secs", 5.0)?;
    if secs <= 0.0 || !secs.is_finite() {
        return Err(ArgError(format!("--secs must be positive, got {secs}")));
    }
    let scfg = ScaleConfig {
        connections,
        idle_frac,
        duration: std::time::Duration::from_secs_f64(secs),
        pipeline: args.get_parse("pipeline", 4)?,
    };
    let mut report = if let Some(connect) = args.get("connect") {
        let addr: std::net::SocketAddr = connect
            .parse()
            .map_err(|_| ArgError(format!("invalid --connect address: {connect}")))?;
        let snap = args.get("snapshot").ok_or_else(|| {
            ArgError("loadgen --connect needs --snapshot <path> to derive the query mix".into())
        })?;
        let map = bdrmap_core::snapshot::load(std::path::Path::new(snap))
            .map_err(|e| ArgError(format!("reading {snap}: {e}")))?;
        let mut report =
            bdrmap_serve::loadgen::run_scale(addr, &bdrmap_serve::queries_for_map(&map), &scfg)
                .map_err(|e| ArgError(format!("scale load generation failed: {e}")))?;
        // A remote server's backend is whatever the operator started;
        // trust the flag if given, otherwise label it unknown.
        report.backend = args.get("server-backend").unwrap_or("unknown").to_string();
        // Per-loop counters live in the remote server's process; pull
        // them out of its metrics exposition over the query protocol.
        if let Ok(mut client) = Client::connect(&addr) {
            if let Ok(Response::Metrics(text)) = client.call(&Request::Metrics) {
                report.loops = scale_loops_from_exposition(&text);
            }
        }
        report
    } else {
        let (map, prefix_owners) = serve_map(args)?;
        let mut cfg = ServeConfig {
            prefix_owners,
            ..serve_config(args, "127.0.0.1:0".to_string())?
        };
        if args.get("queue").is_none() {
            // The benchmark measures capacity, not admission control:
            // by default every connection fits the budget. Pass --queue
            // explicitly to exercise shedding.
            cfg.queue = connections + 1024;
        }
        let backend = cfg.backend;
        let server =
            Server::start(&map, cfg).map_err(|e| ArgError(format!("starting bdrmapd: {e}")))?;
        let result = bdrmap_serve::loadgen::run_scale(
            server.local_addr(),
            &bdrmap_serve::queries_for_map(&map),
            &scfg,
        );
        let mut report =
            result.map_err(|e| ArgError(format!("scale load generation failed: {e}")))?;
        report.backend = backend.to_string();
        report.loops = server
            .loop_stats()
            .iter()
            .map(|l| ScaleLoopStat {
                index: l.index,
                wakeups: l.wakeups,
                events: l.events,
                reads: l.reads,
                frames: l.frames,
                writevs: l.writevs,
                accepts: l.accepts,
                batch_p50: l.batch_p50,
                batch_p99: l.batch_p99,
            })
            .collect();
        server.shutdown();
        report
    };
    report.connections = connections;
    println!(
        "{} conns ({} active / {} idle) on {} backend for {:.2}s: {} ok | {:.0} qps | p50 {} us, p99 {} us, p99.9 {} us",
        report.connections,
        report.active_conns,
        report.idle_conns,
        report.backend,
        report.duration_s,
        report.queries_ok,
        report.qps,
        report.p50_us,
        report.p99_us,
        report.p999_us
    );
    println!(
        "integrity: {} lost, {} idle evicted | admission: {} shed, {} unadmitted, {} connect failures",
        report.lost,
        report.idle_evicted,
        report.shed_conns,
        report.unadmitted,
        report.connect_failures
    );
    for l in &report.loops {
        println!(
            "loop {}: {} wakeups, {} events (batch p50 {}, p99 {}), {} reads, {} frames, {} writevs, {} accepts",
            l.index, l.wakeups, l.events, l.batch_p50, l.batch_p99, l.reads, l.frames, l.writevs,
            l.accepts
        );
    }
    let json = args.get("json").unwrap_or("BENCH_serve_scale.json");
    report
        .write_json(std::path::Path::new(json))
        .map_err(|e| ArgError(format!("writing {json}: {e}")))?;
    println!("wrote {json}");
    if report.queries_ok == 0 {
        return Err(ArgError(
            "scale load generator completed zero successful queries".into(),
        ));
    }
    if report.lost > 0 {
        return Err(ArgError(format!(
            "{} acknowledged queries were lost in flight",
            report.lost
        )));
    }
    if report.idle_evicted > 0 {
        return Err(ArgError(format!(
            "{} idle keepalive connections were evicted",
            report.idle_evicted
        )));
    }
    Ok(())
}

#[cfg(not(target_os = "linux"))]
fn loadgen_scale(_args: &Args) -> Result<(), ArgError> {
    Err(ArgError(
        "loadgen --connections (scale mode) needs the Linux epoll client loop".into(),
    ))
}

/// Reconstruct per-event-loop counters from a remote bdrmapd's metrics
/// exposition (`bdrmapd_loop_*{loop="i"}` families). Batch quantiles
/// are recovered from the cumulative histogram buckets with the same
/// nearest-rank rule the in-process path uses, so remote and local
/// reports agree on semantics (remote values are bucket upper bounds).
#[cfg(target_os = "linux")]
fn scale_loops_from_exposition(text: &str) -> Vec<bdrmap_serve::ScaleLoopStat> {
    use std::collections::BTreeMap;
    let mut loops: BTreeMap<usize, bdrmap_serve::ScaleLoopStat> = BTreeMap::new();
    // (loop index, cumulative count) per bucket bound, in line order.
    let mut buckets: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<usize, u64> = BTreeMap::new();
    fn parse<'a>(line: &'a str, name: &str) -> Option<(usize, &'a str, u64)> {
        let rest = line.strip_prefix(name)?.strip_prefix('{')?;
        let (labels, value) = rest.split_once("} ")?;
        let li = labels.split_once("loop=\"")?.1.split('"').next()?;
        Some((li.parse().ok()?, labels, value.trim().parse().ok()?))
    }
    for line in text.lines() {
        for (name, field) in [
            ("bdrmapd_loop_wakeups_total", 0usize),
            ("bdrmapd_loop_events_total", 1),
            ("bdrmapd_loop_reads_total", 2),
            ("bdrmapd_loop_frames_total", 3),
            ("bdrmapd_loop_writevs_total", 4),
            ("bdrmapd_loop_accepts_total", 5),
        ] {
            if let Some((li, _, v)) = parse(line, name) {
                let l = loops.entry(li).or_default();
                l.index = li;
                match field {
                    0 => l.wakeups = v,
                    1 => l.events = v,
                    2 => l.reads = v,
                    3 => l.frames = v,
                    4 => l.writevs = v,
                    _ => l.accepts = v,
                }
            }
        }
        if let Some((li, labels, cum)) = parse(line, "bdrmapd_loop_event_batch_bucket") {
            let le = labels
                .split_once("le=\"")
                .and_then(|(_, r)| r.split('"').next())
                .map(|b| b.parse::<u64>().unwrap_or(u64::MAX))
                .unwrap_or(u64::MAX);
            buckets.entry(li).or_default().push((le, cum));
        }
        if let Some((li, _, v)) = parse(line, "bdrmapd_loop_event_batch_count") {
            counts.insert(li, v);
        }
    }
    for (li, bs) in &buckets {
        let count = counts.get(li).copied().unwrap_or(0);
        if count == 0 {
            continue;
        }
        let quantile = |q: f64| -> u64 {
            let rank = ((count as f64) * q).ceil().clamp(1.0, count as f64) as u64;
            bs.iter()
                .find(|(_, cum)| *cum >= rank)
                .map(|(le, _)| *le)
                .unwrap_or(0)
        };
        let l = loops.entry(*li).or_default();
        l.batch_p50 = quantile(0.50);
        l.batch_p99 = quantile(0.99);
    }
    loops.into_values().collect()
}

/// `bdrmap fuzz`: seeded structure-aware fuzzing of the BDRM snapshot
/// codec, the wire protocol, and the frame reader. Fails (exit 1) on
/// any panic or any accepted-but-non-canonical input.
pub fn fuzz(args: &Args) -> Result<(), ArgError> {
    let iters: u64 = args.get_parse("iters", 10_000)?;
    let seed: u64 = args.get_parse("fuzz-seed", 42)?;
    if iters == 0 {
        return Err(ArgError("--iters must be at least 1".into()));
    }
    let report = bdrmap_bench::fuzz::run(seed, iters);
    println!(
        "fuzz seed {seed}: {} mutants ({} snapshot, {} wire, {} frame) | {} accepted, {} rejected",
        report.iterations,
        report.snapshot_cases,
        report.wire_cases,
        report.frame_cases,
        report.accepted,
        report.rejected
    );
    println!(
        "panics: {} | canonical violations: {}",
        report.panics, report.canonical_violations
    );
    if let Some(json) = args.get("json") {
        bdrmap_types::fsutil::write_atomic(std::path::Path::new(json), report.to_json().as_bytes())
            .map_err(|e| ArgError(format!("writing {json}: {e}")))?;
        println!("wrote {json}");
    }
    if !report.clean() {
        return Err(ArgError(format!(
            "fuzzing found failures: {} panics, {} canonical violations (repro with --fuzz-seed {seed} --iters {iters})",
            report.panics, report.canonical_violations
        )));
    }
    Ok(())
}

/// `bdrmap bench-pipeline`: run the full pipeline once, timing each
/// stage, and write `BENCH_pipeline.json`. The alias stage runs twice —
/// serially and at `--alias-parallelism` — both to report the speedup
/// and to check the byte-identity guarantee on every invocation.
pub fn bench_pipeline(args: &Args) -> Result<(), ArgError> {
    let out = args.get("json").unwrap_or("BENCH_pipeline.json");
    let preset_name = args.get("preset").unwrap_or("tiny");
    let cfg = preset(args)?;
    let seed: u64 = args.get_parse("seed", 42)?;
    let bcfg = bdrmap_config(args)?;
    let par = bcfg.alias_parallelism;

    let t = std::time::Instant::now();
    let sc = Scenario::build(preset_name, &cfg);
    let generate_ms = t.elapsed().as_secs_f64() * 1e3;
    let vp = vp_index(args, &sc)?;

    // Probe once; both alias runs below reuse the same traces.
    let targets = bdrmap_probe::target_blocks(&sc.input.view, &sc.input.vp_asns);
    let ip2as_probe = sc.input.ip2as_for_probing();
    let t = std::time::Instant::now();
    let coll = bdrmap_probe::run_traces(
        &sc.engine(vp),
        &targets,
        bdrmap_probe::RunOptions {
            parallelism: bcfg.parallelism,
            addrs_per_block: bcfg.addrs_per_block,
            use_stop_sets: bcfg.use_stop_sets,
            quarantine: None,
        },
        |a| ip2as_probe.is_external(a),
    );
    let probe_ms = t.elapsed().as_secs_f64() * 1e3;

    // Serial baseline, then the measured parallel run. Fresh engines
    // keep the probe budgets comparable (alias traffic only).
    let serial_cfg = BdrmapConfig {
        alias_parallelism: 1,
        ..bcfg
    };
    let serial = bdrmap_core::run_stages(&sc.engine(vp), &sc.input, &serial_cfg, coll.clone());
    let run = bdrmap_core::run_stages(&sc.engine(vp), &sc.input, &bcfg, coll.clone());
    if serial.alias_bytes != run.alias_bytes {
        return Err(ArgError(format!(
            "alias output diverged between parallelism 1 and {par} — determinism bug"
        )));
    }

    let st = &run.stages;
    let alias = &st.alias;
    let shards = alias
        .shards
        .iter()
        .map(|s| {
            format!(
                "{{\"shard\": {}, \"tests\": {}, \"packets\": {}}}",
                s.shard, s.tests, s.packets
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"schema\": 1,\n  \"preset\": \"{preset_name}\",\n  \"seed\": {seed},\n  \"alias_parallelism\": {par},\n  \"stages\": {{\n    \"generate_ms\": {generate_ms:.3},\n    \"probe_ms\": {probe_ms:.3},\n    \"ip2as_ms\": {ip2as:.3},\n    \"alias_serial_ms\": {alias_serial:.3},\n    \"alias_ms\": {alias_ms:.3},\n    \"graph_ms\": {graph:.3},\n    \"infer_ms\": {infer:.3}\n  }},\n  \"probe\": {{\"traces\": {traces}, \"packets\": {probe_packets}}},\n  \"alias\": {{\n    \"mercator_tests\": {mercator},\n    \"prefixscan_candidates\": {pf_cand},\n    \"prefixscan_deduped\": {pf_dedup},\n    \"prefixscan_executed\": {pf_exec},\n    \"ally_candidates\": {ally_cand},\n    \"ally_staged_out\": {ally_staged},\n    \"ally_deduped\": {ally_dedup},\n    \"ally_executed\": {ally_exec},\n    \"packets\": {alias_packets},\n    \"shards\": [{shards}]\n  }},\n  \"ip2as_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {hit_rate:.4}}},\n  \"alias_output_identical\": true\n}}\n",
        ip2as = st.ip2as_ms,
        alias_serial = serial.stages.alias_ms,
        alias_ms = st.alias_ms,
        graph = st.graph_ms,
        infer = st.infer_ms,
        traces = coll.traces.len(),
        probe_packets = coll.budget.packets,
        mercator = alias.mercator_tests,
        pf_cand = alias.prefixscan_candidates,
        pf_dedup = alias.prefixscan_deduped,
        pf_exec = alias.prefixscan_executed,
        ally_cand = alias.ally_candidates,
        ally_staged = alias.ally_staged_out,
        ally_dedup = alias.ally_deduped,
        ally_exec = alias.ally_executed,
        alias_packets = alias.packets,
        hits = st.cache.hits,
        misses = st.cache.misses,
        hit_rate = st.cache.hit_rate(),
    );
    bdrmap_types::fsutil::write_atomic(std::path::Path::new(out), json.as_bytes())
        .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!(
        "pipeline: generate {generate_ms:.1} ms, probe {probe_ms:.1} ms ({} traces), \
         alias {:.1} ms at parallelism {par} (serial {:.1} ms, {:.2}x), \
         graph {:.1} ms, infer {:.1} ms",
        coll.traces.len(),
        st.alias_ms,
        serial.stages.alias_ms,
        serial.stages.alias_ms / st.alias_ms.max(1e-9),
        st.graph_ms,
        st.infer_ms,
    );
    println!(
        "alias tests: {} mercator, {} prefixscan ({} deduped), {} ally ({} staged out, {} deduped); \
         ip2as cache hit rate {:.1}%; output identical to serial run",
        alias.mercator_tests,
        alias.prefixscan_executed,
        alias.prefixscan_deduped,
        alias.ally_executed,
        alias.ally_staged_out,
        alias.ally_deduped,
        st.cache.hit_rate() * 100.0,
    );
    println!("wrote {out}");
    Ok(())
}

/// A synthetic border map with `n` routers, two interfaces each, and a
/// border link for every other router. Size scales linearly in `n`, so
/// the reload benchmark can sweep map sizes without running the
/// pipeline. Interfaces are spread over 1024 /12 blocks scattered
/// across the address space (dense inside each block) — the shape of a
/// real provider's interface numbering, not one contiguous run.
/// Deterministic: the same `n` always yields the same bytes.
fn synthetic_map(n: u32) -> bdrmap_core::BorderMap {
    use bdrmap_core::{BorderMap, Heuristic, InferredLink, InferredRouter};
    use bdrmap_types::addr;
    // Router r's interface k: block = r mod 1024 (top 12 bits permuted
    // by an odd multiplier, so blocks are bijective and scattered),
    // offset dense per block. No two (r, k) pairs collide.
    let iface = |r: u32, k: u32| {
        let base = (r % 1024).wrapping_mul(0x9e37) & 0xfff;
        addr((base << 20) | (2 * (r / 1024) + k))
    };
    let other = |r: u32| {
        let base = (r % 1024).wrapping_mul(0x9e37) & 0xfff;
        addr((base << 20) | (0x8_0000 + r / 1024))
    };
    let routers: Vec<InferredRouter> = (0..n)
        .map(|i| InferredRouter {
            addrs: vec![iface(i, 0), iface(i, 1)],
            other_addrs: if i % 7 == 0 { vec![other(i)] } else { vec![] },
            owner: Some(Asn(64500 + i % 16)),
            heuristic: Some(Heuristic::MultihomedToVp),
            min_hop: (i % 12) as u8 + 1,
        })
        .collect();
    let links: Vec<InferredLink> = (0..n.saturating_sub(1))
        .step_by(2)
        .map(|i| InferredLink {
            near: i as usize,
            far: Some(i as usize + 1),
            far_as: Asn(64500 + (i + 1) % 16),
            near_addr: Some(iface(i, 0)),
            far_addr: Some(iface(i + 1, 0)),
            heuristic: Heuristic::MultihomedToVp,
        })
        .collect();
    BorderMap {
        routers,
        links,
        packets: u64::from(n) * 10,
        elapsed_ms: u64::from(n),
    }
}

/// `bdrmap bench-reload`: time a v2 reload (parse the snapshot into a
/// [`bdrmap_core::BorderMap`], rebuild the heap [`QueryIndex`]) against
/// a v3 reload (checksum the file, validate the flat index in place)
/// over synthetic maps at `--sizes` router counts. Each phase is run
/// `--iters` times and the minimum is reported — the same phase split
/// bdrmapd's Reload RPC reports as `load_us`/`build_us`. Writes
/// `--json` (default BENCH_reload.json) and asserts the contract the
/// v3 layout exists to provide: at the largest size, the v3 build
/// phase is at least 10x cheaper than the v2 one.
pub fn bench_reload(args: &Args) -> Result<(), ArgError> {
    use bdrmap_core::{flat, snapshot, QueryIndex};
    let out = args.get("json").unwrap_or("BENCH_reload.json");
    let iters: u32 = args.get_parse("iters", 5)?;
    if iters == 0 {
        return Err(ArgError("--iters must be at least 1".into()));
    }
    let sizes: Vec<u32> = match args.get("sizes") {
        Some(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|e| ArgError(format!("bad --sizes entry {t:?}: {e}")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![1_000, 10_000, 50_000],
    };
    if sizes.is_empty() {
        return Err(ArgError("--sizes must name at least one size".into()));
    }

    // min-of-iters for each phase: reloads are short, so the minimum
    // is the steady-state cost with scheduler noise stripped.
    fn min_us<T>(iters: u32, mut f: impl FnMut() -> T) -> (T, u64) {
        let mut best_us = u64::MAX;
        let mut last = None;
        for _ in 0..iters {
            let t = std::time::Instant::now();
            let v = f();
            best_us = best_us.min(t.elapsed().as_micros() as u64);
            last = Some(v);
        }
        (last.unwrap(), best_us)
    }

    let mut rows = Vec::new();
    let mut printed = Vec::new();
    for &n in &sizes {
        let map = synthetic_map(n);
        let v2 = snapshot::encode(&map).map_err(|e| ArgError(format!("encoding v2: {e}")))?;
        let v3 = snapshot::encode_v3(&map).map_err(|e| ArgError(format!("encoding v3: {e}")))?;

        // v2 reload: parse the whole file into a BorderMap (load), then
        // rebuild the heap QueryIndex from it (build).
        let (v2_map, v2_load_us) = min_us(iters, || snapshot::decode(&v2).unwrap());
        let (v2_idx, v2_build_us) = min_us(iters, || QueryIndex::build(&v2_map));

        // v3 reload: checksum every section and validate the flat index
        // in place (load — the v3 analogue of v2's parse), then stand
        // up the view over the trusted bytes (build). The clone feeding
        // each build iteration stays outside the timer: the server
        // moves the loaded bytes into the view, it never copies.
        let ((layout, proof), v3_load_us) = min_us(iters, || {
            let layout = flat::verify_integrity(&v3).unwrap();
            let proof = flat::validate_structure(&v3, &layout).unwrap();
            (layout, proof)
        });
        let mut v3_build_us = u64::MAX;
        let mut view = None;
        for _ in 0..iters {
            let data = v3.clone();
            let t = std::time::Instant::now();
            let v = flat::V3View::from_validated(data, layout, proof, std::iter::empty());
            v3_build_us = v3_build_us.min(t.elapsed().as_micros() as u64);
            view = Some(v);
        }
        let view = view.unwrap();
        // The benched view answers like the benched heap index.
        if view.num_routers() != v2_idx.num_routers() || view.num_links() != v2_idx.num_links() {
            return Err(ArgError(format!(
                "size {n}: v3 view disagrees with the v2 index it is benchmarked against"
            )));
        }

        rows.push(format!(
            "    {{\"routers\": {n}, \"links\": {links}, \
             \"v2_bytes\": {v2b}, \"v3_bytes\": {v3b}, \
             \"v2_load_us\": {v2l}, \"v2_build_us\": {v2bu}, \
             \"v3_load_us\": {v3l}, \"v3_build_us\": {v3bu}}}",
            links = map.links.len(),
            v2b = v2.len(),
            v3b = v3.len(),
            v2l = v2_load_us,
            v2bu = v2_build_us,
            v3l = v3_load_us,
            v3bu = v3_build_us,
        ));
        printed.push((n, v2_load_us, v2_build_us, v3_load_us, v3_build_us));
    }

    let json = format!(
        "{{\n  \"schema\": \"bdrmap-bench-reload-v1\",\n  \"iters\": {iters},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    bdrmap_types::fsutil::write_atomic(std::path::Path::new(out), json.as_bytes())
        .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    for (n, v2l, v2b, v3l, v3b) in &printed {
        println!(
            "{n:>7} routers: v2 load {v2l:>7} us + build {v2b:>7} us | \
             v3 load {v3l:>7} us + build {v3b:>5} us ({:.0}x cheaper build)",
            *v2b as f64 / (*v3b).max(1) as f64
        );
    }
    println!("wrote {out}");

    // The headline contract, pinned at the largest benched size: a v3
    // swap re-validates in place instead of rebuilding, so its build
    // phase must be at least 10x cheaper than the heap rebuild.
    let &(n, _, v2_build_us, _, v3_build_us) = printed.last().unwrap();
    if v2_build_us < 10 * v3_build_us.max(1) {
        return Err(ArgError(format!(
            "at {n} routers the v3 build phase ({v3_build_us} us) is not 10x \
             cheaper than the v2 rebuild ({v2_build_us} us)"
        )));
    }
    Ok(())
}

/// `bdrmap watch`: the incremental-inference driver.
///
/// Streams the VP's target blocks through a live
/// [`bdrmap_core::IncrementalEngine`] in `--batches` chunks. Every pass
/// re-infers only the dirty region of the router graph and replays
/// untouched alias tests from the cache, then (unless `--no-shadow`) is
/// byte-checked against a from-scratch `run_stages` rebuild over the
/// same cumulative traces — divergence is a hard error, not a warning.
/// With `--snap-dir` each pass publishes a generation into the
/// crash-safe store; `--serve` additionally boots bdrmapd from that
/// store after the first pass and hot-swaps it after every later one
/// via the Reload RPC, asserting the served generation advanced.
/// Per-pass rows land in `--json` (default BENCH_incremental.json).
///
/// With `--journal-dir` every batch is appended to a write-ahead
/// journal *before* it is applied, and startup recovers from the
/// newest verified checkpoint plus a journal tail replay — a killed
/// watch loop resumes exactly where it died, and its next published
/// map is byte-identical to a from-scratch rebuild (the shadow check
/// holds across the crash). `--expire-after <n>` retracts traces not
/// refreshed within n passes; `--compact-every <n>` sets the
/// checkpoint cadence.
pub fn watch(args: &Args) -> Result<(), ArgError> {
    use bdrmap_core::{snapshot, Batch, IncrementalEngine, Journal, JournalCheckpoint, SnapStore};

    let out = args.get("json").unwrap_or("BENCH_incremental.json");
    let preset_name = args.get("preset").unwrap_or("tiny");
    let cfg = preset(args)?;
    let seed: u64 = args.get_parse("seed", 42)?;
    let bcfg = bdrmap_config(args)?;
    let batches: usize = args.get_parse("batches", 4)?;
    if batches == 0 {
        return Err(ArgError("--batches must be at least 1".into()));
    }
    let no_shadow = args.flag("no-shadow");
    if args.flag("serve") && args.get("snap-dir").is_none() {
        return Err(ArgError(
            "--serve requires --snap-dir (bdrmapd boots from the store)".into(),
        ));
    }
    let expire_after = match args.get("expire-after") {
        Some(_) => {
            let n: u64 = args.get_parse("expire-after", 0)?;
            if n == 0 {
                return Err(ArgError("--expire-after must be at least 1".into()));
            }
            Some(n)
        }
        None => None,
    };
    let compact_every: u64 = args.get_parse("compact-every", 4)?;
    if compact_every == 0 {
        return Err(ArgError("--compact-every must be at least 1".into()));
    }

    let sc = Scenario::build(preset_name, &cfg);
    let vp = vp_index(args, &sc)?;
    let targets = bdrmap_probe::target_blocks(&sc.input.view, &sc.input.vp_asns);
    if targets.is_empty() {
        return Err(ArgError("no target blocks to watch".into()));
    }
    let chunk = targets.len().div_ceil(batches);
    let ip2as_probe = sc.input.ip2as_for_probing();

    // One live prober feeds every pass. The engine's virtual tick must
    // match its pacing so replayed alias tasks charge the same budget a
    // fresh engine would.
    let prober = sc.engine(vp);
    let pps = bdrmap_probe::EngineConfig::default().pps;
    let tick_us = 1_000_000 / pps as u64;
    let mut engine = IncrementalEngine::new(bcfg, tick_us);

    // Durable watch: recover from the journal before the first pass
    // probes anything. The newest verified checkpoint seeds the engine
    // in one bulk apply; acked batches past it replay in LSN order.
    let mut journal: Option<Journal> = None;
    let mut recovered_batches = 0u64;
    let mut recovery_ms: Option<f64> = None;
    if let Some(jdir) = args.get("journal-dir") {
        let t = std::time::Instant::now();
        let (j, rec) =
            Journal::open(jdir).map_err(|e| ArgError(format!("opening journal {jdir}: {e}")))?;
        if let Some(c) = &rec.checkpoint {
            let (restored, _) =
                IncrementalEngine::restore(bcfg, tick_us, &prober, &sc.input, &c.entries, c.pass);
            engine = restored;
        }
        for r in &rec.tail {
            engine.apply(&prober, &sc.input, r.batch.clone());
        }
        recovered_batches = rec.tail.len() as u64;
        let ms = t.elapsed().as_secs_f64() * 1e3;
        recovery_ms = Some(ms);
        if rec.checkpoint.is_some() || !rec.tail.is_empty() || !rec.torn.is_empty() {
            println!(
                "journal {jdir}: recovered {} traces at pass {} \
                 (checkpoint lsn {}, {} batches replayed, {} torn tails discarded) in {ms:.1} ms",
                engine.trace_count(),
                engine.passes(),
                rec.checkpoint.as_ref().map_or(0, |c| c.lsn),
                recovered_batches,
                rec.torn.len(),
            );
        }
        journal = Some(j);
    }

    let snap_version = snapshot_version(args)?;
    let store = match args.get("snap-dir") {
        Some(dir) => Some((
            dir,
            SnapStore::open(dir)
                .map_err(|e| ArgError(format!("opening snapshot store {dir}: {e}")))?
                .with_snapshot_version(snap_version),
        )),
        None => None,
    };
    let mut server: Option<Server> = None;
    let mut rows = Vec::new();

    for chunk_targets in targets.chunks(chunk) {
        let coll = bdrmap_probe::run_traces(
            &prober,
            chunk_targets,
            bdrmap_probe::RunOptions {
                parallelism: bcfg.parallelism,
                addrs_per_block: bcfg.addrs_per_block,
                use_stop_sets: bcfg.use_stop_sets,
                quarantine: None,
            },
            |a| ip2as_probe.is_external(a),
        );
        // Expiry runs against the engine's pre-pass clock: a trace last
        // refreshed at pass P survives through P+n and is retracted on
        // the first pass after that — unless this very batch refreshes
        // it, which resets its clock instead.
        let retractions = match expire_after {
            Some(n) => {
                let fresh: std::collections::HashSet<_> =
                    coll.traces.iter().map(|t| t.dst).collect();
                let mut ex = engine.expired(n);
                ex.retain(|a| !fresh.contains(a));
                ex
            }
            None => Vec::new(),
        };
        let batch = Batch {
            upserts: coll.traces,
            retractions,
        };
        // Append-before-apply: the batch must be durable before any of
        // it takes effect. A failed append seals its segment, so one
        // retry lands on a fresh segment with the same LSN; two
        // failures in a row is an environment problem, not a crash the
        // journal is built to ride out.
        let lsn = match &mut journal {
            Some(j) => Some(
                j.append(seed, &batch)
                    .or_else(|e| {
                        println!("journal append failed ({e}); retrying on a fresh segment");
                        j.append(seed, &batch)
                    })
                    .map_err(|e| ArgError(format!("journal append failed twice: {e}")))?,
            ),
            None => None,
        };
        let (map, report) = engine.apply(&prober, &sc.input, batch);
        let bytes = snapshot::encode_as(&map, snap_version)
            .map_err(|e| ArgError(format!("encoding pass {}: {e}", report.pass)))?;

        let (full_ms, identical) = if no_shadow {
            (None, None)
        } else {
            let t = std::time::Instant::now();
            let shadow = bdrmap_core::run_stages(
                &sc.engine(vp),
                &sc.input,
                &bcfg,
                engine.shadow_collection(),
            );
            let full_ms = t.elapsed().as_secs_f64() * 1e3;
            let shadow_bytes = snapshot::encode_as(&shadow.map, snap_version)
                .map_err(|e| ArgError(format!("encoding shadow pass {}: {e}", report.pass)))?;
            if shadow_bytes != bytes {
                return Err(ArgError(format!(
                    "pass {}: incremental map diverged from the from-scratch rebuild \
                     ({} vs {} bytes) — determinism bug",
                    report.pass,
                    bytes.len(),
                    shadow_bytes.len()
                )));
            }
            (Some(full_ms), Some(true))
        };

        let generation = match &store {
            Some((dir, st)) => Some(
                st.publish(&map)
                    .map_err(|e| ArgError(format!("publishing into {dir}: {e}")))?,
            ),
            None => None,
        };

        // Compaction after publish: the checkpoint records the
        // generation its state had published, so a recovery never
        // resumes ahead of what the store serves.
        if let Some(j) = &mut journal {
            if engine.passes().is_multiple_of(compact_every) {
                let ckpt = JournalCheckpoint {
                    lsn: j.lsn(),
                    generation: generation.unwrap_or(0),
                    pass: engine.passes(),
                    entries: engine.checkpoint_entries(),
                };
                j.checkpoint(&ckpt)
                    .map_err(|e| ArgError(format!("journal compaction failed: {e}")))?;
            }
        }

        if let (Some(generation), Some((dir, _))) = (generation, &store) {
            if args.flag("serve") {
                match &server {
                    None => {
                        let listen = args.get("listen").unwrap_or("127.0.0.1:0").to_string();
                        let s = Server::start_from_store(dir, serve_config(args, listen)?)
                            .map_err(|e| {
                                ArgError(format!("starting bdrmapd from store {dir}: {e}"))
                            })?;
                        println!(
                            "bdrmapd serving store {dir} generation {} on {}",
                            s.store_generation(),
                            s.local_addr()
                        );
                        server = Some(s);
                    }
                    Some(s) => {
                        let resp =
                            call_retry(&s.local_addr(), &Request::Reload(String::new()), 60)?;
                        if !matches!(resp, Response::Reloaded { .. }) {
                            return Err(ArgError(format!(
                                "pass {}: reload rejected: {resp:?}",
                                report.pass
                            )));
                        }
                        if s.store_generation() != generation {
                            return Err(ArgError(format!(
                                "pass {}: bdrmapd serves generation {} after reload, \
                                 store has {generation}",
                                report.pass,
                                s.store_generation()
                            )));
                        }
                    }
                }
                if let (Some(s), Some(j)) = (&server, &journal) {
                    s.set_journal_state(j.lsn(), recovered_batches);
                }
            }
        }

        println!(
            "pass {}: +{} traces ({} held), {} routers, {} re-inferred / {} reused, \
             alias {} hits / {} misses, {:.1} ms{}{}",
            report.pass,
            report.added,
            report.traces,
            report.routers,
            report.reinferred,
            report.reused,
            report.alias_cache_hits,
            report.alias_cache_misses,
            report.pass_ms,
            match full_ms {
                Some(f) => format!(" (full rebuild {f:.1} ms, identical)"),
                None => String::new(),
            },
            match generation {
                Some(g) => format!(" [generation {g}]"),
                None => String::new(),
            },
        );

        rows.push(format!(
            "    {{\"pass\": {}, \"traces\": {}, \"added\": {}, \"replaced\": {}, \
             \"retracted\": {}, \"routers\": {}, \"dirty\": {}, \"reinferred\": {}, \
             \"reused\": {}, \"alias_cache_hits\": {}, \"alias_cache_misses\": {}, \
             \"alias_packets\": {}, \"pass_ms\": {:.3}, \"full_ms\": {}, \
             \"identical\": {}, \"generation\": {}, \"journal_lsn\": {}}}",
            report.pass,
            report.traces,
            report.added,
            report.replaced,
            report.retracted,
            report.routers,
            report.dirty,
            report.reinferred,
            report.reused,
            report.alias_cache_hits,
            report.alias_cache_misses,
            report.alias_packets,
            report.pass_ms,
            full_ms.map_or("null".into(), |f: f64| format!("{f:.3}")),
            identical.map_or("null".into(), |b: bool| b.to_string()),
            generation.map_or("null".into(), |g| g.to_string()),
            lsn.map_or("null".into(), |l| l.to_string()),
        ));
    }

    if let Some(s) = server.take() {
        println!("shutting down bdrmapd on {}", s.local_addr());
        s.shutdown();
    }

    let journal_json = match &journal {
        Some(j) => format!(
            "{{\"lsn\": {}, \"recovered_batches\": {recovered_batches}, \
             \"recovery_ms\": {:.3}, \"segments\": {}, \"checkpoints\": {}}}",
            j.lsn(),
            recovery_ms.unwrap_or(0.0),
            j.segments().map_or(0, |s| s.len()),
            j.checkpoints().map_or(0, |c| c.len()),
        ),
        None => "null".into(),
    };
    let json = format!(
        "{{\n  \"bench\": \"incremental\",\n  \"schema\": 1,\n  \"preset\": \"{preset_name}\",\n  \"seed\": {seed},\n  \"alias_parallelism\": {par},\n  \"batches\": {nbatches},\n  \"shadow_checked\": {shadow},\n  \"expire_after\": {expire},\n  \"journal\": {journal_json},\n  \"passes\": [\n{rows}\n  ]\n}}\n",
        par = bcfg.alias_parallelism,
        nbatches = rows.len(),
        shadow = !no_shadow,
        expire = expire_after.map_or("null".into(), |n| n.to_string()),
        rows = rows.join(",\n"),
    );
    bdrmap_types::fsutil::write_atomic(std::path::Path::new(out), json.as_bytes())
        .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!("wrote {out}");
    write_metrics_out(args)?;
    Ok(())
}

/// Per-kind fault counts of a [`bdrmap_types::ChaosVfs`] as the inner
/// fields of a JSON object, in the fixed [`bdrmap_types::FaultKind`]
/// order.
fn fs_fault_json(vfs: &bdrmap_types::ChaosVfs) -> String {
    bdrmap_types::FaultKind::ALL
        .iter()
        .map(|&k| format!("\"{}\": {}", k.as_str(), vfs.injected(k)))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Every data-plane request `map` can answer, in deterministic order.
fn sweep_requests(map: &bdrmap_core::BorderMap) -> Vec<Request> {
    let mut reqs = Vec::new();
    for router in &map.routers {
        for &a in router.addrs.iter().chain(&router.other_addrs) {
            reqs.push(Request::Owner(a));
        }
    }
    for link in &map.links {
        for a in [link.near_addr, link.far_addr].into_iter().flatten() {
            reqs.push(Request::Border(a));
        }
    }
    let mut neighbors: Vec<_> = map.links.iter().map(|l| l.far_as).collect();
    neighbors.sort_unstable();
    neighbors.dedup();
    reqs.extend(neighbors.into_iter().map(Request::Neighbor));
    reqs
}

/// One request against a chaos-ridden bdrmapd, with retries: injected
/// resets, crashed components, and overload sheds cost another attempt
/// on a fresh connection — never a wrong answer. Erring out after
/// `attempts` is itself an invariant violation (a query was lost).
fn call_retry(
    addr: &std::net::SocketAddr,
    req: &Request,
    attempts: usize,
) -> Result<Response, ArgError> {
    for _ in 0..attempts {
        let Ok(mut client) = Client::connect(addr) else {
            std::thread::sleep(std::time::Duration::from_millis(25));
            continue;
        };
        match client.call(req) {
            Ok(Response::Overload) | Err(_) => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Ok(resp) => return Ok(resp),
        }
    }
    Err(ArgError(format!(
        "chaos: request never answered after {attempts} attempts: {req:?}"
    )))
}

/// `bdrmap chaos`: the end-to-end chaos harness. Runs
/// probe → infer → publish → serve → loadgen under a seeded fault
/// timeline — filesystem faults (ENOSPC, short writes, fsync failures,
/// silent torn renames) on every durable write, socket faults (frame
/// splits, mid-write resets, accept delays, stalls) plus scripted
/// acceptor/worker crashes on the serving path — and asserts the
/// system invariants:
///
/// 1. no acknowledged answer is ever wrong, and no query is lost;
/// 2. published generations advance monotonically;
/// 3. every failed publish leaves the store serving a verified-good
///    snapshot (rolling back past anything torn);
/// 4. once the faults stop, the system converges: the served snapshot
///    is byte-identical to the fault-free baseline.
///
/// The report (stdout summary + `--json` artifact) is a pure function
/// of `--seed`/`--fault-seed`: CI runs the same seed twice and diffs.
pub fn chaos(args: &Args) -> Result<(), ArgError> {
    use bdrmap_core::{snapshot, QueryIndex, SnapStore};
    use bdrmap_serve::{answer, ChaosNetConfig, NetFaultBudget};
    use bdrmap_types::{ChaosFsConfig, ChaosVfs, FaultKind, FsFaultBudget, Vfs};

    if args.flag("crash-watch") {
        return crash_watch(args);
    }
    use std::time::Duration;

    let seed: u64 = args.get_parse("seed", 42)?;
    let fault_seed: u64 = args.get_parse("fault-seed", 1)?;
    let rounds: u64 = args.get_parse("rounds", 8)?;
    if rounds == 0 {
        return Err(ArgError("--rounds must be at least 1".into()));
    }
    let secs: f64 = args.get_parse("secs", 0.25)?;
    if secs <= 0.0 || !secs.is_finite() {
        return Err(ArgError(format!("--secs must be positive, got {secs}")));
    }
    let every: u32 = args.get_parse("checkpoint-every", 2)?;
    if every == 0 {
        return Err(ArgError("--checkpoint-every must be at least 1".into()));
    }
    let preset_name = args.get("preset").unwrap_or("tiny").to_string();
    let cfg = preset(args)?;
    let bcfg = bdrmap_config(args)?;
    let dir = match args.get("dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("bdrmap-chaos-{seed}-{fault_seed}")),
    };
    // A clean slate keeps the whole run a pure function of the seeds.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir)
        .map_err(|e| ArgError(format!("creating {}: {e}", dir.display())))?;
    let mut violations: Vec<String> = Vec::new();

    // ---- Phase A: fault-free baseline -----------------------------
    // The sequential checkpointed probe path is the determinism
    // contract the chaos run is held to, so the baseline uses it too
    // (checkpointing off, real filesystem).
    let sc0 = Scenario::build(&preset_name, &cfg);
    let vp = vp_index(args, &sc0)?;
    println!("phase A: fault-free baseline (preset {preset_name}, seed {seed}, vp {vp})");
    let ropts = || bdrmap_probe::RunOptions {
        parallelism: 1,
        addrs_per_block: bcfg.addrs_per_block,
        use_stop_sets: bcfg.use_stop_sets,
        quarantine: None,
    };
    let targets0 = bdrmap_probe::target_blocks(&sc0.input.view, &sc0.input.vp_asns);
    let ip2as0 = sc0.input.ip2as_for_probing();
    let ck0 = bdrmap_probe::CheckpointConfig {
        every: 0,
        path: dir.join("baseline.bdrc"),
        vfs: Vfs::real(),
    };
    let coll0 = bdrmap_probe::run_traces_checkpointed(
        &sc0.engine(vp),
        &targets0,
        ropts(),
        |a| ip2as0.is_external(a),
        &ck0,
        None,
    )
    .map_err(|e| ArgError(format!("baseline probe failed: {e}")))?;
    let baseline_fp = bdrmap_probe::store::encode(&coll0);
    let baseline_traces = coll0.traces.len();
    // Inference on a pristine scenario, exactly as `bdrmap infer` does.
    let sci = Scenario::build(&preset_name, &cfg);
    let map = bdrmap_core::run_bdrmap_on_traces(&sci.engine(vp), &sci.input, &bcfg, coll0);
    let snap_version = snapshot_version(args)?;
    let baseline_bytes = snapshot::encode_as(&map, snap_version)
        .map_err(|e| ArgError(format!("encoding baseline: {e}")))?;
    println!(
        "  {baseline_traces} traces; {} routers / {} links; snapshot {} bytes",
        map.routers.len(),
        map.links.len(),
        baseline_bytes.len()
    );

    // ---- Phase B: probe + checkpoint under filesystem chaos -------
    println!("phase B: probing under injected filesystem faults");
    let probe_budget = FsFaultBudget {
        enospc: 2,
        short_write: 2,
        fsync_fail: 1,
        torn_rename: 1,
        // Reads must stay honest here: a silently flipped bit in a
        // checkpoint that still decodes would poison the resume. The
        // read-back-verified snapstore path owns bit-rot coverage.
        bit_rot: 0,
        rename_fail: 0,
    };
    let fs_probe = ChaosVfs::new(ChaosFsConfig {
        seed: fault_seed ^ 0x5052_4f42, // "PROB"
        fault_rate: 1.0,
        budget: probe_budget,
    });
    let attempt_cap = probe_budget.total() + 2;
    let ckpt_path = dir.join("probe.bdrc");
    let mut probe_attempts = 0u64;
    let coll = loop {
        probe_attempts += 1;
        if probe_attempts > attempt_cap {
            return Err(ArgError(format!(
                "probe never converged in {attempt_cap} attempts — a retry failed to drain the fault budget"
            )));
        }
        // A fresh scenario per attempt: the data plane mutates under
        // probing, and a real re-run starts from a clean process too.
        let sc = Scenario::build(&preset_name, &cfg);
        let targets = bdrmap_probe::target_blocks(&sc.input.view, &sc.input.vp_asns);
        let ip2as = sc.input.ip2as_for_probing();
        // A torn or missing checkpoint fails decode and costs a
        // from-scratch attempt; a good one resumes mid-run.
        let resume = bdrmap_probe::Checkpoint::load_with(&ckpt_path, &fs_probe.vfs()).ok();
        let from = resume.as_ref().map_or("scratch".to_string(), |c| {
            format!("target {}", c.next_target)
        });
        let ck = bdrmap_probe::CheckpointConfig {
            every,
            path: ckpt_path.clone(),
            vfs: fs_probe.vfs(),
        };
        match bdrmap_probe::run_traces_checkpointed(
            &sc.engine(vp),
            &targets,
            ropts(),
            |a| ip2as.is_external(a),
            &ck,
            resume,
        ) {
            Ok(c) => break c,
            Err(e) => println!("  attempt {probe_attempts} (from {from}) aborted: {e}"),
        }
    };
    let fp_identical = bdrmap_probe::store::encode(&coll) == baseline_fp;
    if !fp_identical {
        violations.push("probe: chaos-run traces diverged from the fault-free fingerprint".into());
    }
    // The trace store write is verified by read-back, so even a silent
    // torn rename costs only a retry.
    let trace_path = dir.join("chaos.bdrw");
    let mut store_write_retries = 0u64;
    loop {
        let written = bdrmap_probe::store::save_with(&trace_path, &coll, &fs_probe.vfs())
            .and_then(|()| bdrmap_probe::store::load_with(&trace_path, &fs_probe.vfs()));
        match written {
            Ok(back) if bdrmap_probe::store::encode(&back) == baseline_fp => break,
            Ok(_) => println!("  trace store read back corrupt; rewriting"),
            Err(e) => println!("  trace store write failed ({e}); rewriting"),
        }
        store_write_retries += 1;
        if store_write_retries > attempt_cap {
            return Err(ArgError("trace store write never converged".into()));
        }
    }
    // The deterministic fault log doubles as the artifact-writer
    // exercise: emit it through the same faulty seam, verified.
    let log_csv = {
        let mut s = String::from("op,fault,file\n");
        for line in fs_probe.log() {
            let mut parts = line.splitn(3, ' ');
            let (op, kind, file) = (
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
            );
            s.push_str(&format!("{op},{kind},{file}\n"));
        }
        s
    };
    let log_path = dir.join("fs-fault-log.csv");
    let mut artifact_retries = 0u64;
    loop {
        let ok = bdrmap_eval::artifacts::write_artifact_with(&log_path, &log_csv, &fs_probe.vfs())
            .is_ok()
            && std::fs::read_to_string(&log_path).is_ok_and(|s| s == log_csv);
        if ok {
            break;
        }
        artifact_retries += 1;
        if artifact_retries > attempt_cap {
            return Err(ArgError("artifact write never converged".into()));
        }
    }
    let probe_faults = fs_fault_json(&fs_probe);
    println!(
        "  converged after {probe_attempts} attempts ({} faults injected); fingerprint identical: {fp_identical}",
        fs_probe.injected_total()
    );

    // ---- Phase C: publish rounds under filesystem chaos -----------
    println!("phase C: {rounds} publish rounds against the snapshot store");
    let snapdir = dir.join("snapstore");
    let registry = bdrmap_obs::Registry::new();
    let store_clean = SnapStore::open_with(&snapdir, Vfs::real(), registry.clone())
        .map_err(|e| ArgError(format!("opening snapshot store: {e}")))?
        .with_snapshot_version(snap_version);
    let fs_pub = ChaosVfs::new(ChaosFsConfig {
        seed: fault_seed ^ 0x5055_424c, // "PUBL"
        // Every publish with remaining budget faults, so the schedule
        // is exact: one budget unit per failed round, clean after.
        fault_rate: 1.0,
        budget: FsFaultBudget {
            enospc: 1,
            short_write: 1,
            fsync_fail: 1,
            torn_rename: 2,
            bit_rot: 0,
            rename_fail: 0,
        },
    });
    let store_chaos = SnapStore::open_with(&snapdir, fs_pub.vfs(), registry.clone())
        .map_err(|e| ArgError(format!("opening snapshot store: {e}")))?
        .with_snapshot_version(snap_version);
    let mut last_gen = store_clean
        .publish(&map)
        .map_err(|e| ArgError(format!("base publish failed: {e}")))?;
    let (mut publishes_ok, mut publishes_failed, mut rollbacks) = (1u64, 0u64, 0u64);
    let mut monotone = true;
    for round in 1..=rounds {
        match store_chaos.publish(&map) {
            Ok(g) => {
                if g <= last_gen {
                    monotone = false;
                    violations.push(format!(
                        "publish round {round}: generation {g} did not advance past {last_gen}"
                    ));
                }
                last_gen = g;
                publishes_ok += 1;
            }
            Err(e) => {
                publishes_failed += 1;
                println!("  round {round}: publish failed ({e}); verifying recovery");
                match store_clean.load_verified() {
                    Ok(out) => {
                        if out.rolled_back() {
                            rollbacks += 1;
                        }
                        if snapshot::encode_as(&out.map, snap_version).as_deref()
                            != Ok(baseline_bytes.as_slice())
                        {
                            violations.push(format!(
                                "publish round {round}: store served a non-baseline map after the failure"
                            ));
                        }
                        if out.generation < last_gen {
                            monotone = false;
                            violations.push(format!(
                                "publish round {round}: recovery regressed to generation {} below {last_gen}",
                                out.generation
                            ));
                        }
                        last_gen = out.generation;
                    }
                    Err(e) => violations.push(format!(
                        "publish round {round}: store unrecoverable after failed publish: {e}"
                    )),
                }
            }
        }
    }
    // Every torn rename plants a corrupt generation file, and nothing
    // else does — observed rollbacks must match exactly.
    let torn = fs_pub.injected(FaultKind::TornRename);
    if rollbacks != torn {
        violations.push(format!(
            "publish: {torn} torn renames injected but {rollbacks} rollbacks observed"
        ));
    }
    fs_pub.quiesce();
    let final_gen = store_chaos
        .publish(&map)
        .map_err(|e| ArgError(format!("quiesced publish failed: {e}")))?;
    if final_gen <= last_gen {
        monotone = false;
        violations.push(format!(
            "publish: quiesced generation {final_gen} did not advance past {last_gen}"
        ));
    }
    last_gen = final_gen;
    publishes_ok += 1;
    let final_identical =
        std::fs::read(store_clean.path_of(final_gen)).is_ok_and(|b| b == baseline_bytes);
    if !final_identical {
        violations
            .push("publish: quiesced final snapshot is not byte-identical to the baseline".into());
    }
    let gen_gauge = registry.gauge("bdrmap_snapstore_generation", &[]).get();
    if gen_gauge != last_gen {
        violations.push(format!(
            "publish: generation gauge reads {gen_gauge}, store is at {last_gen}"
        ));
    }
    let pub_faults = fs_fault_json(&fs_pub);
    println!(
        "  {publishes_ok} published, {publishes_failed} failed, {rollbacks} rollbacks; store at generation {last_gen}"
    );

    // ---- Phase D: serve under socket chaos + scripted crashes -----
    println!("phase D: bdrmapd under socket chaos, scripted crashes, and a corrupt reload");
    let net_cfg = ChaosNetConfig {
        seed: fault_seed ^ 0x4e45_5457, // "NETW"
        fault_rate: 0.35,
        budget: NetFaultBudget {
            split: 4,
            reset: 3,
            accept_delay: 2,
            stall: 2,
        },
        delay: Duration::from_millis(5),
        accept_panic_after: Some(2),
        worker_panic_after: Some(5),
    };
    let mut scfg = ServeConfig {
        restart_backoff: Duration::from_millis(10),
        restart_backoff_cap: Duration::from_millis(80),
        chaos: Some(net_cfg),
        ..serve_config(args, "127.0.0.1:0".to_string())?
    };
    if args.get("server-backend").is_none() {
        // The chaos report is byte-identical per seed pair, and the
        // threads backend is the reference that contract was cut
        // against; epoll runs opt in via --server-backend epoll (CI
        // does, asserting invariants rather than bytes).
        scfg.backend = bdrmap_serve::ServerBackend::Threads;
    }
    let server = Server::start_from_store(&snapdir, scfg)
        .map_err(|e| ArgError(format!("starting bdrmapd from {}: {e}", snapdir.display())))?;
    if server.store_generation() != last_gen {
        violations.push(format!(
            "serve: booted from generation {} instead of {last_gen}",
            server.store_generation()
        ));
    }
    let addr = server.local_addr();
    let expected = QueryIndex::build(&map);
    let reqs = sweep_requests(&map);
    let mut mismatches = 0u64;
    for req in &reqs {
        let served = call_retry(&addr, req, 60)?;
        if answer(&expected, req).as_ref() != Some(&served) {
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        violations.push(format!(
            "serve: {mismatches}/{} acknowledged answers were wrong under socket chaos",
            reqs.len()
        ));
    }
    // The supervisor notices a death on its next heartbeat, which may
    // land after the sweep's last answer — poll briefly, don't race it.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.watchdog_restarts() != (1, 1) && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let restarts = server.watchdog_restarts();
    if restarts != (1, 1) {
        violations.push(format!(
            "serve: watchdog restarts {restarts:?}, expected (1, 1) — a scripted crash went unhealed"
        ));
    }
    // Plant a corrupt newer generation and hot-reload from the store:
    // bdrmapd must quarantine it and keep serving the last good one.
    std::fs::write(
        store_clean.path_of(last_gen + 1),
        b"chaos: not a BDRM snapshot",
    )
    .map_err(|e| ArgError(format!("planting corrupt generation: {e}")))?;
    let reloaded = call_retry(&addr, &Request::Reload(String::new()), 60)?;
    if !matches!(reloaded, Response::Reloaded { .. }) {
        violations.push(format!(
            "serve: reload over a corrupt newest generation failed: {reloaded:?}"
        ));
    }
    if server.store_generation() != last_gen {
        violations.push(format!(
            "serve: reload moved to generation {} instead of holding {last_gen}",
            server.store_generation()
        ));
    }
    let quarantined = std::fs::read_dir(snapdir.join("corrupt"))
        .map(|d| d.count() as u64)
        .unwrap_or(0);
    if quarantined != torn + 1 {
        violations.push(format!(
            "serve: {quarantined} files quarantined, expected {} (torn renames + planted garbage)",
            torn + 1
        ));
    }
    let metrics_text = server.metrics();
    for needle in [
        "bdrmapd_watchdog_restarts_total{component=\"acceptor\"} 1",
        "bdrmapd_watchdog_restarts_total{component=\"worker\"} 1",
        "bdrmap_snapstore_rollbacks_total 1",
    ] {
        if !metrics_text.contains(needle) {
            violations.push(format!("serve: metrics exposition missing `{needle}`"));
        }
    }
    println!(
        "  {} requests verified, {mismatches} mismatches; watchdog restarts {restarts:?}; {quarantined} quarantined",
        reqs.len()
    );

    // ---- Phase E: quiesce and converge ----------------------------
    println!("phase E: quiesce, verified clean sweep, loadgen");
    server.quiesce_chaos();
    let mut clean_first_try = true;
    match Client::connect(&addr) {
        Ok(mut client) => {
            for req in &reqs {
                match client.call(req) {
                    Ok(resp) if answer(&expected, req).as_ref() == Some(&resp) => {}
                    other => {
                        clean_first_try = false;
                        violations.push(format!(
                            "quiesce: {req:?} did not answer cleanly first try: {other:?}"
                        ));
                        break;
                    }
                }
            }
        }
        Err(e) => {
            clean_first_try = false;
            violations.push(format!(
                "quiesce: could not connect to the quiesced server: {e}"
            ));
        }
    }
    let lcfg = LoadgenConfig {
        conns: 2,
        duration: Duration::from_secs_f64(secs),
        reload_with: None,
        corrupt_rate: 0.0,
        stall_conns: 0,
        ..LoadgenConfig::default()
    };
    let lreport = bdrmap_serve::loadgen::run(addr, &bdrmap_serve::queries_for_map(&map), &lcfg)
        .map_err(|e| ArgError(format!("loadgen failed: {e}")))?;
    let loadgen_lossless = lreport.queries_error == 0 && lreport.queries_ok > 0;
    if !loadgen_lossless {
        violations.push(format!(
            "loadgen: {} queries lost in flight ({} completed)",
            lreport.queries_error, lreport.queries_ok
        ));
    }
    println!(
        "  loadgen: {} ok, {} shed, {} errors at {:.0} qps",
        lreport.queries_ok, lreport.queries_shed, lreport.queries_error, lreport.qps
    );
    let net = server.net_fault_counts().unwrap_or_default();
    server.shutdown();
    // The store, read fresh off disk, still serves the baseline.
    let converged = match store_clean.load_verified() {
        Ok(out) => {
            out.generation == last_gen
                && snapshot::encode_as(&out.map, snap_version).as_deref()
                    == Ok(baseline_bytes.as_slice())
                && !out.rolled_back()
        }
        Err(_) => false,
    };
    if !converged {
        violations.push("quiesce: final on-disk store does not serve the baseline".into());
    }

    // ---- Report ---------------------------------------------------
    // Deliberately free of wall-clock, qps, and retry-timing fields:
    // two runs with the same seeds must produce byte-identical JSON.
    let violist = violations
        .iter()
        .map(|v| format!("\"{}\"", v.escape_default()))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"report\": \"chaos\",\n  \"schema\": 1,\n  \"preset\": \"{preset_name}\",\n  \"seed\": {seed},\n  \"fault_seed\": {fault_seed},\n  \"probe\": {{\"attempts\": {probe_attempts}, \"store_write_retries\": {store_write_retries}, \"artifact_retries\": {artifact_retries}, \"fingerprint_identical\": {fp_identical}, \"fs_faults\": {{{probe_faults}}}}},\n  \"publish\": {{\"rounds\": {rounds}, \"ok\": {publishes_ok}, \"failed\": {publishes_failed}, \"rollbacks\": {rollbacks}, \"generations_monotone\": {monotone}, \"final_generation\": {last_gen}, \"final_snapshot_identical\": {final_identical}, \"fs_faults\": {{{pub_faults}}}}},\n  \"serve\": {{\"requests\": {nreqs}, \"mismatches\": {mismatches}, \"watchdog_restarts\": {{\"acceptor\": {r0}, \"worker\": {r1}}}, \"quarantined_files\": {quarantined}, \"net_faults\": {{\"split\": {split}, \"reset\": {reset}, \"accept_delay\": {accept_delay}, \"stall\": {stall}}}}},\n  \"quiesce\": {{\"clean_sweep_first_try\": {clean_first_try}, \"loadgen_lossless\": {loadgen_lossless}, \"store_converged\": {converged}}},\n  \"violations\": [{violist}]\n}}\n",
        nreqs = reqs.len(),
        r0 = restarts.0,
        r1 = restarts.1,
        split = net.split,
        reset = net.reset,
        accept_delay = net.accept_delay,
        stall = net.stall,
    );
    print!("{json}");
    if let Some(out) = args.get("json") {
        bdrmap_eval::artifacts::write_artifact(std::path::Path::new(out), &json)
            .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
        println!("wrote {out}");
    }
    if !violations.is_empty() {
        return Err(ArgError(format!(
            "chaos invariants violated:\n  {}",
            violations.join("\n  ")
        )));
    }
    println!(
        "chaos: all invariants held ({} filesystem faults, {} socket faults, 2 scripted crashes healed)",
        fs_probe.injected_total() + fs_pub.injected_total(),
        net.split + net.reset + net.accept_delay + net.stall
    );
    Ok(())
}

/// One splitmix64 step, for the crash-kill schedule. Same mixer the
/// fault injectors use, so one seed convention covers the harness.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Where the crash-kill schedule murders the watch loop within a pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kill {
    /// The pass completes: append, apply, publish, checkpoint.
    None,
    /// Killed during the journal append, with an injected append fault
    /// (ENOSPC / short write / fsync failure). The batch was never
    /// acked; only an fsync failure leaves it durable anyway.
    MidAppend,
    /// Killed after the append acked but before apply/publish. The
    /// batch must replay from the journal tail on recovery.
    PostAppend,
    /// Killed during compaction, with the checkpoint rename torn.
    /// Recovery must fall back to the previous checkpoint.
    MidCompaction,
    /// Killed during the snapstore publish, with an injected write
    /// fault. The journal is ahead of the store; recovery republishes.
    MidPublish,
}

impl Kill {
    fn as_str(self) -> &'static str {
        match self {
            Kill::None => "none",
            Kill::MidAppend => "mid-append",
            Kill::PostAppend => "post-append",
            Kill::MidCompaction => "mid-compaction",
            Kill::MidPublish => "mid-publish",
        }
    }
}

/// `bdrmap chaos --crash-watch`: the deterministic crash-kill recovery
/// harness for the durable watch loop.
///
/// Probes the target plan once up front, records a fault-free baseline
/// (per-pass snapshot bytes), then drives the journaled watch loop
/// through a seeded schedule of kills — mid-append (with an injected
/// append fault), post-append/pre-apply, mid-compaction (torn
/// checkpoint rename), and mid-publish — "respawning" after each kill
/// by re-opening the journal and recovering, exactly as a supervised
/// restart would. Asserts, at every recovery:
///
/// 1. no acked batch is lost and no unacked batch is half-applied —
///    the recovered trace set is exactly the durable plan prefix;
/// 2. the recovered engine's next map is byte-identical to the
///    fault-free baseline at the same pass;
/// 3. published generations stay monotone across crashes;
/// 4. the final recovered map equals a from-scratch `run_stages`
///    rebuild, byte for byte.
///
/// The report (stdout summary + `--json` artifact) is a pure function
/// of `--seed`/`--fault-seed`: CI runs the same seed twice and diffs.
fn crash_watch(args: &Args) -> Result<(), ArgError> {
    use bdrmap_core::{
        snapshot, IncrementalEngine, Journal, JournalCheckpoint, JournalConfig, SnapStore,
    };
    use bdrmap_types::{ChaosFsConfig, ChaosVfs, FaultKind, FsFaultBudget, Vfs};

    let seed: u64 = args.get_parse("seed", 42)?;
    let fault_seed: u64 = args.get_parse("fault-seed", 1)?;
    let batches: usize = args.get_parse("batches", 6)?;
    if batches == 0 {
        return Err(ArgError("--batches must be at least 1".into()));
    }
    let preset_name = args.get("preset").unwrap_or("tiny").to_string();
    let cfg = preset(args)?;
    let bcfg = bdrmap_config(args)?;
    let snap_version = snapshot_version(args)?;
    let dir = match args.get("dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("bdrmap-crash-{seed}-{fault_seed}")),
    };
    // A clean slate keeps the whole run a pure function of the seeds.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir)
        .map_err(|e| ArgError(format!("creating {}: {e}", dir.display())))?;
    let jdir = dir.join("journal");
    let snapdir = dir.join("snapstore");
    let registry = bdrmap_obs::Registry::new();
    let mut violations: Vec<String> = Vec::new();

    // ---- Phase A: probe the plan once, up front --------------------
    // The kill schedule replays precomputed batches so every life sees
    // the same edits a fault-free watch loop would, in the same order.
    let sc = Scenario::build(&preset_name, &cfg);
    let vp = vp_index(args, &sc)?;
    let targets = bdrmap_probe::target_blocks(&sc.input.view, &sc.input.vp_asns);
    if targets.is_empty() {
        return Err(ArgError("no target blocks to watch".into()));
    }
    let chunk = targets.len().div_ceil(batches);
    let ip2as = sc.input.ip2as_for_probing();
    let prober = sc.engine(vp);
    let pps = bdrmap_probe::EngineConfig::default().pps;
    let tick_us = 1_000_000 / pps as u64;
    println!(
        "phase A: probing the {batches}-batch plan (preset {preset_name}, seed {seed}, vp {vp})"
    );
    let plan: Vec<bdrmap_core::Batch> = targets
        .chunks(chunk)
        .map(|ct| {
            bdrmap_core::Batch::upserts(
                bdrmap_probe::run_traces(
                    &prober,
                    ct,
                    bdrmap_probe::RunOptions {
                        parallelism: bcfg.parallelism,
                        addrs_per_block: bcfg.addrs_per_block,
                        use_stop_sets: bcfg.use_stop_sets,
                        quarantine: None,
                    },
                    |a| ip2as.is_external(a),
                )
                .traces,
            )
        })
        .collect();
    let npasses = plan.len();
    let plan_traces: usize = plan.iter().map(|b| b.upserts.len()).sum();

    // ---- Phase B: fault-free baseline over the plan ----------------
    println!("phase B: fault-free baseline ({npasses} passes, {plan_traces} traces)");
    let mut expected: Vec<Vec<u8>> = Vec::new();
    let mut expected_counts: Vec<usize> = Vec::new();
    {
        let mut base = IncrementalEngine::new(bcfg, tick_us);
        for b in &plan {
            let (m, rep) = base.apply(&prober, &sc.input, b.clone());
            expected.push(
                snapshot::encode_as(&m, snap_version)
                    .map_err(|e| ArgError(format!("encoding baseline: {e}")))?,
            );
            expected_counts.push(rep.traces);
        }
    }

    // ---- Kill schedule ---------------------------------------------
    // One seeded draw per pass; with ≥ 4 passes the first four are a
    // seeded permutation of the four kill kinds, so every crash point
    // is exercised on every run. A consumed kill never re-fires: the
    // re-run of a killed pass proceeds normally.
    let mut rng = fault_seed ^ 0x4352_4153; // "CRAS"
    let mut schedule: Vec<Kill> = (0..npasses)
        .map(|_| match splitmix64(&mut rng) % 5 {
            0 => Kill::None,
            1 => Kill::MidAppend,
            2 => Kill::PostAppend,
            3 => Kill::MidCompaction,
            _ => Kill::MidPublish,
        })
        .collect();
    if npasses >= 4 {
        let mut kinds = [
            Kill::MidAppend,
            Kill::PostAppend,
            Kill::MidCompaction,
            Kill::MidPublish,
        ];
        for i in (1..kinds.len()).rev() {
            kinds.swap(i, (splitmix64(&mut rng) % (i as u64 + 1)) as usize);
        }
        schedule[..4].copy_from_slice(&kinds);
    }
    // Per-pass append fault kind, drawn for every pass so the schedule
    // is fixed regardless of which passes actually reach an append.
    let append_faults: Vec<FaultKind> = (0..npasses)
        .map(|_| match splitmix64(&mut rng) % 3 {
            0 => FaultKind::Enospc,
            1 => FaultKind::ShortWrite,
            _ => FaultKind::FsyncFail,
        })
        .collect();

    // ---- Phase C: the crash-kill loop ------------------------------
    println!("phase C: crash-kill loop over {npasses} passes");
    let mut next_pass = 0usize; // plan index to process next
    let mut acked = 0usize; // durable plan prefix
    let mut total_replayed = 0u64;
    let mut total_torn = 0u64;
    let mut ckpts_skipped = 0u64;
    let mut last_gen = 0u64;
    let mut monotone = true;
    let mut lives = 0u64;
    let mut attempt = 0u64;
    let mut kills = [0u64; 4]; // mid-append, post-append, mid-compaction, mid-publish
    let mut rows: Vec<String> = Vec::new();
    let jcfg = JournalConfig::default();

    'respawn: loop {
        lives += 1;
        // Respawn: recover exactly as `watch --journal-dir` does.
        let (mut journal, rec) = Journal::open_with(&jdir, Vfs::real(), registry.clone(), jcfg)
            .map_err(|e| ArgError(format!("life {lives}: journal recovery failed: {e}")))?;
        let mut engine = match &rec.checkpoint {
            Some(c) => {
                IncrementalEngine::restore(bcfg, tick_us, &prober, &sc.input, &c.entries, c.pass).0
            }
            None => IncrementalEngine::new(bcfg, tick_us),
        };
        for r in &rec.tail {
            engine.apply(&prober, &sc.input, r.batch.clone());
        }
        total_replayed += rec.tail.len() as u64;
        total_torn += rec.torn.len() as u64;
        ckpts_skipped += rec.checkpoints_skipped as u64;
        // No acked batch lost, no unacked batch half-applied: the
        // recovered state is exactly the durable plan prefix.
        let want = if acked == 0 {
            0
        } else {
            expected_counts[acked - 1]
        };
        if engine.trace_count() != want {
            violations.push(format!(
                "life {lives}: recovered {} traces, the durable prefix holds {want}",
                engine.trace_count()
            ));
        }
        if journal.lsn() != acked as u64 {
            violations.push(format!(
                "life {lives}: recovered lsn {} does not match {acked} durable batches",
                journal.lsn()
            ));
        }
        if next_pass >= npasses {
            // ---- Phase D: final recovery and convergence -----------
            println!(
                "phase D: final recovery (life {lives}, {} batches replayed) and convergence",
                rec.tail.len()
            );
            let shadow = bdrmap_core::run_stages(
                &sc.engine(vp),
                &sc.input,
                &bcfg,
                engine.shadow_collection(),
            );
            let final_bytes = snapshot::encode_as(&shadow.map, snap_version)
                .map_err(|e| ArgError(format!("encoding final map: {e}")))?;
            if &final_bytes != expected.last().unwrap() {
                violations.push(
                    "final: recovered map is not byte-identical to the fault-free baseline".into(),
                );
            }
            let store = SnapStore::open_with(&snapdir, Vfs::real(), registry.clone())
                .map_err(|e| ArgError(format!("opening snapshot store: {e}")))?
                .with_snapshot_version(snap_version);
            let g = store
                .publish(&shadow.map)
                .map_err(|e| ArgError(format!("final publish failed: {e}")))?;
            if g <= last_gen {
                monotone = false;
                violations.push(format!(
                    "final: generation {g} did not advance past {last_gen}"
                ));
            }
            last_gen = g;
            break 'respawn;
        }
        let store = SnapStore::open_with(&snapdir, Vfs::real(), registry.clone())
            .map_err(|e| ArgError(format!("opening snapshot store: {e}")))?
            .with_snapshot_version(snap_version);

        while next_pass < npasses {
            let p = next_pass;
            attempt += 1;
            let kill = schedule[p];
            let batch = plan[p].clone();
            let mut fault = "none";
            match kill {
                Kill::MidAppend => {
                    schedule[p] = Kill::None;
                    kills[0] += 1;
                    let fk = append_faults[p];
                    fault = fk.as_str();
                    // The one faultable op this handle ever sees is the
                    // append itself (reads only draw bit rot, and that
                    // budget is zero), so the fault lands exactly there.
                    let fsa = ChaosVfs::new(ChaosFsConfig {
                        seed: fault_seed ^ 0x4150_5044 ^ p as u64, // "APPD"
                        fault_rate: 1.0,
                        budget: FsFaultBudget {
                            enospc: u32::from(fk == FaultKind::Enospc),
                            short_write: u32::from(fk == FaultKind::ShortWrite),
                            fsync_fail: u32::from(fk == FaultKind::FsyncFail),
                            torn_rename: 0,
                            bit_rot: 0,
                            rename_fail: 0,
                        },
                    });
                    let (mut aj, _) = Journal::open_with(&jdir, fsa.vfs(), registry.clone(), jcfg)
                        .map_err(|e| {
                            ArgError(format!("pass {}: faulty reopen failed: {e}", p + 1))
                        })?;
                    if aj.append(seed, &batch).is_ok() {
                        violations.push(format!(
                            "pass {}: append under a scheduled {fault} fault was acked",
                            p + 1
                        ));
                    }
                    // An fsync failure leaves the full frame durable —
                    // unacked, but recovery replays it and the retry's
                    // identical LSN dedupes. Anything else left at most
                    // a torn tail: the pass re-runs from scratch.
                    if fk == FaultKind::FsyncFail {
                        acked = p + 1;
                        next_pass = p + 1;
                    }
                }
                Kill::PostAppend => {
                    schedule[p] = Kill::None;
                    kills[1] += 1;
                    journal
                        .append(seed, &batch)
                        .map_err(|e| ArgError(format!("pass {}: append failed: {e}", p + 1)))?;
                    acked = p + 1;
                    next_pass = p + 1;
                }
                Kill::None | Kill::MidCompaction | Kill::MidPublish => {
                    journal
                        .append(seed, &batch)
                        .map_err(|e| ArgError(format!("pass {}: append failed: {e}", p + 1)))?;
                    acked = p + 1;
                    let (map, _report) = engine.apply(&prober, &sc.input, batch);
                    let bytes = snapshot::encode_as(&map, snap_version)
                        .map_err(|e| ArgError(format!("encoding pass {}: {e}", p + 1)))?;
                    if bytes != expected[p] {
                        violations.push(format!(
                            "pass {}: map diverged from the fault-free rebuild ({} vs {} bytes)",
                            p + 1,
                            bytes.len(),
                            expected[p].len()
                        ));
                    }
                    match kill {
                        Kill::MidPublish => {
                            schedule[p] = Kill::None;
                            kills[3] += 1;
                            fault = FaultKind::Enospc.as_str();
                            let fsp = ChaosVfs::new(ChaosFsConfig {
                                seed: fault_seed ^ 0x5055_424c ^ p as u64, // "PUBL"
                                fault_rate: 1.0,
                                budget: FsFaultBudget {
                                    enospc: 1,
                                    short_write: 0,
                                    fsync_fail: 0,
                                    torn_rename: 0,
                                    bit_rot: 0,
                                    rename_fail: 0,
                                },
                            });
                            let cstore =
                                SnapStore::open_with(&snapdir, fsp.vfs(), registry.clone())
                                    .map_err(|e| ArgError(format!("opening snapshot store: {e}")))?
                                    .with_snapshot_version(snap_version);
                            if cstore.publish(&map).is_ok() {
                                violations.push(format!(
                                    "pass {}: publish under a scheduled fault succeeded",
                                    p + 1
                                ));
                            }
                            next_pass = p + 1;
                        }
                        Kill::MidCompaction => {
                            schedule[p] = Kill::None;
                            kills[2] += 1;
                            fault = FaultKind::TornRename.as_str();
                            let fsc = ChaosVfs::new(ChaosFsConfig {
                                seed: fault_seed ^ 0x434b_5054 ^ p as u64, // "CKPT"
                                fault_rate: 1.0,
                                budget: FsFaultBudget {
                                    enospc: 0,
                                    short_write: 0,
                                    fsync_fail: 0,
                                    torn_rename: 1,
                                    bit_rot: 0,
                                    rename_fail: 0,
                                },
                            });
                            let (mut cj, _) =
                                Journal::open_with(&jdir, fsc.vfs(), registry.clone(), jcfg)
                                    .map_err(|e| {
                                        ArgError(format!(
                                            "pass {}: faulty reopen failed: {e}",
                                            p + 1
                                        ))
                                    })?;
                            let ckpt = JournalCheckpoint {
                                lsn: cj.lsn(),
                                generation: last_gen,
                                pass: engine.passes(),
                                entries: engine.checkpoint_entries(),
                            };
                            if cj.checkpoint(&ckpt).is_ok() {
                                violations.push(format!(
                                    "pass {}: a torn checkpoint rename went undetected",
                                    p + 1
                                ));
                            }
                            next_pass = p + 1;
                        }
                        _ => {
                            let g = store.publish(&map).map_err(|e| {
                                ArgError(format!("pass {}: publish failed: {e}", p + 1))
                            })?;
                            if g <= last_gen {
                                monotone = false;
                                violations.push(format!(
                                    "pass {}: generation {g} did not advance past {last_gen}",
                                    p + 1
                                ));
                            }
                            last_gen = g;
                            let ckpt = JournalCheckpoint {
                                lsn: journal.lsn(),
                                generation: g,
                                pass: engine.passes(),
                                entries: engine.checkpoint_entries(),
                            };
                            journal.checkpoint(&ckpt).map_err(|e| {
                                ArgError(format!("pass {}: compaction failed: {e}", p + 1))
                            })?;
                            next_pass = p + 1;
                        }
                    }
                }
            }
            // The durable LSN always equals the durable batch count:
            // torn appends never count, fsync-failed ones always do.
            rows.push(format!(
                "    {{\"attempt\": {attempt}, \"pass\": {}, \"kill\": \"{}\", \
                 \"fault\": \"{fault}\", \"acked\": {acked}, \"lsn\": {acked}}}",
                p + 1,
                kill.as_str(),
            ));
            println!(
                "  attempt {attempt}: pass {} {} (fault {fault}); {acked}/{npasses} durable",
                p + 1,
                kill.as_str()
            );
            if kill != Kill::None {
                continue 'respawn; // the kill: drop everything mid-flight
            }
        }
    }

    if total_replayed == 0 {
        violations.push("no batch was ever replayed from the journal tail".into());
    }

    // ---- Report ----------------------------------------------------
    // Free of wall-clock fields: two runs with the same seeds must
    // produce byte-identical JSON.
    let violist = violations
        .iter()
        .map(|v| format!("\"{}\"", v.escape_default()))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"report\": \"crash-watch\",\n  \"schema\": 1,\n  \"preset\": \"{preset_name}\",\n  \"seed\": {seed},\n  \"fault_seed\": {fault_seed},\n  \"batches\": {npasses},\n  \"plan_traces\": {plan_traces},\n  \"lives\": {lives},\n  \"kills\": {{\"mid_append\": {ka}, \"post_append\": {kp}, \"mid_compaction\": {kc}, \"mid_publish\": {kb}}},\n  \"replayed_batches\": {total_replayed},\n  \"torn_tails\": {total_torn},\n  \"checkpoints_skipped\": {ckpts_skipped},\n  \"final_lsn\": {final_lsn},\n  \"final_generation\": {last_gen},\n  \"generations_monotone\": {monotone},\n  \"attempts\": [\n{rows}\n  ],\n  \"violations\": [{violist}]\n}}\n",
        ka = kills[0],
        kp = kills[1],
        kc = kills[2],
        kb = kills[3],
        final_lsn = acked,
        rows = rows.join(",\n"),
    );
    print!("{json}");
    if let Some(out) = args.get("json") {
        bdrmap_eval::artifacts::write_artifact(std::path::Path::new(out), &json)
            .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
        println!("wrote {out}");
    }
    if !violations.is_empty() {
        return Err(ArgError(format!(
            "crash-watch invariants violated:\n  {}",
            violations.join("\n  ")
        )));
    }
    println!(
        "crash-watch: all invariants held across {lives} lives ({} kills, {total_replayed} batches replayed, {total_torn} torn tails discarded)",
        kills.iter().sum::<u64>()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from), crate::VALUE_KEYS).unwrap()
    }

    #[test]
    fn preset_resolution() {
        assert!(preset(&args("run --preset tiny")).is_ok());
        assert!(preset(&args("run --preset re")).is_ok());
        assert!(preset(&args("run --preset large-access --scale 0.05")).is_ok());
        assert!(preset(&args("run --preset nonsense")).is_err());
        assert!(preset(&args("run --seed banana")).is_err());
    }

    #[test]
    fn bdrmap_config_flags() {
        let c = bdrmap_config(&args("run --no-alias --one-addr")).unwrap();
        assert!(!c.alias_resolution);
        assert_eq!(c.addrs_per_block, 1);
        assert!(c.use_stop_sets);
        let d = bdrmap_config(&args("run --no-stop-sets")).unwrap();
        assert!(!d.use_stop_sets);
        assert!(d.alias_resolution);
    }

    #[test]
    fn generate_and_run_commands_work() {
        generate(&args("generate --preset tiny --seed 9")).unwrap();
        run(&args("run --preset tiny --seed 9")).unwrap();
    }

    #[test]
    fn merge_command_works() {
        merge(&args("merge --preset tiny --seed 9 --vps 2")).unwrap();
    }

    #[test]
    fn probe_then_infer_round_trips() {
        let dir = std::env::temp_dir().join("bdrmap-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bdrw");
        let path_s = path.to_str().unwrap();
        probe(&args(&format!(
            "probe --preset tiny --seed 9 --out {path_s}"
        )))
        .unwrap();
        infer(&args(&format!(
            "infer --preset tiny --seed 9 --in {path_s}"
        )))
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fleet_and_congestion_commands_work() {
        fleet(&args("fleet --preset tiny --seed 9 --hosts 2")).unwrap();
        congestion(&args("congestion --preset tiny --seed 9")).unwrap();
        devcheck(&args("devcheck --preset tiny --seed 9")).unwrap();
    }

    #[test]
    fn probe_requires_out() {
        assert!(probe(&args("probe --preset tiny")).is_err());
        assert!(infer(&args("infer --preset tiny")).is_err());
    }

    #[test]
    fn run_rejects_bad_vp() {
        assert!(run(&args("run --preset tiny --seed 9 --vp 99")).is_err());
    }

    #[test]
    fn fault_rates_must_be_probabilities() {
        assert!(run(&args("run --preset tiny --seed 9 --loss 1.5")).is_err());
        assert!(run(&args("run --preset tiny --seed 9 --flap -0.1")).is_err());
    }

    #[test]
    fn faulted_run_and_degradation_commands_work() {
        run(&args(
            "run --preset tiny --seed 9 --loss 0.05 --fault-seed 3",
        ))
        .unwrap();
        degradation(&args(
            "degradation --preset tiny --seed 9 --loss 0.1 --flap 0.2",
        ))
        .unwrap();
    }

    #[test]
    fn probe_resumed_from_checkpoint_writes_identical_store() {
        let dir = std::env::temp_dir().join("bdrmap-cli-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.bdrw");
        let p = path.to_str().unwrap();
        // Full run leaves its last periodic checkpoint behind.
        probe(&args(&format!(
            "probe --preset tiny --seed 9 --out {p} --checkpoint-every 2"
        )))
        .unwrap();
        let first = std::fs::read(&path).unwrap();
        assert!(dir.join("c.bdrw.ckpt").exists());
        // Resuming from it in a fresh "process" (new scenario, pristine
        // data plane) must reproduce the store byte-for-byte.
        probe(&args(&format!(
            "probe --preset tiny --seed 9 --out {p} --checkpoint-every 2 --resume"
        )))
        .unwrap();
        let second = std::fs::read(&path).unwrap();
        assert_eq!(first, second, "resumed store must be byte-identical");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(dir.join("c.bdrw.ckpt")).ok();
    }

    #[test]
    fn probe_and_infer_reject_bad_vp() {
        let dir = std::env::temp_dir().join("bdrmap-cli-vp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bdrw");
        let p = p.to_str().unwrap();
        assert!(probe(&args(&format!(
            "probe --preset tiny --seed 9 --vp 99 --out {p}"
        )))
        .is_err());
        assert!(infer(&args(&format!(
            "infer --preset tiny --seed 9 --vp 99 --in {p}"
        )))
        .is_err());
    }

    #[test]
    fn query_and_loadgen_reject_bad_args() {
        assert!(query(&args("query")).is_err());
        assert!(query(&args("query --connect not-an-addr --stats")).is_err());
        assert!(query(&args("query --connect 127.0.0.1:1")).is_err());
        assert!(loadgen(&args("loadgen --connect 127.0.0.1:1 --secs 0.1")).is_err());
        assert!(loadgen(&args("loadgen --preset tiny --secs 0")).is_err());
    }

    #[test]
    fn run_map_out_then_loadgen_smoke() {
        let dir = std::env::temp_dir().join("bdrmap-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("m.bdrm");
        let snap_s = snap.to_str().unwrap();
        let json = dir.join("BENCH_serve.json");
        let json_s = json.to_str().unwrap();
        run(&args(&format!(
            "run --preset tiny --seed 9 --map-out {snap_s}"
        )))
        .unwrap();
        // Inline loadgen serves the saved snapshot, hammers it briefly,
        // hot-swaps mid-run, and writes the benchmark artifact.
        loadgen(&args(&format!(
            "loadgen --snapshot {snap_s} --secs 0.4 --conns 2 --workers 2 --json {json_s}"
        )))
        .unwrap();
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"bench\": \"serve\""));
        assert!(report.contains("\"queries_ok\""));
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn chaos_command_end_to_end() {
        let dir = std::env::temp_dir().join("bdrmap-cli-chaos-test");
        let json = std::env::temp_dir().join("bdrmap-cli-chaos-test.json");
        let dir_s = dir.to_str().unwrap();
        let json_s = json.to_str().unwrap();
        chaos(&args(&format!(
            "chaos --preset tiny --seed 9 --fault-seed 3 --rounds 6 --secs 0.2 --dir {dir_s} --json {json_s}"
        )))
        .unwrap();
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"report\": \"chaos\""), "{report}");
        assert!(report.contains("\"violations\": []"), "{report}");
        assert!(
            report.contains("\"fingerprint_identical\": true"),
            "{report}"
        );
        assert!(report.contains("\"store_converged\": true"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn chaos_rejects_bad_args() {
        assert!(chaos(&args("chaos --rounds 0")).is_err());
        assert!(chaos(&args("chaos --secs 0")).is_err());
        assert!(chaos(&args("chaos --checkpoint-every 0")).is_err());
    }

    #[test]
    fn watch_with_journal_recovers_from_tail_replay() {
        let dir = std::env::temp_dir().join("bdrmap-cli-watch-journal-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let jdir = dir.join("journal");
        let json = dir.join("b.json");
        let base = format!(
            "watch --preset tiny --seed 9 --batches 2 --journal-dir {} --json {}",
            jdir.display(),
            json.display()
        );
        // First "process": two passes, both journaled, no checkpoint
        // (the default cadence is 4 passes).
        watch(&args(&base)).unwrap();
        let first = std::fs::read_to_string(&json).unwrap();
        assert!(first.contains("\"recovered_batches\": 0"), "{first}");
        assert!(first.contains("\"journal_lsn\": 2"), "{first}");
        // Second "process": recovery replays both batches from the
        // journal tail, then every new pass still shadow-checks clean
        // against a from-scratch rebuild (watch errors on divergence).
        watch(&args(&base)).unwrap();
        let second = std::fs::read_to_string(&json).unwrap();
        assert!(second.contains("\"recovered_batches\": 2"), "{second}");
        assert!(second.contains("\"journal_lsn\": 4"), "{second}");
        assert!(!second.contains("\"identical\": false"), "{second}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_with_journal_recovers_from_checkpoint() {
        let dir = std::env::temp_dir().join("bdrmap-cli-watch-ckpt-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let jdir = dir.join("journal");
        let json = dir.join("b.json");
        let base = format!(
            "watch --preset tiny --seed 9 --batches 2 --compact-every 2 --journal-dir {} --json {}",
            jdir.display(),
            json.display()
        );
        watch(&args(&base)).unwrap();
        assert!(
            std::fs::read_dir(&jdir)
                .unwrap()
                .filter_map(|e| e.ok())
                .any(|e| e.file_name().to_string_lossy().ends_with(".bdrk")),
            "pass 2 must have written a checkpoint"
        );
        // Recovery restores from the checkpoint (empty tail) and the
        // restored engine's passes are byte-identical to a rebuild.
        watch(&args(&base)).unwrap();
        let second = std::fs::read_to_string(&json).unwrap();
        assert!(second.contains("\"recovered_batches\": 0"), "{second}");
        assert!(second.contains("\"journal_lsn\": 4"), "{second}");
        assert!(!second.contains("\"identical\": false"), "{second}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_expire_after_retracts_unrefreshed_traces() {
        let dir = std::env::temp_dir().join("bdrmap-cli-watch-expire-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("b.json");
        // Three chunked passes with a one-pass expiry: at pass 3 the
        // pass-1 chunk is stale (refreshed at 1, clock at 2) and is not
        // in the pass-3 probe batch, so it must be retracted — and the
        // shadow check proves the retracted rebuild is byte-identical.
        watch(&args(&format!(
            "watch --preset tiny --seed 9 --batches 3 --expire-after 1 --json {}",
            json.display()
        )))
        .unwrap();
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"expire_after\": 1"), "{report}");
        let pass3 = report.split("\"pass\": 3").nth(1).unwrap();
        let retracted: u64 = pass3
            .split("\"retracted\": ")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(retracted > 0, "pass 3 must retract the stale pass-1 chunk");
        // A wide window never retracts anything here.
        watch(&args(&format!(
            "watch --preset tiny --seed 9 --batches 3 --expire-after 3 --json {}",
            json.display()
        )))
        .unwrap();
        let report = std::fs::read_to_string(&json).unwrap();
        assert_eq!(
            report.matches("\"retracted\": 0").count(),
            3,
            "a 3-pass window must never expire anything: {report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_watch_end_to_end() {
        let dir = std::env::temp_dir().join("bdrmap-cli-crash-watch-test");
        let json = std::env::temp_dir().join("bdrmap-cli-crash-watch-test.json");
        chaos(&args(&format!(
            "chaos --crash-watch --preset tiny --seed 9 --fault-seed 5 --batches 6 --dir {} --json {}",
            dir.display(),
            json.display()
        )))
        .unwrap();
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"report\": \"crash-watch\""), "{report}");
        assert!(report.contains("\"violations\": []"), "{report}");
        assert!(
            report.contains("\"generations_monotone\": true"),
            "{report}"
        );
        // Every crash point fired, and at least one acked batch came
        // back from the journal tail rather than a checkpoint.
        for k in [
            "\"mid_append\": 1",
            "\"post_append\": 1",
            "\"mid_compaction\": 1",
            "\"mid_publish\": 1",
        ] {
            assert!(report.contains(k), "missing {k} in {report}");
        }
        assert!(!report.contains("\"replayed_batches\": 0"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn watch_and_crash_watch_reject_bad_args() {
        assert!(chaos(&args("chaos --crash-watch --batches 0")).is_err());
        assert!(watch(&args("watch --preset tiny --expire-after 0")).is_err());
        assert!(watch(&args("watch --preset tiny --compact-every 0")).is_err());
        assert!(watch(&args("watch --preset tiny --serve")).is_err());
    }

    #[test]
    fn presets_cover_all_vp_kinds() {
        use bdrmap_topo::AsKind;
        let kinds = [
            preset(&args("x --preset re")).unwrap().vp_kind,
            preset(&args("x --preset large-access")).unwrap().vp_kind,
            preset(&args("x --preset tier1")).unwrap().vp_kind,
            preset(&args("x --preset small-access")).unwrap().vp_kind,
        ];
        assert_eq!(
            kinds,
            [
                AsKind::ResearchEdu,
                AsKind::Access,
                AsKind::Tier1,
                AsKind::SmallAccess
            ]
        );
    }
    #[test]
    fn alias_parallelism_rejects_zero_and_defaults_to_cores() {
        let e = alias_parallelism(&args("x --alias-parallelism 0")).unwrap_err();
        assert!(e.0.contains("alias-parallelism"));
        assert_eq!(
            alias_parallelism(&args("x --alias-parallelism 6")).unwrap(),
            6
        );
        assert!(alias_parallelism(&args("x")).unwrap() >= 1);
    }

    #[test]
    fn bdrmap_config_carries_alias_parallelism() {
        let cfg = bdrmap_config(&args("x --alias-parallelism 4")).unwrap();
        assert_eq!(cfg.alias_parallelism, 4);
        assert!(bdrmap_config(&args("x --alias-parallelism 0")).is_err());
    }
}
