//! Minimal argument parsing: `--flag`, `--key value`, and positional
//! subcommands. Hand-rolled to keep the dependency set at the workspace
//! baseline.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// First positional token.
    pub command: Option<String>,
    /// `--key value` options.
    options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    flags: Vec<String>,
}

/// A parse failure with a message suitable for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a token stream (excluding `argv[0]`). `value_keys` lists the
    /// options that consume a value; any other `--x` is a flag.
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
        value_keys: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if value_keys.contains(&key) {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
                    if v.starts_with("--") {
                        return Err(ArgError(format!("--{key} needs a value, got {v}")));
                    }
                    out.options.insert(key.to_string(), v);
                } else {
                    out.flags.push(key.to_string());
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected argument: {tok}")));
            }
        }
        Ok(out)
    }

    /// Value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Parsed value of `--key`, or the default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{key}: {v}"))),
        }
    }

    /// True if `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Reject unknown flags (typo guard).
    pub fn check_flags(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for f in &self.flags {
            if !allowed.contains(&f.as_str()) {
                return Err(ArgError(format!("unknown flag: --{f}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(
            s.split_whitespace().map(String::from),
            &["seed", "scale", "preset", "vps"],
        )
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("run --preset re --seed 7 --full").unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("preset"), Some("re"));
        assert_eq!(a.get_parse::<u64>("seed", 0).unwrap(), 7);
        assert!(a.flag("full"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("run").unwrap();
        assert_eq!(a.get_parse::<u64>("seed", 42).unwrap(), 42);
        assert_eq!(a.get_parse::<f64>("scale", 0.1).unwrap(), 0.1);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse("run --seed").is_err());
        assert!(parse("run --seed --full").is_err());
    }

    #[test]
    fn invalid_value_is_an_error() {
        let a = parse("run --seed banana").unwrap();
        assert!(a.get_parse::<u64>("seed", 0).is_err());
    }

    #[test]
    fn extra_positional_rejected() {
        assert!(parse("run extra").is_err());
    }

    #[test]
    fn unknown_flag_detected() {
        let a = parse("run --bogus").unwrap();
        assert!(a.check_flags(&["full"]).is_err());
        assert!(a.check_flags(&["full", "bogus"]).is_ok());
    }
}
