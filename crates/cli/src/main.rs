//! `bdrmap` — the command-line face of the reproduction.
//!
//! ```text
//! bdrmap generate  --preset large-access --seed 42 [--scale 0.1]
//! bdrmap run       --preset re --seed 1 [--vp 0] [--no-alias] [--one-addr]
//! bdrmap merge     --preset large-access --seed 2 --scale 0.08 [--vps 5]
//! bdrmap table1    [--full] [--seed N]
//! bdrmap insights  [--full] [--seed N]
//! bdrmap ablation  [--seed N] [--scale 0.08]
//! bdrmap resources [--seed N]
//! ```

mod args;
mod commands;

use args::Args;

const VALUE_KEYS: &[&str] = &[
    "preset",
    "seed",
    "scale",
    "vp",
    "vps",
    "out",
    "in",
    "hosts",
    "fault-seed",
    "loss",
    "flap",
    "checkpoint-every",
    "map-out",
    "snapshot",
    "listen",
    "connect",
    "workers",
    "queue",
    "server-backend",
    "metrics-addr",
    "connections",
    "idle-frac",
    "pipeline",
    "addr",
    "border",
    "neighbor",
    "reload",
    "conns",
    "secs",
    "json",
    "alias-parallelism",
    "snap-dir",
    "corrupt-rate",
    "stall-conns",
    "iters",
    "fuzz-seed",
    "metrics-out",
    "rounds",
    "dir",
    "batches",
    "journal-dir",
    "expire-after",
    "compact-every",
    "snapshot-version",
    "sizes",
];
const FLAGS: &[&str] = &[
    "full",
    "no-alias",
    "one-addr",
    "no-stop-sets",
    "resume",
    "stats",
    "health",
    "reload-store",
    "metrics",
    "serve",
    "no-shadow",
    "crash-watch",
    "help",
];

fn usage() -> &'static str {
    "bdrmap — inference of borders between IP networks (IMC 2016 reproduction)

USAGE:
    bdrmap <COMMAND> [OPTIONS]

COMMANDS:
    generate    generate a ground-truth Internet and print its summary
    run         run the full pipeline from one VP and print the border map
    merge       run every VP and print the merged interconnectivity view
    table1      regenerate Table 1 + §5.6 validation for the paper's networks
    insights    regenerate Figures 14/15/16 (19-VP access network)
    ablation    run the design-choice ablation suite
    resources   reproduce the §5.8 central-vs-device state comparison
    probe       collect traces only and save them (--out traces.bdrw)
    infer       run inference over saved traces (--in traces.bdrw)
    fleet       run bdrmap from VPs hosted in many other networks (§5.7)
    devcheck    §5.1 development-mode sanity checks over synthesized DNS
    congestion  discover borders, inject diurnal congestion, detect with TSLP
    degradation sweep injected loss/flap rates, report precision/recall
    serve       run bdrmapd: answer border-map queries over TCP
    query       one-shot client for a running bdrmapd
    loadgen     closed-loop load against bdrmapd, reporting QPS + latency
    fuzz        seeded hostile-input fuzzing of the snapshot + wire codecs
    chaos       end-to-end seeded fault injection: probe, publish, and serve
                under filesystem + socket chaos, asserting system invariants
    watch       stream trace batches through the incremental engine: each
                pass re-infers only the dirty region, shadow-checks against
                a from-scratch rebuild, and can publish + hot-swap bdrmapd
    bench-pipeline  time every pipeline stage, write BENCH_pipeline.json
    bench-reload    time v2 parse-and-rebuild vs v3 open-and-validate
                    reloads at several map sizes, write BENCH_reload.json

OPTIONS:
    --preset <tiny|re|large-access|tier1|small-access>   topology preset
    --seed <u64>         RNG seed (default 42)
    --scale <f64>        scale factor for the big presets (default 0.1)
    --vp <idx>           vantage point index for `run` (default 0)
    --vps <n>            number of VPs for `merge` (default: all)
    --full               paper-scale scenarios for table1/insights
    --no-alias           disable alias resolution (ablation A1)
    --one-addr           probe one address per block (ablation A2)
    --no-stop-sets       disable doubletree stop sets
    --out <path>         where `probe` writes the trace store
    --in <path>          trace store `infer` reads
    --alias-parallelism <n>  alias-resolution worker threads (default: all
                         cores; output is byte-identical at any value)

FAULT INJECTION (run / probe / degradation):
    --fault-seed <u64>   fault PRNG seed (default 1); same seed replays identically
    --loss <f64>         probe/response loss rate in [0,1] (degradation: sweep max)
    --flap <f64>         fraction of links flapping (degradation: sweep max)
    --checkpoint-every <n>  `probe`: checkpoint to <out>.ckpt every n target ASes
    --resume             `probe`: resume from <out>.ckpt if present

SERVING (serve / query / loadgen):
    --map-out <path>     `run`: also save the border map as a snapshot file
    --snapshot-version <1|2|3>  run/watch/chaos: snapshot format written
                         (default 3, the flat zero-copy layout; 2 is the
                         legacy parse-and-rebuild encoding)
    --snap-dir <dir>     `run`: publish the map into a crash-safe snapshot
                         store; `serve`: boot from the store's newest
                         verified-good generation (rolls back past corrupt
                         files, quarantining them)
    --snapshot <path>    serve/loadgen: use a saved snapshot instead of inferring
    --listen <addr>      `serve`: bind address (default 127.0.0.1:47700)
    --workers <n>        worker threads / event loops (default 4)
    --queue <n>          accept-queue depth before shedding (default 128)
    --server-backend <threads|epoll>  serving backend (default: epoll on
                         Linux, threads elsewhere; chaos pins threads)
    --metrics-addr <addr>  serve/loadgen: also serve GET /metrics over
                         plain HTTP on this address (epoll backend only)
    --connect <addr>     query/loadgen: a running bdrmapd to talk to
    --addr <ip>          `query`: who owns this address?
    --border <ip>        `query`: which border link carries this interface?
    --neighbor <asn>     `query`: all links to this neighbor AS
    --stats              `query`: server statistics
    --health             `query`: generation, swap epoch, breaker state, uptime
    --metrics            `query`: Prometheus-style metrics exposition
    --reload <path>      query/loadgen: hot-swap in this snapshot file
    --reload-store       `query`: hot-swap from the server's snapshot store
    --conns <n>          `loadgen`: closed-loop connections (default 4)
    --secs <f>           `loadgen`: run time in seconds (default 2)
    --corrupt-rate <f>   `loadgen`: fraction of requests sent corrupted [0,1]
    --stall-conns <n>    `loadgen`: extra slow-loris connections (default 0)
    --connections <n>    `loadgen`: scale mode (Linux) — hold n concurrent
                         connections from one epoll client loop and write
                         BENCH_serve_scale.json (overrides --conns)
    --idle-frac <f>      `loadgen` scale mode: fraction of connections
                         parked as idle keepalive ballast (default 0.5)
    --pipeline <n>       `loadgen` scale mode: frames in flight per active
                         connection (default 4)
    --json <path>        loadgen/bench-pipeline: report path (bench-pipeline
                         default: BENCH_pipeline.json)
    --metrics-out <path> run/merge/fleet/watch: write the pipeline/probe
                         metric exposition to this file after the run

WATCH (watch):
    --batches <n>        split the target blocks into n probe batches (default 4)
    --no-shadow          skip the per-pass byte-check against a from-scratch
                         rebuild (the check is the correctness contract;
                         only skip it when timing incremental passes alone)
    --snap-dir <dir>     publish each pass as a new store generation
    --serve              with --snap-dir: boot bdrmapd from the store and
                         hot-swap it after every pass (--listen, default
                         127.0.0.1:0)
    --journal-dir <dir>  write-ahead journal: append every batch before
                         applying it, and recover on startup from the
                         newest verified checkpoint + journal tail replay
    --expire-after <n>   retract traces not refreshed within n passes
    --compact-every <n>  journal checkpoint cadence in passes (default 4)
    --json <path>        per-pass report (default BENCH_incremental.json)

FUZZING (fuzz):
    --iters <n>          seeded mutations to run (default 10000)
    --fuzz-seed <u64>    fuzzer seed (default 42); same seed, same mutants

CHAOS (chaos):
    --fault-seed <u64>   fault-schedule seed (default 1); the printed report
                         and --json artifact are byte-identical per seed
    --crash-watch        run the crash-kill recovery harness instead: kill
                         and respawn the journaled watch loop at seeded
                         points (mid-append, post-append, mid-compaction,
                         mid-publish), asserting byte-identical recovery
                         (--batches sets the plan size, default 6)
    --rounds <n>         snapshot publish rounds under fs faults (default 8)
    --secs <f>           quiesced loadgen duration (default 0.25)
    --checkpoint-every <n>  probe checkpoint cadence in target ASes (default 2)
    --dir <path>         working directory (default: a per-seed temp dir)
    --json <path>        also write the deterministic report there
"
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1), VALUE_KEYS) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = args.check_flags(FLAGS) {
        eprintln!("error: {e}\n\n{}", usage());
        std::process::exit(2);
    }
    if args.flag("help") || args.command.is_none() {
        println!("{}", usage());
        return;
    }
    let result = match args.command.as_deref().unwrap() {
        "generate" => commands::generate(&args),
        "run" => commands::run(&args),
        "merge" => commands::merge(&args),
        "table1" => commands::table1(&args),
        "insights" => commands::insights(&args),
        "ablation" => commands::ablation(&args),
        "resources" => commands::resources(&args),
        "probe" => commands::probe(&args),
        "infer" => commands::infer(&args),
        "fleet" => commands::fleet(&args),
        "devcheck" => commands::devcheck(&args),
        "congestion" => commands::congestion(&args),
        "degradation" => commands::degradation(&args),
        "serve" => commands::serve(&args),
        "query" => commands::query(&args),
        "loadgen" => commands::loadgen(&args),
        "fuzz" => commands::fuzz(&args),
        "chaos" => commands::chaos(&args),
        "watch" => commands::watch(&args),
        "bench-pipeline" => commands::bench_pipeline(&args),
        "bench-reload" => commands::bench_reload(&args),
        other => {
            eprintln!("error: unknown command: {other}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
