//! Seeded structure-aware fuzzing of the BDRM snapshot codec and the
//! bdrmapd wire protocol.
//!
//! No external fuzzing engine: a splitmix64 generator (the same
//! pattern as the dataplane fault layer) drives every draw, so a run
//! is reproduced exactly by its seed — a CI failure is one `--fuzz-seed`
//! away from a local repro.
//!
//! The fuzzer starts from *valid* artifacts (encoded border maps in
//! the v1, v2, and v3 formats, encoded requests and responses) and
//! applies structure-aware mutations: bit flips, byte overwrites,
//! truncations, extensions, internal splices, and 32-bit boundary
//! overwrites aimed at length/count fields. Two properties must hold
//! for every mutant:
//!
//! 1. **No panic.** Decoding arbitrary bytes returns `Ok` or a typed
//!    error; it never unwinds. (Checked under `catch_unwind`.)
//! 2. **Canonical acceptance.** If a mutant *is* accepted, re-encoding
//!    the decoded value must be a byte-level fixed point: `encode` of
//!    the decode must itself decode, and re-encode to identical bytes.
//!    Accepted-but-not-canonical inputs are how silent corruption
//!    propagates through a snapshot store.
//!
//! Raw frame reading ([`read_frame`]) gets its own hostile stream
//! cases (lying length prefixes, truncated bodies) with the same
//! no-panic requirement.

use bdrmap_core::output::{BorderMap, Heuristic, InferredLink, InferredRouter};
use bdrmap_core::snapshot;
use bdrmap_serve::{Request, Response};
use bdrmap_types::wire::read_frame;
use bdrmap_types::{addr, Asn};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One splitmix64 step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Aggregated outcome of one fuzzing run. CI asserts the two failure
/// counters are zero.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzReport {
    /// Total mutants exercised.
    pub iterations: u64,
    /// Mutants aimed at the snapshot codec.
    pub snapshot_cases: u64,
    /// Mutants aimed at the request/response codecs.
    pub wire_cases: u64,
    /// Hostile raw-frame streams fed to `read_frame`.
    pub frame_cases: u64,
    /// Mutants the decoder accepted.
    pub accepted: u64,
    /// Mutants the decoder rejected with a typed error.
    pub rejected: u64,
    /// Decodes that panicked — must be zero.
    pub panics: u64,
    /// Accepted mutants whose re-encode was not a byte-level fixed
    /// point — must be zero.
    pub canonical_violations: u64,
}

impl FuzzReport {
    /// True when every property held.
    pub fn clean(&self) -> bool {
        self.panics == 0 && self.canonical_violations == 0
    }

    /// Stable JSON for CI logs.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"fuzz\",\n  \"schema\": 1,\n  \"iterations\": {},\n  \"snapshot_cases\": {},\n  \"wire_cases\": {},\n  \"frame_cases\": {},\n  \"accepted\": {},\n  \"rejected\": {},\n  \"panics\": {},\n  \"canonical_violations\": {}\n}}\n",
            self.iterations,
            self.snapshot_cases,
            self.wire_cases,
            self.frame_cases,
            self.accepted,
            self.rejected,
            self.panics,
            self.canonical_violations
        )
    }
}

/// Hand-built border maps exercising every structural variant the
/// codec has: empty, option-dense, multi-router, multi-link.
fn snapshot_corpus() -> Vec<BorderMap> {
    let r = |addrs: &[u32], owner: Option<u32>, h: Option<Heuristic>| InferredRouter {
        addrs: addrs.iter().map(|&a| addr(a)).collect(),
        other_addrs: vec![],
        owner: owner.map(Asn),
        heuristic: h,
        min_hop: 3,
    };
    let empty = BorderMap::default();
    let small = BorderMap {
        routers: vec![
            r(&[0x0A00_0001], Some(64500), Some(Heuristic::VpInternal)),
            r(
                &[0x0A00_0002, 0x0A00_0003],
                Some(64501),
                Some(Heuristic::OneNet),
            ),
        ],
        links: vec![InferredLink {
            near: 0,
            far: Some(1),
            far_as: Asn(64501),
            near_addr: Some(addr(0x0A00_0001)),
            far_addr: Some(addr(0x0A00_0002)),
            heuristic: Heuristic::OneNet,
        }],
        packets: 1234,
        elapsed_ms: 60_000,
    };
    let dense = BorderMap {
        routers: vec![
            InferredRouter {
                addrs: vec![addr(0xC000_0201)],
                other_addrs: vec![addr(0xC000_0202), addr(0xC000_0203)],
                owner: None,
                heuristic: None,
                min_hop: 0,
            },
            r(&[0xC000_0204], Some(64502), Some(Heuristic::SilentNeighbor)),
            r(&[], None, None),
        ],
        links: vec![
            InferredLink {
                near: 0,
                far: None,
                far_as: Asn(64502),
                near_addr: None,
                far_addr: None,
                heuristic: Heuristic::SilentNeighbor,
            },
            InferredLink {
                near: 1,
                far: Some(2),
                far_as: Asn(64503),
                near_addr: Some(addr(0xC000_0204)),
                far_addr: None,
                heuristic: Heuristic::ThirdParty,
            },
        ],
        packets: u64::MAX,
        elapsed_ms: 0,
    };
    vec![empty, small, dense]
}

/// Valid protocol payloads covering every request and response shape.
fn wire_corpus() -> Vec<Vec<u8>> {
    use bdrmap_core::OwnerAnswer;
    use bdrmap_serve::{HealthInfo, LinkInfo, Stats};
    let link = LinkInfo {
        link: 9,
        near_router: 2,
        near_owner: Some(Asn(64500)),
        far_as: Asn(64501),
        near_addr: Some(addr(0x0A00_0001)),
        far_addr: None,
        heuristic: Heuristic::OneNet,
    };
    let mut corpus: Vec<Vec<u8>> = vec![
        Request::Owner(addr(0xC000_0201)).encode(),
        Request::Border(addr(0x0A00_0001)).encode(),
        Request::Neighbor(Asn(64501)).encode(),
        Request::Stats.encode(),
        Request::Reload("/snap/gen-000001.bdrm".into()).encode(),
        Request::Reload(String::new()).encode(),
        Request::Health.encode(),
    ];
    corpus.extend([
        Response::Owner(Some(OwnerAnswer {
            asn: Asn(64500),
            prefix: "10.0.0.0/8".parse().unwrap(),
            router: Some(2),
        }))
        .encode(),
        Response::Owner(None).encode(),
        Response::Border(Some(link)).encode(),
        Response::Border(None).encode(),
        Response::Neighbor(vec![link, link]).encode(),
        Response::Neighbor(vec![]).encode(),
        Response::Stats(Stats {
            generation: 3,
            routers: 4,
            links: 2,
            prefixes: 9,
            queries: 100,
            sheds: 1,
            last_build_us: 500,
            last_swap_us: 5,
            evicted_slow: 1,
            evicted_flood: 0,
            setup_errors: 0,
            reload_failures: 2,
            drained: 1,
            breaker_state: 1,
        })
        .encode(),
        Response::Reloaded {
            generation: 2,
            build_us: 900,
            swap_us: 12,
            routers: 4,
            links: 2,
        }
        .encode(),
        Response::Health(HealthInfo {
            generation: 5,
            swap_epoch: 6,
            breaker_state: 2,
            uptime_ms: 100_000,
            reload_failures: 1,
            journal_lsn: 17,
            recovered_batches: 2,
        })
        .encode(),
        Response::Overload.encode(),
        Response::Error("reload failed after 3 attempt(s)".into()).encode(),
    ]);
    corpus
}

/// Apply one structure-aware mutation. Draw order is fixed, so the
/// whole mutant stream replays from the seed.
fn mutate(base: &[u8], rng: &mut u64) -> Vec<u8> {
    let mut bytes = base.to_vec();
    let kind = splitmix64(rng) % 6;
    match kind {
        0 => {
            // Single bit flip.
            if !bytes.is_empty() {
                let i = (splitmix64(rng) as usize) % bytes.len();
                bytes[i] ^= 1 << (splitmix64(rng) % 8);
            }
        }
        1 => {
            // Byte overwrite.
            if !bytes.is_empty() {
                let i = (splitmix64(rng) as usize) % bytes.len();
                bytes[i] = splitmix64(rng) as u8;
            }
        }
        2 => {
            // Truncate to a strict prefix.
            let keep = (splitmix64(rng) as usize) % bytes.len().max(1);
            bytes.truncate(keep);
        }
        3 => {
            // Extend with garbage.
            let extra = 1 + (splitmix64(rng) as usize) % 16;
            for _ in 0..extra {
                bytes.push(splitmix64(rng) as u8);
            }
        }
        4 => {
            // Splice: copy one internal chunk over another.
            if bytes.len() >= 8 {
                let len = 1 + (splitmix64(rng) as usize) % (bytes.len() / 2);
                let src = (splitmix64(rng) as usize) % (bytes.len() - len + 1);
                let dst = (splitmix64(rng) as usize) % (bytes.len() - len + 1);
                let chunk = bytes[src..src + len].to_vec();
                bytes[dst..dst + len].copy_from_slice(&chunk);
            }
        }
        _ => {
            // Boundary-value u32 overwrite: aims at length/count/CRC
            // fields, which all live on arbitrary offsets.
            if bytes.len() >= 4 {
                let i = (splitmix64(rng) as usize) % (bytes.len() - 3);
                let v: u32 = match splitmix64(rng) % 5 {
                    0 => 0,
                    1 => 1,
                    2 => u32::MAX,
                    3 => bytes.len() as u32,
                    _ => 1 << 30,
                };
                bytes[i..i + 4].copy_from_slice(&v.to_be_bytes());
            }
        }
    }
    bytes
}

enum Outcome {
    Accepted,
    Rejected,
    Panicked,
    NotCanonical,
}

/// Decode a snapshot mutant and enforce both fuzz properties.
fn check_snapshot(bytes: &[u8]) -> Outcome {
    let decoded = catch_unwind(AssertUnwindSafe(|| snapshot::decode(bytes)));
    match decoded {
        Err(_) => Outcome::Panicked,
        Ok(Err(_)) => Outcome::Rejected,
        Ok(Ok(map)) => {
            // Canonical: re-encoding the accepted value *in the version
            // the mutant claimed* is a byte-level fixed point. (decode
            // succeeded, so the preamble — and its version — is there.)
            let version = snapshot::version_of(bytes).expect("accepted mutant has a preamble");
            let Ok(e1) = snapshot::encode_as(&map, version) else {
                return Outcome::NotCanonical;
            };
            match snapshot::decode(&e1) {
                Ok(map2) if snapshot::encode_as(&map2, version) == Ok(e1) => Outcome::Accepted,
                _ => Outcome::NotCanonical,
            }
        }
    }
}

/// Decode a protocol mutant as both a request and a response (a fuzzer
/// does not know which side the bytes were meant for — neither does a
/// hostile peer) and enforce both properties on whichever accepts.
fn check_wire(bytes: &[u8]) -> Outcome {
    let decoded = catch_unwind(AssertUnwindSafe(|| {
        (Request::decode(bytes), Response::decode(bytes))
    }));
    let (req, resp) = match decoded {
        Err(_) => return Outcome::Panicked,
        Ok(pair) => pair,
    };
    let mut accepted = false;
    if let Ok(req) = req {
        accepted = true;
        let e1 = req.encode();
        if Request::decode(&e1).ok().map(|r| r.encode()) != Some(e1) {
            return Outcome::NotCanonical;
        }
    }
    if let Ok(resp) = resp {
        accepted = true;
        let e1 = resp.encode();
        if Response::decode(&e1).ok().map(|r| r.encode()) != Some(e1) {
            return Outcome::NotCanonical;
        }
    }
    if accepted {
        Outcome::Accepted
    } else {
        Outcome::Rejected
    }
}

/// Feed a hostile byte stream to the frame reader; only the no-panic
/// property applies (there is no value to re-encode).
fn check_frame(bytes: &[u8]) -> Outcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut cursor = std::io::Cursor::new(bytes);
        // Small cap so lying length prefixes are exercised cheaply.
        read_frame(&mut cursor, 1 << 16)
    }));
    match result {
        Err(_) => Outcome::Panicked,
        Ok(Ok(_)) => Outcome::Accepted,
        Ok(Err(_)) => Outcome::Rejected,
    }
}

/// Run `iters` seeded mutants across all three targets.
pub fn run(seed: u64, iters: u64) -> FuzzReport {
    let mut rng = seed ^ 0xbd2_3a93;
    let snaps: Vec<Vec<u8>> = snapshot_corpus()
        .iter()
        .flat_map(|m| {
            [
                snapshot::encode(m).unwrap(),
                snapshot::encode_v1(m).unwrap(),
                snapshot::encode_v3(m).unwrap(),
            ]
        })
        .collect();
    let wires = wire_corpus();
    let mut report = FuzzReport::default();
    for _ in 0..iters {
        report.iterations += 1;
        let outcome = match splitmix64(&mut rng) % 5 {
            // Snapshot codec gets the biggest share: it guards
            // persistence, where corruption is stickiest.
            0 | 1 => {
                report.snapshot_cases += 1;
                let base = &snaps[(splitmix64(&mut rng) as usize) % snaps.len()];
                check_snapshot(&mutate(base, &mut rng))
            }
            2 | 3 => {
                report.wire_cases += 1;
                let base = &wires[(splitmix64(&mut rng) as usize) % wires.len()];
                check_wire(&mutate(base, &mut rng))
            }
            _ => {
                report.frame_cases += 1;
                // Frames: mutate a framed wire payload so length
                // prefixes and bodies both get mangled.
                let base = &wires[(splitmix64(&mut rng) as usize) % wires.len()];
                let mut framed = (base.len() as u32).to_be_bytes().to_vec();
                framed.extend_from_slice(base);
                check_frame(&mutate(&framed, &mut rng))
            }
        };
        match outcome {
            Outcome::Accepted => report.accepted += 1,
            Outcome::Rejected => report.rejected += 1,
            Outcome::Panicked => report.panics += 1,
            Outcome::NotCanonical => report.canonical_violations += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_valid_before_mutation() {
        for map in snapshot_corpus() {
            let enc = snapshot::encode(&map).unwrap();
            assert!(snapshot::decode(&enc).is_ok());
            let v1 = snapshot::encode_v1(&map).unwrap();
            assert!(snapshot::decode(&v1).is_ok());
            let v3 = snapshot::encode_v3(&map).unwrap();
            assert!(snapshot::decode(&v3).is_ok());
        }
        for bytes in wire_corpus() {
            assert!(Request::decode(&bytes).is_ok() || Response::decode(&bytes).is_ok());
        }
    }

    #[test]
    fn short_run_is_clean_and_deterministic() {
        let a = run(7, 2000);
        let b = run(7, 2000);
        assert_eq!(a.panics, 0, "decode panicked: {a:?}");
        assert_eq!(a.canonical_violations, 0, "non-canonical accept: {a:?}");
        assert!(a.clean());
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.snapshot_cases, b.snapshot_cases);
        assert!(a.rejected > 0, "mutations should mostly be rejected");
        assert!(
            a.snapshot_cases > 0 && a.wire_cases > 0 && a.frame_cases > 0,
            "all targets exercised: {a:?}"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(1, 500);
        let b = run(2, 500);
        assert!(a.clean() && b.clean());
        // Identical splits would be suspicious; counts should differ
        // somewhere.
        assert!(
            a.snapshot_cases != b.snapshot_cases
                || a.accepted != b.accepted
                || a.rejected != b.rejected
        );
    }
}
