//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables or figures
//! (see DESIGN.md's experiment index) and prints the reproduced rows /
//! series once before timing the computation with Criterion.

pub mod fuzz;

use bdrmap_eval::Scenario;
use bdrmap_topo::TopoConfig;

/// Scenario scale used by benches: large enough for meaningful shape,
/// small enough to iterate. Pass `BDRMAP_BENCH_FULL=1` for paper scale.
pub fn bench_scale() -> f64 {
    if std::env::var("BDRMAP_BENCH_FULL").is_ok() {
        1.0
    } else {
        0.08
    }
}

/// The benches' standard large-access scenario.
pub fn access_scenario(seed: u64) -> Scenario {
    Scenario::build(
        "large access network",
        &TopoConfig::large_access_scaled(seed, bench_scale()),
    )
}
