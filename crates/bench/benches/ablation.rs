//! A1 + A2: limitation and design-choice ablations (§5.3, §5.5).
//!
//! Prints a table of accuracy / coverage / cost for: the full system,
//! alias resolution disabled (Figure 13 failure mode), one probed
//! address per block, stop sets disabled, and ground-truth
//! relationships.

use bdrmap_bench::bench_scale;
use bdrmap_eval::ablation::{run_ablations, stress_config};
use bdrmap_eval::report::TextTable;
use bdrmap_eval::Scenario;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let sc = Scenario::build("ablation", &stress_config(50, bench_scale()));
    let results = run_ablations(&sc, 0);
    let mut t = TextTable::new(&[
        "variant", "links", "accuracy", "coverage", "routers", "packets",
    ]);
    for r in &results {
        t.row(vec![
            r.name.clone(),
            r.validation.links_total.to_string(),
            format!("{:.1}%", r.validation.link_accuracy() * 100.0),
            format!("{:.1}%", r.validation.bgp_coverage() * 100.0),
            r.routers.to_string(),
            r.packets.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("suite", |b| b.iter(|| run_ablations(&sc, 0).len()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
