//! R2: resource-limited devices (§5.8).
//!
//! Paper: bdrmap needs ≈150 MB centrally while the device-side prober
//! uses 3.5 MB. The reproduced claim is the ratio: device-resident state
//! stays constant and small while central state grows with the measured
//! Internet.

use bdrmap_eval::resources::resources;
use bdrmap_eval::Scenario;
use bdrmap_topo::TopoConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let scenarios = vec![
        Scenario::build("tiny", &TopoConfig::tiny(41)),
        Scenario::build("R&E network", &TopoConfig::re_network(42)),
        Scenario::build(
            "Large access (scaled)",
            &TopoConfig::large_access_scaled(43, 0.05),
        ),
    ];
    for sc in &scenarios {
        let r = resources(sc, 0);
        println!(
            "{}: central {} B vs device {} B — ratio ×{:.0} over {} traces (paper: ≈43×)",
            r.scenario,
            r.central_bytes,
            r.device_bytes,
            r.ratio(),
            r.traces
        );
    }

    let mut group = c.benchmark_group("resources");
    group.sample_size(10);
    group.bench_function("offloaded-trace-phase/R&E", |b| {
        b.iter(|| resources(&scenarios[1], 0).device_bytes)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
