//! F14 + F15 + F16: the §6 interconnection-insight figures over a large
//! access network with 19 VPs.
//!
//! Prints the regenerated series once (per-prefix diversity shares,
//! marginal-utility curves, per-VP link longitudes), then times each
//! figure's analysis over pre-collected traces.

use bdrmap_bench::access_scenario;
use bdrmap_eval::insights::{collect_vp_traces, fig14, fig15, fig16};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let sc = access_scenario(20);
    let per_vp = collect_vp_traces(&sc, 3);

    // ------------------------------------------------- print the series
    let f14 = fig14(&sc, &per_vp);
    println!(
        "Figure 14 ({} far prefixes): 1 router {:.1}% (paper <2%), 5-15 routers {:.1}% (paper 73%), >15 {:.1}% (paper 13%), same next-hop {:.1}% (paper 67%)",
        f14.far.per_prefix.len(),
        f14.far.frac_routers(|r| r == 1) * 100.0,
        f14.far.frac_routers(|r| (5..=15).contains(&r)) * 100.0,
        f14.far.frac_routers(|r| r > 15) * 100.0,
        f14.far.frac_same_next_hop() * 100.0
    );
    let f15 = fig15(&sc, &per_vp);
    println!("Figure 15 (cumulative links by #VPs):");
    for curve in &f15 {
        println!(
            "  {:<24} truth={:<3} {:?}",
            curve.name, curve.true_links, curve.cumulative
        );
    }
    let f16 = fig16(&sc, &per_vp);
    println!("Figure 16 (per-VP observed link longitudes):");
    for row in f16.iter().take(4) {
        let summary: Vec<String> = row
            .links
            .iter()
            .map(|(n, l)| format!("{n}:{}", l.len()))
            .collect();
        println!(
            "  vp{} @ {:.1}: {}",
            row.vp,
            row.vp_longitude,
            summary.join(" ")
        );
    }

    // ------------------------------------------------------ time them
    let mut group = c.benchmark_group("insights");
    group.sample_size(10);
    group.bench_function("fig14", |b| b.iter(|| fig14(&sc, &per_vp)));
    group.bench_function("fig15", |b| b.iter(|| fig15(&sc, &per_vp)));
    group.bench_function("fig16", |b| b.iter(|| fig16(&sc, &per_vp)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
