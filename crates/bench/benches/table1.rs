//! T1 + V1: Table 1 (heuristic usage vs BGP coverage) and the §5.6
//! ground-truth validation, for the paper's three tabled networks.
//!
//! Prints the regenerated table rows once, then times the full bdrmap
//! pipeline (probing + alias resolution + inference) per scenario.

use bdrmap_bench::bench_scale;
use bdrmap_core::BdrmapConfig;
use bdrmap_eval::table1::{render, table1};
use bdrmap_eval::validate::validate;
use bdrmap_eval::Scenario;
use bdrmap_topo::TopoConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn scenarios() -> Vec<Scenario> {
    let s = bench_scale();
    vec![
        Scenario::build("R&E network", &TopoConfig::re_network(1)),
        Scenario::build(
            "Large access network",
            &TopoConfig::large_access_scaled(2, s),
        ),
        Scenario::build("Tier-1 network", &TopoConfig::tier1_scaled(3, s)),
    ]
}

fn bench(c: &mut Criterion) {
    let cfg = BdrmapConfig::default();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for sc in scenarios() {
        // Print the reproduced artefact once.
        let map = sc.run_vp(0, &cfg);
        println!("{}", render(&table1(&sc, &map)));
        let neighbors = sc.input.view.neighbors_of(sc.net().vp_as);
        let v = validate(sc.net(), &neighbors, &map);
        println!(
            "validation: {:.1}% links correct, {:.1}% BGP coverage (paper: 96.3-98.9%, 92.2-96.8%)\n",
            v.link_accuracy() * 100.0,
            v.bgp_coverage() * 100.0
        );
        group.bench_function(sc.name.clone(), |b| {
            b.iter(|| sc.run_vp(0, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
