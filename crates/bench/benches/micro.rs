//! Micro-benchmarks of the substrate hot paths: longest-prefix match,
//! valley-free propagation, data-plane forwarding, traceroute, and the
//! Ally alias test. These bound the cost model behind the experiment
//! harness and catch regressions in the inner loops.

use bdrmap_dataplane::{DataPlane, Probe, ProbeKind};
use bdrmap_probe::{EngineConfig, ProbeEngine, StopSet};
use bdrmap_topo::{generate, TopoConfig};
use bdrmap_types::{Asn, Prefix, PrefixTrie};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    // ------------------------------------------------------ trie lookup
    let mut trie: PrefixTrie<u32> = PrefixTrie::new();
    let net = generate(&TopoConfig::large_access_scaled(60, 0.08));
    for (i, o) in net.origins.iter().enumerate() {
        trie.insert(o.prefix, i as u32);
    }
    let addrs: Vec<bdrmap_types::Addr> = net
        .origins
        .iter()
        .map(|o| o.prefix.nth(o.prefix.size().min(300) - 1))
        .collect();
    c.bench_function("trie/longest-prefix-match", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            black_box(trie.lookup(addrs[i]))
        })
    });

    // ------------------------------------------------------ propagation
    let oracle = bdrmap_bgp::RoutingOracle::new(net.graph.clone(), net.origins.clone());
    let origs: Vec<_> = net.origins.iter().cloned().collect();
    c.bench_function("bgp/route-tree-cached", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % origs.len();
            black_box(oracle.route_tree(&origs[i]).reachable_count())
        })
    });

    // ------------------------------------------------------- forwarding
    let dp = Arc::new(DataPlane::new(net));
    let vp = dp.internet().vps[0].addr;
    let dsts: Vec<bdrmap_types::Addr> = dp
        .internet()
        .origins
        .iter()
        .map(|o| o.prefix.nth(1))
        .collect();
    c.bench_function("dataplane/probe-ttl8", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % dsts.len();
            black_box(dp.probe(&Probe {
                src: vp,
                dst: dsts[i],
                ttl: 8,
                flow: 7,
                kind: ProbeKind::IcmpEcho,
                time_ms: 0,
            }))
        })
    });

    // ---------------------------------------------- fault-path overhead
    // The inert-plan path must stay within noise (<5%) of the plain
    // probe above: an installed-but-zero fault plan short-circuits on an
    // atomic flag before any draw is made.
    dp.set_faults(bdrmap_dataplane::FaultPlan::with_loss(7, 0.0));
    c.bench_function("dataplane/probe-ttl8-faults-inert", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % dsts.len();
            black_box(dp.probe(&Probe {
                src: vp,
                dst: dsts[i],
                ttl: 8,
                flow: 7,
                kind: ProbeKind::IcmpEcho,
                time_ms: 0,
            }))
        })
    });
    // Active 5% loss for reference: this pays the per-link PRNG draws.
    dp.set_faults(bdrmap_dataplane::FaultPlan::with_loss(7, 0.05));
    c.bench_function("dataplane/probe-ttl8-faults-5pct", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % dsts.len();
            black_box(dp.probe(&Probe {
                src: vp,
                dst: dsts[i],
                ttl: 8,
                flow: 7,
                kind: ProbeKind::IcmpEcho,
                time_ms: 0,
            }))
        })
    });
    dp.clear_faults();

    // ------------------------------------------------------- traceroute
    let engine = ProbeEngine::new(Arc::clone(&dp), vp, EngineConfig::default());
    let stop = StopSet::new();
    c.bench_function("probe/full-traceroute", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % dsts.len();
            black_box(engine.trace(dsts[i], Asn(1), &stop).hops.len())
        })
    });

    // ------------------------------------------------------------- ally
    let netr = dp.internet();
    let pair = netr
        .routers
        .iter()
        .find_map(|r| {
            if !matches!(r.ipid, bdrmap_topo::IpidModel::SharedCounter { .. })
                || r.policy != bdrmap_topo::ResponsePolicy::Normal
                || netr.vp_siblings.contains(&r.owner)
                || r.ifaces.len() < 2
            {
                return None;
            }
            let a = netr.ifaces[r.ifaces[0].index()].addr;
            let b = netr.ifaces[r.ifaces[1].index()].addr;
            (netr.origins.lookup(a).is_some() && netr.origins.lookup(b).is_some()).then_some((a, b))
        })
        .expect("alias-testable router");
    c.bench_function("probe/ally-pair", |b| {
        b.iter(|| black_box(engine.ally(pair.0, pair.1)))
    });

    // ------------------------------------------------------- generation
    c.bench_function("topo/generate-tiny", |b| {
        b.iter(|| black_box(generate(&TopoConfig::tiny(99)).routers.len()))
    });

    let _ = Prefix::DEFAULT;
}

criterion_group!(benches, bench);
criterion_main!(benches);
