//! Serving-subsystem benchmarks: query-index build cost (the budget a
//! `reload` pays off the hot path) and the three read paths the daemon
//! serves, measured directly against the in-process index — the network
//! and framing cost on top of these is what `bdrmap loadgen` reports.

use bdrmap_core::{BdrmapConfig, QueryIndex};
use bdrmap_eval::Scenario;
use bdrmap_serve::{queries_for_map, Request};
use bdrmap_topo::TopoConfig;
use bdrmap_types::SwapCell;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let sc = Scenario::build("serve-bench", &TopoConfig::re_network(61));
    let map = sc.run_vp(0, &BdrmapConfig::default());
    let index = QueryIndex::build(&map);
    let queries = queries_for_map(&map);

    // ------------------------------------------------------ index build
    c.bench_function("serve/index-build", |b| {
        b.iter(|| black_box(QueryIndex::build(&map).num_routers()))
    });

    // -------------------------------------------------------- hot paths
    let owners: Vec<_> = queries
        .iter()
        .filter_map(|q| match q {
            Request::Owner(a) => Some(*a),
            _ => None,
        })
        .collect();
    c.bench_function("serve/owner-of-address", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % owners.len();
            black_box(index.owner_of(owners[i]))
        })
    });

    let borders: Vec<_> = queries
        .iter()
        .filter_map(|q| match q {
            Request::Border(a) => Some(*a),
            _ => None,
        })
        .collect();
    c.bench_function("serve/border-of-link", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % borders.len();
            black_box(index.border_of(borders[i]))
        })
    });

    let neighbors: Vec<_> = queries
        .iter()
        .filter_map(|q| match q {
            Request::Neighbor(asn) => Some(*asn),
            _ => None,
        })
        .collect();
    c.bench_function("serve/links-of-neighbor", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % neighbors.len();
            black_box(index.links_of_neighbor(neighbors[i]).len())
        })
    });

    // ---------------------------------------------- snapshot access path
    // What every query pays to pin the current snapshot, isolated from
    // the query itself.
    let cell = Arc::new(SwapCell::new(Arc::new(QueryIndex::build(&map))));
    let reader = SwapCell::reader(&cell);
    c.bench_function("serve/swapcell-load", |b| {
        b.iter(|| black_box(reader.load().num_routers()))
    });

    // ------------------------------------------------- wire round trip
    let req = Request::Owner(owners[0]);
    c.bench_function("serve/request-codec", |b| {
        b.iter(|| black_box(Request::decode(&req.encode()).unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
