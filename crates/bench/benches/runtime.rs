//! R1: probing run-time (§5.3) with and without doubletree stop sets.
//!
//! The paper quotes ≈12 h for an R&E network and ≈48 h for a large
//! access network at 100 pps. Probe counts here convert to simulated
//! hours identically (packets ÷ 100 ÷ 3600); what must reproduce is the
//! *ratio* between network sizes and the savings from stop sets.

use bdrmap_bench::bench_scale;
use bdrmap_eval::runtime::runtime;
use bdrmap_eval::Scenario;
use bdrmap_topo::TopoConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let s = bench_scale();
    let scenarios = vec![
        Scenario::build("R&E network", &TopoConfig::re_network(31)),
        Scenario::build(
            "Large access network",
            &TopoConfig::large_access_scaled(32, s),
        ),
    ];
    for sc in &scenarios {
        let r = runtime(sc, 0);
        println!(
            "{}: {} packets ({:.2} simulated h at 100 pps) with stop sets; {} packets ({:.2} h) without; savings ×{:.2}",
            r.scenario, r.packets_with, r.hours_with, r.packets_without, r.hours_without,
            r.savings_factor()
        );
    }
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    for sc in &scenarios {
        group.bench_function(format!("trace-phase/{}", sc.name), |b| {
            b.iter(|| runtime(sc, 0).packets_with)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
