//! Pipeline-stage benchmarks: the staged alias engine against the naive
//! one, parallel alias resolution against serial, and the heuristics
//! walk with and without the memoizing IP-to-AS cache. These are the
//! micro counterparts of `bdrmap bench-pipeline`.

use bdrmap_bgp::{CollectorView, InferredRelationships};
use bdrmap_core::{aliases, AliasConfig, Input, Ip2AsCache};
use bdrmap_dataplane::DataPlane;
use bdrmap_probe::{run_traces, EngineConfig, ProbeEngine, RunOptions};
use bdrmap_topo::{generate, AsKind, Internet, TopoConfig};
use bdrmap_types::Asn;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn build_input(net: &Internet, dp: &DataPlane) -> Input {
    let mut peers: Vec<Asn> = net
        .graph
        .ases()
        .filter(|&a| net.as_info(a).kind == AsKind::Tier1)
        .collect();
    peers.extend(
        net.graph
            .ases()
            .filter(|&a| net.as_info(a).kind == AsKind::Stub)
            .take(6),
    );
    let view = CollectorView::collect(dp.oracle(), &peers);
    let rels = InferredRelationships::infer(&view);
    Input {
        view,
        rels,
        ixp_prefixes: net.ixps.iter().map(|x| x.lan).collect(),
        rir: net.rir.clone(),
        vp_asns: net.vp_siblings.clone(),
    }
}

fn bench(c: &mut Criterion) {
    // A mid-size world: the R&E preset has enough path diversity to
    // give the alias stages real candidate sets.
    let net = generate(&TopoConfig::re_network(7));
    let dp = Arc::new(DataPlane::new(net));
    let input = build_input(dp.internet(), &dp);
    let vp = dp.internet().vps[0].addr;
    let engine = ProbeEngine::new(Arc::clone(&dp), vp, EngineConfig::default());
    let targets = bdrmap_probe::target_blocks(&input.view, &input.vp_asns);
    let probe_ip2as = input.ip2as_for_probing();
    let coll = run_traces(&engine, &targets, RunOptions::default(), |a| {
        probe_ip2as.is_external(a)
    });
    let ip2as = input.ip2as_with_estimation(&coll.traces);

    // ---------------------------------------------- alias: staged/naive
    c.bench_function("aliases/resolve-naive", |b| {
        b.iter(|| {
            black_box(aliases::resolve(
                &engine,
                &coll.traces,
                &ip2as,
                &AliasConfig {
                    staged: false,
                    ..AliasConfig::default()
                },
            ))
        })
    });
    c.bench_function("aliases/resolve-staged", |b| {
        b.iter(|| {
            black_box(aliases::resolve(
                &engine,
                &coll.traces,
                &ip2as,
                &AliasConfig::default(),
            ))
        })
    });
    c.bench_function("aliases/resolve-staged-par4", |b| {
        b.iter(|| {
            black_box(aliases::resolve(
                &engine,
                &coll.traces,
                &ip2as,
                &AliasConfig {
                    parallelism: 4,
                    ..AliasConfig::default()
                },
            ))
        })
    });

    // ------------------------------------------ infer: cached/uncached
    let alias_data = aliases::resolve(&engine, &coll.traces, &ip2as, &AliasConfig::default());
    let graph = bdrmap_core::graph::ObservedGraph::build(&coll.traces, &alias_data, &ip2as);
    c.bench_function("heuristics/infer-uncached", |b| {
        b.iter(|| {
            black_box(bdrmap_core::heuristics::infer(
                &graph,
                &input,
                &ip2as,
                coll.clone(),
            ))
        })
    });
    c.bench_function("heuristics/infer-cached", |b| {
        b.iter(|| {
            let cache = Ip2AsCache::new(&ip2as);
            black_box(bdrmap_core::heuristics::infer(
                &graph,
                &input,
                &cache,
                coll.clone(),
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
