//! AS-level BGP substrate for bdrmap.
//!
//! This crate models everything the paper takes from the interdomain
//! routing system:
//!
//! * [`graph::AsGraph`] — the AS-level topology annotated with
//!   customer-provider and peer-peer relationships (ground truth);
//! * [`origin::OriginTable`] — which AS originates which prefix, including
//!   multi-origin (MOAS) prefixes and selective advertisement scopes;
//! * [`propagate::RoutingOracle`] — Gao–Rexford valley-free route
//!   propagation producing, for every (AS, prefix) pair, the best
//!   next-hop AS, used by the data-plane simulator to forward packets;
//! * [`view::CollectorView`] — a Route Views / RIPE RIS style public view
//!   assembled from the best paths of a set of collector peers, with the
//!   realistic incompleteness bdrmap has to live with;
//! * [`relinfer`] — inference of c2p/p2p labels from the public view
//!   (a simplified form of Luckie et al., IMC 2013), which is the
//!   relationship input bdrmap actually consumes.

pub mod graph;
pub mod origin;
pub mod propagate;
pub mod relinfer;
pub mod view;

pub use graph::AsGraph;
pub use origin::{AdvertisementScope, OriginTable, Origination};
pub use propagate::{BestRoute, RouteClass, RoutingOracle};
pub use relinfer::InferredRelationships;
pub use view::CollectorView;
