//! The AS-level topology graph with business relationships.

use bdrmap_types::{Asn, OrgId, Relationship};
use serde::{Deserialize, Serialize};

/// The ground-truth AS-level topology.
///
/// ASNs are allocated densely from 1 to [`AsGraph::num_ases`]; `Asn(0)` is
/// reserved. Each undirected adjacency is stored on both endpoints with the
/// relationship as seen from that endpoint (so a link stored as `Customer`
/// on X appears as `Provider` on the neighbor).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsGraph {
    adj: Vec<Vec<(Asn, Relationship)>>,
    orgs: Vec<OrgId>,
    next_org: u32,
}

impl Default for AsGraph {
    fn default() -> Self {
        AsGraph::new()
    }
}

impl AsGraph {
    /// An empty graph.
    pub fn new() -> AsGraph {
        AsGraph {
            // Slot 0 is the reserved ASN.
            adj: vec![Vec::new()],
            orgs: vec![OrgId(u32::MAX)],
            next_org: 0,
        }
    }

    /// Number of ASes in the graph (ASNs run `1..=num_ases`).
    pub fn num_ases(&self) -> usize {
        self.adj.len() - 1
    }

    /// Iterate over all ASNs.
    pub fn ases(&self) -> impl Iterator<Item = Asn> {
        (1..self.adj.len() as u32).map(Asn)
    }

    /// Allocate a new AS in its own fresh organisation.
    pub fn add_as(&mut self) -> Asn {
        let org = OrgId(self.next_org);
        self.next_org += 1;
        self.add_as_in_org(org)
    }

    /// Allocate a new AS belonging to an existing organisation
    /// (a *sibling* of any other AS in that organisation).
    pub fn add_as_in_org(&mut self, org: OrgId) -> Asn {
        let asn = Asn(self.adj.len() as u32);
        self.adj.push(Vec::new());
        self.orgs.push(org);
        if org.0 >= self.next_org {
            self.next_org = org.0 + 1;
        }
        asn
    }

    /// The organisation an AS belongs to.
    pub fn org(&self, a: Asn) -> OrgId {
        self.orgs[a.0 as usize]
    }

    /// All ASes in the same organisation as `a`, including `a` itself.
    pub fn siblings(&self, a: Asn) -> Vec<Asn> {
        let org = self.org(a);
        self.ases().filter(|&b| self.org(b) == org).collect()
    }

    /// True if `a` and `b` are under common administrative control.
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        self.org(a) == self.org(b)
    }

    /// Add a relationship link: `rel` is the role of `b` as seen from `a`
    /// (e.g. `Relationship::Customer` means *b is a customer of a*).
    ///
    /// # Panics
    /// Panics if the link already exists or if `a == b`.
    pub fn add_link(&mut self, a: Asn, b: Asn, rel: Relationship) {
        assert_ne!(a, b, "self-link");
        assert!(
            self.relationship(a, b).is_none(),
            "duplicate AS link {a}-{b}"
        );
        self.adj[a.0 as usize].push((b, rel));
        self.adj[b.0 as usize].push((a, rel.flip()));
    }

    /// The role of `b` as seen from `a`, if the two ASes are adjacent.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        self.adj[a.0 as usize]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, r)| *r)
    }

    /// All neighbors of `a` with their role as seen from `a`.
    pub fn neighbors(&self, a: Asn) -> &[(Asn, Relationship)] {
        &self.adj[a.0 as usize]
    }

    /// Neighbors of `a` in a given role.
    pub fn neighbors_with(&self, a: Asn, rel: Relationship) -> impl Iterator<Item = Asn> + '_ {
        self.adj[a.0 as usize]
            .iter()
            .filter(move |(_, r)| *r == rel)
            .map(|(n, _)| *n)
    }

    /// Customers of `a`.
    pub fn customers(&self, a: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors_with(a, Relationship::Customer)
    }

    /// Peers of `a`.
    pub fn peers(&self, a: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors_with(a, Relationship::Peer)
    }

    /// Providers of `a`.
    pub fn providers(&self, a: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors_with(a, Relationship::Provider)
    }

    /// Degree of `a` (number of AS-level neighbors).
    pub fn degree(&self, a: Asn) -> usize {
        self.adj[a.0 as usize].len()
    }

    /// The *customer cone* of `a`: the set of ASes reachable from `a`
    /// walking only provider→customer edges, including `a`. Used by the
    /// relationship-inference pass and by evaluation.
    pub fn customer_cone(&self, a: Asn) -> Vec<Asn> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![a];
        let mut out = Vec::new();
        seen[a.0 as usize] = true;
        while let Some(u) = stack.pop() {
            out.push(u);
            for c in self.customers(u) {
                if !seen[c.0 as usize] {
                    seen[c.0 as usize] = true;
                    stack.push(c);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// True if the provider→customer subgraph is acyclic, which the
    /// generator must guarantee for valley-free propagation to terminate
    /// with a well-defined result.
    pub fn provider_customer_acyclic(&self) -> bool {
        // Kahn's algorithm over provider→customer edges.
        let n = self.adj.len();
        let mut indeg = vec![0usize; n];
        for a in self.ases() {
            for c in self.customers(a) {
                indeg[c.0 as usize] += 1;
            }
        }
        let mut queue: Vec<Asn> = self.ases().filter(|a| indeg[a.0 as usize] == 0).collect();
        let mut visited = 0usize;
        while let Some(u) = queue.pop() {
            visited += 1;
            for c in self.customers(u) {
                indeg[c.0 as usize] -= 1;
                if indeg[c.0 as usize] == 0 {
                    queue.push(c);
                }
            }
        }
        visited == self.num_ases()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small fixture: 1 is provider of 2 and 3; 2 and 3 peer; 3 is
    /// provider of 4.
    fn fixture() -> AsGraph {
        let mut g = AsGraph::new();
        let a1 = g.add_as();
        let a2 = g.add_as();
        let a3 = g.add_as();
        let a4 = g.add_as();
        g.add_link(a1, a2, Relationship::Customer);
        g.add_link(a1, a3, Relationship::Customer);
        g.add_link(a2, a3, Relationship::Peer);
        g.add_link(a3, a4, Relationship::Customer);
        g
    }

    #[test]
    fn relationships_are_symmetric() {
        let g = fixture();
        assert_eq!(g.relationship(Asn(1), Asn(2)), Some(Relationship::Customer));
        assert_eq!(g.relationship(Asn(2), Asn(1)), Some(Relationship::Provider));
        assert_eq!(g.relationship(Asn(2), Asn(3)), Some(Relationship::Peer));
        assert_eq!(g.relationship(Asn(3), Asn(2)), Some(Relationship::Peer));
        assert_eq!(g.relationship(Asn(1), Asn(4)), None);
    }

    #[test]
    fn neighbor_queries() {
        let g = fixture();
        let custs: Vec<Asn> = g.customers(Asn(1)).collect();
        assert_eq!(custs, vec![Asn(2), Asn(3)]);
        let provs: Vec<Asn> = g.providers(Asn(4)).collect();
        assert_eq!(provs, vec![Asn(3)]);
        let peers: Vec<Asn> = g.peers(Asn(2)).collect();
        assert_eq!(peers, vec![Asn(3)]);
        assert_eq!(g.degree(Asn(3)), 3);
    }

    #[test]
    fn customer_cone() {
        let g = fixture();
        assert_eq!(
            g.customer_cone(Asn(1)),
            vec![Asn(1), Asn(2), Asn(3), Asn(4)]
        );
        assert_eq!(g.customer_cone(Asn(3)), vec![Asn(3), Asn(4)]);
        assert_eq!(g.customer_cone(Asn(4)), vec![Asn(4)]);
    }

    #[test]
    fn acyclicity_check() {
        let g = fixture();
        assert!(g.provider_customer_acyclic());
        let mut bad = AsGraph::new();
        let a = bad.add_as();
        let b = bad.add_as();
        let c = bad.add_as();
        bad.add_link(a, b, Relationship::Customer);
        bad.add_link(b, c, Relationship::Customer);
        bad.add_link(c, a, Relationship::Customer);
        assert!(!bad.provider_customer_acyclic());
    }

    #[test]
    fn siblings_share_org() {
        let mut g = AsGraph::new();
        let a = g.add_as();
        let org = g.org(a);
        let b = g.add_as_in_org(org);
        let c = g.add_as();
        assert!(g.same_org(a, b));
        assert!(!g.same_org(a, c));
        assert_eq!(g.siblings(a), vec![a, b]);
    }

    #[test]
    #[should_panic]
    fn duplicate_link_panics() {
        let mut g = AsGraph::new();
        let a = g.add_as();
        let b = g.add_as();
        g.add_link(a, b, Relationship::Peer);
        g.add_link(b, a, Relationship::Peer);
    }
}
