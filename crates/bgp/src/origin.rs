//! Prefix origination: who announces what, and where.

use bdrmap_types::{Asn, Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};

/// Where an origin AS announces a prefix.
///
/// Most networks announce every prefix to every BGP neighbor, and rely on
/// hot-potato routing inside their peers. Some CDNs (the paper's
/// Akamai-like case, §6) instead announce certain prefixes only over
/// specific interconnections, anchoring inbound traffic.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdvertisementScope {
    /// Announce to every neighbor, over every session.
    All,
    /// Announce only to the listed neighbor ASes (over all sessions with
    /// them).
    Neighbors(Vec<Asn>),
    /// Announce only over specific interdomain links, identified by the
    /// generator's link index. AS-level propagation treats this like
    /// `Neighbors` of the link far-ends; the data plane additionally
    /// restricts which border routers carry the prefix.
    Links(Vec<ScopedLink>),
}

/// One (neighbor AS, link ordinal) pair for link-scoped advertisement.
/// The ordinal indexes the interdomain links between origin and neighbor
/// in generator order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScopedLink {
    /// The neighbor AS the session is with.
    pub neighbor: Asn,
    /// Which of the (possibly many) interconnections with that neighbor.
    pub link_ordinal: u32,
}

impl AdvertisementScope {
    /// The neighbor ASes the origin announces to, or `None` for all.
    pub fn neighbor_filter(&self) -> Option<Vec<Asn>> {
        match self {
            AdvertisementScope::All => None,
            AdvertisementScope::Neighbors(v) => Some(v.clone()),
            AdvertisementScope::Links(v) => {
                let mut out: Vec<Asn> = v.iter().map(|l| l.neighbor).collect();
                out.sort_unstable();
                out.dedup();
                Some(out)
            }
        }
    }
}

/// One originated prefix.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Origination {
    /// The announced prefix.
    pub prefix: Prefix,
    /// Origin AS(es). More than one means a MOAS prefix (§4 challenge 7).
    pub origins: Vec<Asn>,
    /// Where the origin(s) announce it.
    pub scope: AdvertisementScope,
}

/// The global table of originations, with longest-prefix-match lookup.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OriginTable {
    trie: PrefixTrie<Origination>,
}

impl OriginTable {
    /// An empty table.
    pub fn new() -> OriginTable {
        OriginTable {
            trie: PrefixTrie::new(),
        }
    }

    /// Announce `prefix` from a single origin to everyone.
    pub fn announce(&mut self, prefix: Prefix, origin: Asn) {
        self.announce_scoped(prefix, vec![origin], AdvertisementScope::All);
    }

    /// Announce `prefix` with explicit origins and scope. Replaces any
    /// existing origination of exactly this prefix.
    pub fn announce_scoped(
        &mut self,
        prefix: Prefix,
        origins: Vec<Asn>,
        scope: AdvertisementScope,
    ) {
        assert!(!origins.is_empty(), "origination needs at least one origin");
        self.trie.insert(
            prefix,
            Origination {
                prefix,
                origins,
                scope,
            },
        );
    }

    /// Longest-match origination for an address: the BGP prefix that
    /// covers it, and who originates that prefix.
    pub fn lookup(&self, a: bdrmap_types::Addr) -> Option<&Origination> {
        self.trie.lookup(a).map(|(_, o)| o)
    }

    /// Exact-match origination.
    pub fn get(&self, p: Prefix) -> Option<&Origination> {
        self.trie.get(p)
    }

    /// Iterate over all originations.
    pub fn iter(&self) -> impl Iterator<Item = &Origination> {
        self.trie.iter().map(|(_, o)| o)
    }

    /// Number of originated prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// True if no prefixes are originated.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// All prefixes originated (primary origin) by `a`.
    pub fn prefixes_of(&self, a: Asn) -> Vec<Prefix> {
        self.iter()
            .filter(|o| o.origins.contains(&a))
            .map(|o| o.prefix)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_origin() {
        let mut t = OriginTable::new();
        t.announce(p("128.66.0.0/16"), Asn(10));
        t.announce(p("128.66.2.0/24"), Asn(20));
        let o = t.lookup("128.66.2.1".parse().unwrap()).unwrap();
        assert_eq!(o.origins, vec![Asn(20)]);
        let o = t.lookup("128.66.1.1".parse().unwrap()).unwrap();
        assert_eq!(o.origins, vec![Asn(10)]);
        assert!(t.lookup("10.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn moas_prefix() {
        let mut t = OriginTable::new();
        t.announce_scoped(
            p("192.0.2.0/24"),
            vec![Asn(1), Asn(2)],
            AdvertisementScope::All,
        );
        let o = t.get(p("192.0.2.0/24")).unwrap();
        assert_eq!(o.origins.len(), 2);
    }

    #[test]
    fn scoped_neighbor_filter() {
        assert_eq!(AdvertisementScope::All.neighbor_filter(), None);
        let s = AdvertisementScope::Links(vec![
            ScopedLink {
                neighbor: Asn(5),
                link_ordinal: 0,
            },
            ScopedLink {
                neighbor: Asn(5),
                link_ordinal: 2,
            },
            ScopedLink {
                neighbor: Asn(3),
                link_ordinal: 1,
            },
        ]);
        assert_eq!(s.neighbor_filter(), Some(vec![Asn(3), Asn(5)]));
    }

    #[test]
    fn prefixes_of_origin() {
        let mut t = OriginTable::new();
        t.announce(p("10.0.0.0/8"), Asn(1));
        t.announce(p("192.0.2.0/24"), Asn(2));
        t.announce(p("198.51.100.0/24"), Asn(1));
        assert_eq!(
            t.prefixes_of(Asn(1)),
            vec![p("10.0.0.0/8"), p("198.51.100.0/24")]
        );
        assert_eq!(t.len(), 3);
    }
}
