//! AS relationship inference from public BGP paths.
//!
//! bdrmap does not get to use the simulator's ground-truth relationships:
//! like the real system, it consumes relationships *inferred* from the
//! public view, following the approach of Luckie et al. (IMC 2013) in
//! simplified form:
//!
//! 1. compute each AS's *transit degree* — the number of distinct
//!    neighbors it appears between in paths;
//! 2. infer the Tier-1 clique by growing a pairwise-adjacent set from
//!    the highest-transit-degree collector peers (Route Views collectors
//!    peer predominantly with settlement-free core networks);
//! 3. walk every path and cast **strong** votes justified by the
//!    valley-free export rule:
//!    * a downhill link whose *preceding* link was also downhill (or a
//!      clique peering) proves a customer — the upstream AS accepted the
//!      route from a peer or provider, which only happens for customer
//!      routes;
//!    * an uphill link whose *following* link is also uphill proves a
//!      provider — the AS exported a provider-learned route, which only
//!      goes to customers;
//! 4. links between clique members are peer-peer; links with strong
//!    customer evidence in one direction are customer-provider; strong
//!    evidence both ways, or no strong evidence at all, yields
//!    peer-peer (the conservative default).
//!
//! The result is imperfect in exactly the way the paper's inputs are
//! imperfect, which matters: several bdrmap heuristics (§5.4.3, §5.4.5)
//! key off these inferred labels.

use crate::view::CollectorView;
use bdrmap_types::{Asn, Relationship};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Inferred relationship labels for publicly visible AS links.
#[derive(Clone, Debug, Default)]
pub struct InferredRelationships {
    /// Map keyed by (lower ASN, higher ASN); the label is the role of the
    /// *second* (higher) ASN as seen from the first.
    rels: BTreeMap<(Asn, Asn), Relationship>,
    /// The inferred Tier-1 clique.
    clique: BTreeSet<Asn>,
}

impl InferredRelationships {
    /// Run inference over a collector view.
    pub fn infer(view: &CollectorView) -> InferredRelationships {
        let paths = view.paths();

        // 1. Transit degree and observed adjacency.
        let mut transit_neighbors: HashMap<Asn, HashSet<Asn>> = HashMap::new();
        let mut adjacency: HashMap<Asn, HashSet<Asn>> = HashMap::new();
        for path in paths {
            for w in path.windows(2) {
                adjacency.entry(w[0]).or_default().insert(w[1]);
                adjacency.entry(w[1]).or_default().insert(w[0]);
            }
            for w in path.windows(3) {
                let e = transit_neighbors.entry(w[1]).or_default();
                e.insert(w[0]);
                e.insert(w[2]);
            }
        }
        let tdeg = |a: Asn| transit_neighbors.get(&a).map_or(0, |s| s.len());

        // 2. Clique: grow a pairwise-adjacent set from the
        // highest-transit-degree collector peers. A candidate observed
        // immediately after two consecutive clique members is *below*
        // the clique — a clique-peer export followed by a descent proves
        // a customer under valley-free routing (a genuine clique member
        // can never sit there: it would be a peer-peer-peer valley).
        let mut triples_by_third: HashMap<Asn, Vec<(Asn, Asn)>> = HashMap::new();
        for path in paths {
            for w in path.windows(3) {
                triples_by_third.entry(w[2]).or_default().push((w[0], w[1]));
            }
        }
        let mut cand: Vec<Asn> = view.collector_peers().to_vec();
        cand.sort_by_key(|&a| (std::cmp::Reverse(tdeg(a)), a));
        cand.dedup();
        let mut clique: BTreeSet<Asn> = BTreeSet::new();
        for &c in &cand {
            // A minimal transit degree keeps stub collector peers out;
            // the pairwise-adjacency requirement does the real work (a
            // clique member must interconnect with every other member,
            // and those peerings are visible from the members' own
            // collector feeds).
            if tdeg(c) < 2 || clique.len() >= 20 {
                break;
            }
            let below_clique = triples_by_third.get(&c).is_some_and(|pairs| {
                pairs
                    .iter()
                    .any(|(m1, m2)| clique.contains(m1) && clique.contains(m2))
            });
            if below_clique {
                continue;
            }
            let adj = adjacency.get(&c);
            if clique.iter().all(|m| adj.is_some_and(|s| s.contains(m))) {
                clique.insert(c);
            }
        }
        // Retroactive pruning: a member observed after a pair of final
        // members is below the clique (evidence that only became
        // available once the later members joined).
        loop {
            let doomed: Vec<Asn> = clique
                .iter()
                .copied()
                .filter(|c| {
                    triples_by_third.get(c).is_some_and(|pairs| {
                        pairs.iter().any(|(m1, m2)| {
                            m1 != c && m2 != c && clique.contains(m1) && clique.contains(m2)
                        })
                    })
                })
                .collect();
            if doomed.is_empty() {
                break;
            }
            for d in doomed {
                clique.remove(&d);
            }
        }

        // 3. Strong votes from the valley-free export lemma.
        #[derive(Default, Clone, Copy)]
        struct Votes {
            /// Strong votes that high is low's customer.
            high_customer: u32,
            /// Strong votes that high is low's provider.
            high_provider: u32,
            /// Seen at all (for the peer default).
            seen: u32,
        }
        let mut votes: HashMap<(Asn, Asn), Votes> = HashMap::new();
        let mut vote = |a: Asn, b: Asn, role_of_b: Option<Relationship>| {
            let (k, role) = if a < b {
                ((a, b), role_of_b)
            } else {
                ((b, a), role_of_b.map(Relationship::flip))
            };
            let v = votes.entry(k).or_default();
            v.seen += 1;
            match role {
                Some(Relationship::Customer) => v.high_customer += 1,
                Some(Relationship::Provider) => v.high_provider += 1,
                _ => {}
            }
        };

        for path in paths {
            if path.len() < 2 {
                continue;
            }
            // Top of the path: prefer clique members, then transit
            // degree.
            let t = (0..path.len())
                .max_by_key(|&i| (clique.contains(&path[i]), tdeg(path[i])))
                .unwrap();
            // Edge j joins path[j] and path[j+1]; it is "up" when it
            // moves toward the top.
            let is_down = |j: usize| j + 1 > t;
            let is_clique_pair =
                |j: usize| clique.contains(&path[j]) && clique.contains(&path[j + 1]);
            for j in 0..path.len() - 1 {
                let (a, b) = (path[j], path[j + 1]);
                if is_clique_pair(j) {
                    vote(a, b, None); // label fixed to peer below
                } else if is_down(j) {
                    // a exported b's route to path[j-1]. Strong only if
                    // path[j-1] sits above a (previous edge down or a
                    // clique peering): then the route must be a customer
                    // route, so b is a's customer.
                    let strong = j > 0 && (is_down(j - 1) || is_clique_pair(j - 1));
                    vote(a, b, strong.then_some(Relationship::Customer));
                } else {
                    // Uphill: b exported the route to a. Strong only if
                    // the next edge is also uphill: b passed on a
                    // provider-learned route, which only goes to
                    // customers, so b is a's provider.
                    let strong = j + 1 < path.len() - 1 && j + 2 <= t;
                    vote(a, b, strong.then_some(Relationship::Provider));
                }
            }
        }

        // 4. Assemble labels.
        let mut rels: BTreeMap<(Asn, Asn), Relationship> = BTreeMap::new();
        for (k, v) in votes {
            let label = if clique.contains(&k.0) && clique.contains(&k.1) {
                Relationship::Peer
            } else if v.high_customer > 0 && v.high_provider == 0 {
                Relationship::Customer
            } else if v.high_provider > 0 && v.high_customer == 0 {
                Relationship::Provider
            } else if v.high_customer >= 3 * v.high_provider.max(1) {
                Relationship::Customer
            } else if v.high_provider >= 3 * v.high_customer.max(1) {
                Relationship::Provider
            } else {
                Relationship::Peer
            };
            rels.insert(k, label);
        }
        // Links visible in the view but never voted default to peer.
        for (a, b) in view.links() {
            rels.entry((a, b)).or_insert(Relationship::Peer);
        }

        InferredRelationships { rels, clique }
    }

    /// Build directly from known labels (for tests and for "perfect
    /// relationship oracle" ablations). `role_of_b` is b's role from a's
    /// perspective.
    pub fn from_labels(labels: impl IntoIterator<Item = (Asn, Asn, Relationship)>) -> Self {
        let mut rels = BTreeMap::new();
        for (a, b, role_of_b) in labels {
            let (k, role) = if a < b {
                ((a, b), role_of_b)
            } else {
                ((b, a), role_of_b.flip())
            };
            rels.insert(k, role);
        }
        InferredRelationships {
            rels,
            clique: BTreeSet::new(),
        }
    }

    /// The role of `b` as seen from `a`, if the link was inferred.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        if a < b {
            self.rels.get(&(a, b)).copied()
        } else {
            self.rels.get(&(b, a)).copied().map(Relationship::flip)
        }
    }

    /// True if `p` is an inferred provider of `c`.
    pub fn is_provider_of(&self, p: Asn, c: Asn) -> bool {
        self.relationship(c, p) == Some(Relationship::Provider)
    }

    /// All inferred providers of `a`.
    pub fn providers_of(&self, a: Asn) -> Vec<Asn> {
        self.neighbors_with(a, Relationship::Provider)
    }

    /// All inferred customers of `a`.
    pub fn customers_of(&self, a: Asn) -> Vec<Asn> {
        self.neighbors_with(a, Relationship::Customer)
    }

    /// All inferred peers of `a`.
    pub fn peers_of(&self, a: Asn) -> Vec<Asn> {
        self.neighbors_with(a, Relationship::Peer)
    }

    fn neighbors_with(&self, a: Asn, role: Relationship) -> Vec<Asn> {
        self.rels
            .iter()
            .filter_map(|(&(x, y), &r)| {
                if x == a && r == role {
                    Some(y)
                } else if y == a && r.flip() == role {
                    Some(x)
                } else {
                    None
                }
            })
            .collect()
    }

    /// The inferred Tier-1 clique.
    pub fn clique(&self) -> impl Iterator<Item = Asn> + '_ {
        self.clique.iter().copied()
    }

    /// Number of labeled links.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// True if no links are labeled.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterate over all labeled links as (low, high, role-of-high).
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Asn, Relationship)> + '_ {
        self.rels.iter().map(|(&(a, b), &r)| (a, b, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AsGraph;
    use crate::origin::OriginTable;
    use crate::propagate::RoutingOracle;
    use bdrmap_types::Prefix;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Two tier-1s peering at the top (each with several direct stub
    /// customers, so their transit degree dominates as in the real
    /// Internet), two mid-tier transits that peer with each other, and
    /// stubs below the transits.
    ///
    /// ASNs: 1,2 = tier-1; 3 = transit under 1; 4 = transit under 2;
    /// 5,6 = stubs of 3; 7,8 = stubs of 4; 9–11 = stubs of 1;
    /// 12–14 = stubs of 2.
    fn fixture() -> (RoutingOracle, Vec<Asn>) {
        let mut g = AsGraph::new();
        let ases: Vec<Asn> = (0..14).map(|_| g.add_as()).collect();
        let (t1a, t1b, tra, trb) = (ases[0], ases[1], ases[2], ases[3]);
        g.add_link(t1a, t1b, bdrmap_types::Relationship::Peer);
        g.add_link(t1a, tra, bdrmap_types::Relationship::Customer);
        g.add_link(t1b, trb, bdrmap_types::Relationship::Customer);
        g.add_link(tra, trb, bdrmap_types::Relationship::Peer);
        g.add_link(tra, ases[4], bdrmap_types::Relationship::Customer);
        g.add_link(tra, ases[5], bdrmap_types::Relationship::Customer);
        g.add_link(trb, ases[6], bdrmap_types::Relationship::Customer);
        g.add_link(trb, ases[7], bdrmap_types::Relationship::Customer);
        for &s in &ases[8..11] {
            g.add_link(t1a, s, bdrmap_types::Relationship::Customer);
        }
        for &s in &ases[11..14] {
            g.add_link(t1b, s, bdrmap_types::Relationship::Customer);
        }
        let mut t = OriginTable::new();
        for (i, a) in ases.iter().enumerate() {
            t.announce(p(&format!("10.{}.0.0/16", i + 1)), *a);
        }
        let oracle = RoutingOracle::new(g, t);
        // Collector peers: both tier-1s plus two stubs (stub collectors
        // give peer-link visibility from below, like real Route Views).
        (oracle, vec![Asn(1), Asn(2), Asn(5), Asn(7)])
    }

    #[test]
    fn infers_c2p_chain_correctly() {
        let (oracle, peers) = fixture();
        let view = CollectorView::collect(&oracle, &peers);
        let inf = InferredRelationships::infer(&view);
        assert_eq!(
            inf.relationship(Asn(5), Asn(3)),
            Some(Relationship::Provider)
        );
        assert_eq!(
            inf.relationship(Asn(3), Asn(1)),
            Some(Relationship::Provider)
        );
        assert_eq!(
            inf.relationship(Asn(1), Asn(3)),
            Some(Relationship::Customer)
        );
    }

    #[test]
    fn infers_tier1_peering_and_clique() {
        let (oracle, peers) = fixture();
        let view = CollectorView::collect(&oracle, &peers);
        let inf = InferredRelationships::infer(&view);
        assert_eq!(inf.relationship(Asn(1), Asn(2)), Some(Relationship::Peer));
        let clique: Vec<Asn> = inf.clique().collect();
        assert!(
            clique.contains(&Asn(1)) && clique.contains(&Asn(2)),
            "{clique:?}"
        );
        assert!(
            !clique.contains(&Asn(5)),
            "stub collector must not join the clique"
        );
    }

    #[test]
    fn provider_queries() {
        let (oracle, peers) = fixture();
        let view = CollectorView::collect(&oracle, &peers);
        let inf = InferredRelationships::infer(&view);
        assert!(inf.is_provider_of(Asn(3), Asn(5)));
        assert!(!inf.is_provider_of(Asn(5), Asn(3)));
        assert_eq!(inf.providers_of(Asn(5)), vec![Asn(3)]);
        assert!(inf.customers_of(Asn(1)).contains(&Asn(3)));
    }

    #[test]
    fn from_labels_round_trip() {
        let inf = InferredRelationships::from_labels([
            (Asn(9), Asn(4), Relationship::Customer),
            (Asn(4), Asn(7), Relationship::Peer),
        ]);
        assert_eq!(
            inf.relationship(Asn(9), Asn(4)),
            Some(Relationship::Customer)
        );
        assert_eq!(
            inf.relationship(Asn(4), Asn(9)),
            Some(Relationship::Provider)
        );
        assert_eq!(inf.relationship(Asn(7), Asn(4)), Some(Relationship::Peer));
        assert_eq!(inf.relationship(Asn(7), Asn(9)), None);
        assert_eq!(inf.len(), 2);
    }

    #[test]
    fn mid_tier_peer_link_labeled_peer_when_visible_from_below() {
        let (oracle, peers) = fixture();
        let view = CollectorView::collect(&oracle, &peers);
        assert!(view.has_link(Asn(3), Asn(4)), "precondition: link visible");
        let inf = InferredRelationships::infer(&view);
        // The 3-4 peer link only ever appears after an uphill step from
        // a stub collector, so no strong customer evidence exists in
        // either direction.
        assert_eq!(inf.relationship(Asn(3), Asn(4)), Some(Relationship::Peer));
    }

    #[test]
    fn peer_link_from_cone_not_mislabeled_customer() {
        // The failure mode this module exists to avoid: a high-degree
        // access network's settlement-free peers must not be inferred as
        // its customers just because the only paths crossing the peering
        // come from inside the access network's customer cone.
        let mut g = AsGraph::new();
        let ases: Vec<Asn> = (0..12).map(|_| g.add_as()).collect();
        let (t1a, t1b, access, peer) = (ases[0], ases[1], ases[2], ases[3]);
        g.add_link(t1a, t1b, bdrmap_types::Relationship::Peer);
        g.add_link(t1a, access, bdrmap_types::Relationship::Customer);
        g.add_link(t1b, peer, bdrmap_types::Relationship::Customer);
        g.add_link(access, peer, bdrmap_types::Relationship::Peer);
        // Access has many customers (high transit degree).
        for &s in &ases[4..10] {
            g.add_link(access, s, bdrmap_types::Relationship::Customer);
        }
        // The peer has its own customers.
        for &s in &ases[10..12] {
            g.add_link(peer, s, bdrmap_types::Relationship::Customer);
        }
        let mut t = OriginTable::new();
        for (i, a) in ases.iter().enumerate() {
            t.announce(p(&format!("10.{}.0.0/16", i + 1)), *a);
        }
        let oracle = RoutingOracle::new(g, t);
        // Collectors: the tier-1s plus a stub deep in the access cone.
        let view = CollectorView::collect(&oracle, &[t1a, t1b, ases[4]]);
        let inf = InferredRelationships::infer(&view);
        assert_eq!(
            inf.relationship(access, peer),
            Some(Relationship::Peer),
            "cone-only visibility must not produce a customer label"
        );
        // While real customers of the access network are still labeled.
        assert_eq!(
            inf.relationship(access, ases[5]),
            Some(Relationship::Customer)
        );
        // And the access network's provider is labeled as such.
        assert_eq!(inf.relationship(access, t1a), Some(Relationship::Provider));
    }
}
