//! Valley-free route propagation.
//!
//! Given the AS graph and an origination, compute for every AS its best
//! route under the standard Gao–Rexford policy model:
//!
//! 1. prefer routes learned from customers over peers over providers;
//! 2. among equals, prefer the shortest AS path;
//! 3. break remaining ties on the lowest next-hop ASN (deterministic).
//!
//! Export follows valley-free rules: an AS exports its best route to its
//! customers always, but exports to peers and providers only routes it
//! originated or learned from a customer.
//!
//! Results are cached per *origination key* — (origin set, neighbor
//! filter) — because every prefix announced the same way by the same
//! origin propagates identically. This keeps the memory cost proportional
//! to the number of ASes rather than (ASes × prefixes).

use crate::graph::AsGraph;
use crate::origin::{OriginTable, Origination};
use bdrmap_types::{Asn, Prefix, Relationship};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, RwLock};

/// How an AS's best route for a prefix was learned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// This AS originates the prefix.
    Origin,
    /// Learned from a customer.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

impl RouteClass {
    fn rank(self) -> u8 {
        match self {
            RouteClass::Origin => 0,
            RouteClass::Customer => 1,
            RouteClass::Peer => 2,
            RouteClass::Provider => 3,
        }
    }

    /// May a route of this class be exported to a neighbor in role `to`?
    fn exportable_to(self, to: Relationship) -> bool {
        match self {
            RouteClass::Origin | RouteClass::Customer => true,
            RouteClass::Peer | RouteClass::Provider => to == Relationship::Customer,
        }
    }
}

/// An AS's best route toward an origination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BestRoute {
    /// The neighbor AS the route was learned from (`None` at the origin).
    pub next_hop: Option<Asn>,
    /// How the route was learned.
    pub class: RouteClass,
    /// AS-path length (origin = 0).
    pub path_len: u8,
    /// The origin the path leads to (relevant for MOAS prefixes).
    pub origin: Asn,
}

/// Per-origination propagation result: best route for every AS, indexed
/// by ASN.
#[derive(Clone, Debug)]
pub struct RouteTree {
    routes: Vec<Option<BestRoute>>,
}

impl RouteTree {
    /// Best route of `a`, if it has one.
    pub fn route(&self, a: Asn) -> Option<BestRoute> {
        self.routes.get(a.0 as usize).copied().flatten()
    }

    /// Reconstruct the AS path from `a` to the origin (inclusive on both
    /// ends, `a` first). `None` if `a` has no route.
    pub fn as_path(&self, a: Asn) -> Option<Vec<Asn>> {
        let mut path = vec![a];
        let mut cur = self.route(a)?;
        while let Some(nh) = cur.next_hop {
            path.push(nh);
            cur = self.route(nh).expect("next hop must have a route");
            // Defensive bound: AS paths can't exceed the AS count.
            if path.len() > self.routes.len() {
                panic!("next-hop cycle in route tree");
            }
        }
        Some(path)
    }

    /// Number of ASes that have a route.
    pub fn reachable_count(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }
}

/// Key identifying a propagation result that prefixes can share.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct OriginationKey {
    origins: Vec<Asn>,
    filter: Option<Vec<Asn>>,
}

fn key_of(o: &Origination) -> OriginationKey {
    let mut origins = o.origins.clone();
    origins.sort_unstable();
    OriginationKey {
        origins,
        filter: o.scope.neighbor_filter(),
    }
}

/// The routing oracle: answers "what is AS X's best route toward address
/// d?" for the data plane, and exposes route trees for collector views.
///
/// # Examples
///
/// ```
/// use bdrmap_bgp::{AsGraph, OriginTable, RouteClass, RoutingOracle};
/// use bdrmap_types::Relationship;
///
/// // provider ← customer chain: 1 is 2's provider; 2 originates a /16.
/// let mut g = AsGraph::new();
/// let provider = g.add_as();
/// let customer = g.add_as();
/// g.add_link(provider, customer, Relationship::Customer);
/// let mut origins = OriginTable::new();
/// origins.announce("10.2.0.0/16".parse().unwrap(), customer);
///
/// let oracle = RoutingOracle::new(g, origins);
/// let (prefix, route) = oracle
///     .best_route(provider, "10.2.3.4".parse().unwrap())
///     .unwrap();
/// assert_eq!(prefix.to_string(), "10.2.0.0/16");
/// assert_eq!(route.class, RouteClass::Customer);
/// assert_eq!(route.next_hop, Some(customer));
/// ```
pub struct RoutingOracle {
    graph: AsGraph,
    origins: OriginTable,
    cache: RwLock<HashMap<OriginationKey, Arc<RouteTree>>>,
}

impl RoutingOracle {
    /// Build an oracle over a graph and origination table.
    ///
    /// # Panics
    /// Panics if the provider→customer relation contains a cycle, because
    /// propagation would then be ill-defined.
    pub fn new(graph: AsGraph, origins: OriginTable) -> RoutingOracle {
        assert!(
            graph.provider_customer_acyclic(),
            "provider-customer cycle in AS graph"
        );
        RoutingOracle {
            graph,
            origins,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying AS graph (ground truth).
    pub fn graph(&self) -> &AsGraph {
        &self.graph
    }

    /// The origination table.
    pub fn origins(&self) -> &OriginTable {
        &self.origins
    }

    /// The route tree for an origination (cached).
    pub fn route_tree(&self, o: &Origination) -> Arc<RouteTree> {
        let key = key_of(o);
        if let Some(t) = self.cache.read().expect("cache lock").get(&key) {
            return Arc::clone(t);
        }
        let tree = Arc::new(self.propagate(&key));
        self.cache
            .write()
            .expect("cache lock")
            .insert(key, Arc::clone(&tree));
        tree
    }

    /// The route tree for the longest-match prefix covering `d`, together
    /// with that origination. `None` if `d` is unrouted.
    pub fn route_tree_for(&self, d: bdrmap_types::Addr) -> Option<(&Origination, Arc<RouteTree>)> {
        let o = self.origins.lookup(d)?;
        Some((o, self.route_tree(o)))
    }

    /// AS `a`'s best route toward destination address `d`, with the
    /// matched prefix. `None` if unrouted or not propagated to `a`.
    pub fn best_route(&self, a: Asn, d: bdrmap_types::Addr) -> Option<(Prefix, BestRoute)> {
        let (o, tree) = self.route_tree_for(d)?;
        tree.route(a).map(|r| (o.prefix, r))
    }

    /// All neighbors of `a` whose route toward `o` is exactly as good as
    /// `a`'s best (same class and path length) — the BGP multipath set.
    /// The data plane breaks this tie with IGP distance (hot potato),
    /// which is what makes different ingress routers of the same AS pick
    /// different next-hop ASes (Figure 14 of the paper).
    ///
    /// Returns an empty vector if `a` has no route or originates the
    /// prefix itself.
    pub fn tied_next_hops(&self, a: Asn, o: &Origination) -> Vec<Asn> {
        let tree = self.route_tree(o);
        let Some(best) = tree.route(a) else {
            return Vec::new();
        };
        if best.class == RouteClass::Origin {
            return Vec::new();
        }
        let key = key_of(o);
        let mut out = Vec::new();
        for &(v, role_of_v) in self.graph.neighbors(a) {
            let Some(vr) = tree.route(v) else { continue };
            // v exports to a only if a is in an allowed role; a's role
            // from v's view is the flip.
            if !vr.class.exportable_to(role_of_v.flip()) {
                continue;
            }
            if vr.class == RouteClass::Origin {
                if let Some(f) = &key.filter {
                    if !f.contains(&a) {
                        continue;
                    }
                }
            }
            let learned = match role_of_v {
                Relationship::Customer => RouteClass::Customer,
                Relationship::Peer => RouteClass::Peer,
                Relationship::Provider => RouteClass::Provider,
            };
            if learned == best.class && vr.path_len + 1 == best.path_len {
                out.push(v);
            }
        }
        out.sort_unstable();
        out
    }

    /// Full valley-free propagation for one origination key.
    fn propagate(&self, key: &OriginationKey) -> RouteTree {
        let n = self.graph.num_ases() + 1;
        let mut routes: Vec<Option<BestRoute>> = vec![None; n];

        // Candidate comparison: (class rank, path_len, next_hop asn).
        let better = |cand: &BestRoute, cur: &Option<BestRoute>| -> bool {
            match cur {
                None => true,
                Some(cur) => {
                    let ck = (
                        cand.class.rank(),
                        cand.path_len,
                        cand.next_hop.map_or(0, |a| a.0),
                    );
                    let uk = (
                        cur.class.rank(),
                        cur.path_len,
                        cur.next_hop.map_or(0, |a| a.0),
                    );
                    ck < uk
                }
            }
        };

        // Seed the origins.
        for &o in &key.origins {
            let cand = BestRoute {
                next_hop: None,
                class: RouteClass::Origin,
                path_len: 0,
                origin: o,
            };
            if better(&cand, &routes[o.0 as usize]) {
                routes[o.0 as usize] = Some(cand);
            }
        }

        // Dijkstra-style relaxation ordered by (class rank, path length,
        // learner ASN). Because preference is lexicographic on
        // (class, length) and export rules only ever weaken class, a
        // settled AS's best route never improves after it pops.
        let mut heap: BinaryHeap<Reverse<(u8, u8, u32)>> = BinaryHeap::new();
        for &o in &key.origins {
            heap.push(Reverse((0, 0, o.0)));
        }
        let mut settled = vec![false; n];

        while let Some(Reverse((rank, len, asn))) = heap.pop() {
            let u = Asn(asn);
            let ui = asn as usize;
            if settled[ui] {
                continue;
            }
            let cur = match routes[ui] {
                Some(r) => r,
                None => continue,
            };
            // Skip stale heap entries.
            if cur.class.rank() != rank || cur.path_len != len {
                continue;
            }
            settled[ui] = true;

            // Export u's best route to its neighbors.
            for &(v, role_of_v) in self.graph.neighbors(u) {
                if !cur.class.exportable_to(role_of_v) {
                    continue;
                }
                // Selective advertisement applies at the origin only.
                if cur.class == RouteClass::Origin {
                    if let Some(filter) = &key.filter {
                        if !filter.contains(&v) {
                            continue;
                        }
                    }
                }
                let learned_class = match role_of_v {
                    // v is u's customer: v learns the route from a provider.
                    Relationship::Customer => RouteClass::Provider,
                    Relationship::Peer => RouteClass::Peer,
                    // v is u's provider: v learns the route from a customer.
                    Relationship::Provider => RouteClass::Customer,
                };
                let cand = BestRoute {
                    next_hop: Some(u),
                    class: learned_class,
                    path_len: cur.path_len + 1,
                    origin: cur.origin,
                };
                let vi = v.0 as usize;
                if !settled[vi] && better(&cand, &routes[vi]) {
                    routes[vi] = Some(cand);
                    heap.push(Reverse((cand.class.rank(), cand.path_len, v.0)));
                }
            }
        }

        RouteTree { routes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::AdvertisementScope;
    use bdrmap_types::Prefix;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Chain: 1 (tier-1) — customers 2, 3; 2 and 3 peer; 3 provider of 4.
    ///  1
    ///  |\
    ///  2 3   (2-3 peer)
    ///    |
    ///    4
    fn fixture() -> (AsGraph, OriginTable) {
        let mut g = AsGraph::new();
        let a1 = g.add_as();
        let a2 = g.add_as();
        let a3 = g.add_as();
        let a4 = g.add_as();
        g.add_link(a1, a2, Relationship::Customer);
        g.add_link(a1, a3, Relationship::Customer);
        g.add_link(a2, a3, Relationship::Peer);
        g.add_link(a3, a4, Relationship::Customer);
        let mut t = OriginTable::new();
        t.announce(p("10.4.0.0/16"), a4);
        (g, t)
    }

    #[test]
    fn everyone_reaches_a_customer_prefix() {
        let (g, t) = fixture();
        let oracle = RoutingOracle::new(g, t);
        let d = "10.4.0.1".parse().unwrap();
        for a in 1..=4u32 {
            assert!(oracle.best_route(Asn(a), d).is_some(), "AS{a} unreachable");
        }
    }

    #[test]
    fn prefer_customer_and_peer_over_provider() {
        let (g, t) = fixture();
        let oracle = RoutingOracle::new(g, t);
        let d = "10.4.0.1".parse().unwrap();
        // AS3 learns from customer AS4.
        let (_, r3) = oracle.best_route(Asn(3), d).unwrap();
        assert_eq!(r3.class, RouteClass::Customer);
        assert_eq!(r3.next_hop, Some(Asn(4)));
        // AS2 prefers the peer route via 3 over the provider route via 1.
        let (_, r2) = oracle.best_route(Asn(2), d).unwrap();
        assert_eq!(r2.class, RouteClass::Peer);
        assert_eq!(r2.next_hop, Some(Asn(3)));
        // AS1 learns from customer AS3.
        let (_, r1) = oracle.best_route(Asn(1), d).unwrap();
        assert_eq!(r1.class, RouteClass::Customer);
        assert_eq!(r1.next_hop, Some(Asn(3)));
    }

    #[test]
    fn valley_free_no_peer_route_reexported() {
        // 5 peers with 2; 2's peer-learned route to 4 must not reach 5.
        let (mut g, mut t) = {
            let (g, t) = fixture();
            (g, t)
        };
        let a5 = g.add_as();
        g.add_link(Asn(2), a5, Relationship::Peer);
        t.announce(p("10.5.0.0/16"), a5);
        let oracle = RoutingOracle::new(g, t);
        let d = "10.4.0.1".parse().unwrap();
        // AS5's only possible path to 10.4/16 would be via peer 2, whose
        // best route is peer-learned — not exportable to a peer.
        assert!(oracle.best_route(Asn(5), d).is_none());
    }

    #[test]
    fn as_path_reconstruction() {
        let (g, t) = fixture();
        let oracle = RoutingOracle::new(g, t);
        let o = oracle.origins().get(p("10.4.0.0/16")).unwrap().clone();
        let tree = oracle.route_tree(&o);
        assert_eq!(tree.as_path(Asn(1)), Some(vec![Asn(1), Asn(3), Asn(4)]));
        assert_eq!(tree.as_path(Asn(2)), Some(vec![Asn(2), Asn(3), Asn(4)]));
        assert_eq!(tree.as_path(Asn(4)), Some(vec![Asn(4)]));
    }

    #[test]
    fn selective_advertisement_restricts_propagation() {
        let (mut g, mut t) = fixture();
        // AS4 dual-homes to 2 as well, but announces a prefix only to 3.
        g.add_link(Asn(2), Asn(4), Relationship::Customer);
        t.announce_scoped(
            p("10.44.0.0/16"),
            vec![Asn(4)],
            AdvertisementScope::Neighbors(vec![Asn(3)]),
        );
        let oracle = RoutingOracle::new(g, t);
        let d = "10.44.0.1".parse().unwrap();
        // AS2 still reaches it, but via peer 3, not via its customer 4.
        let (_, r2) = oracle.best_route(Asn(2), d).unwrap();
        assert_eq!(r2.next_hop, Some(Asn(3)));
        assert_eq!(r2.class, RouteClass::Peer);
    }

    #[test]
    fn moas_prefix_reaches_nearest_origin() {
        let (mut g, mut t) = fixture();
        let a5 = g.add_as();
        g.add_link(Asn(2), a5, Relationship::Customer);
        // Anycast prefix from AS4 and AS5.
        t.announce_scoped(p("10.99.0.0/16"), vec![Asn(4), a5], AdvertisementScope::All);
        let oracle = RoutingOracle::new(g, t);
        let d = "10.99.0.1".parse().unwrap();
        let (_, r2) = oracle.best_route(Asn(2), d).unwrap();
        assert_eq!(r2.origin, a5, "AS2 should use its direct customer AS5");
        let (_, r3) = oracle.best_route(Asn(3), d).unwrap();
        assert_eq!(r3.origin, Asn(4));
    }

    #[test]
    fn cache_shares_trees_across_prefixes() {
        let (g, mut t) = fixture();
        t.announce(p("10.40.0.0/16"), Asn(4));
        let oracle = RoutingOracle::new(g, t);
        let o1 = oracle.origins().get(p("10.4.0.0/16")).unwrap().clone();
        let o2 = oracle.origins().get(p("10.40.0.0/16")).unwrap().clone();
        let t1 = oracle.route_tree(&o1);
        let t2 = oracle.route_tree(&o2);
        assert!(
            Arc::ptr_eq(&t1, &t2),
            "same origination key must share the tree"
        );
    }

    #[test]
    fn deterministic_tiebreak_lowest_asn() {
        // Diamond: 1 has customers 2 and 3, both providers of 4.
        let mut g = AsGraph::new();
        let a1 = g.add_as();
        let a2 = g.add_as();
        let a3 = g.add_as();
        let a4 = g.add_as();
        g.add_link(a1, a2, Relationship::Customer);
        g.add_link(a1, a3, Relationship::Customer);
        g.add_link(a2, a4, Relationship::Customer);
        g.add_link(a3, a4, Relationship::Customer);
        let mut t = OriginTable::new();
        t.announce(p("10.4.0.0/16"), a4);
        let oracle = RoutingOracle::new(g, t);
        let (_, r1) = oracle.best_route(a1, "10.4.0.1".parse().unwrap()).unwrap();
        assert_eq!(r1.next_hop, Some(a2), "tie must break to the lower ASN");
    }
}
