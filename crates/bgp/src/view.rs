//! Public BGP collector views.
//!
//! Route Views and RIPE RIS collect each collector peer's *best* path to
//! every prefix. That is all the public ever sees of interdomain routing:
//! links that never appear on a collector peer's best path are invisible,
//! which is why Table 1 of the paper compares bdrmap's traceroute-derived
//! links against an incomplete BGP baseline. [`CollectorView`] reproduces
//! that mechanism: pick a set of collector-peer ASes, record their best
//! AS paths, and derive from those paths the prefix→origin table, the
//! visible AS-link set, and the raw paths the relationship-inference pass
//! consumes.

use crate::propagate::RoutingOracle;
use bdrmap_types::{Addr, Asn, Prefix, PrefixTrie};
use std::collections::{BTreeSet, HashMap};

/// A snapshot of the public BGP view assembled from collector peers.
#[derive(Clone, Debug, Default)]
pub struct CollectorView {
    /// Prefix → origin ASes observed in collected paths.
    ip2as: PrefixTrie<Vec<Asn>>,
    /// Undirected AS links observed on any collected path, stored with
    /// the lower ASN first.
    links: BTreeSet<(Asn, Asn)>,
    /// Deduplicated AS paths (collector peer first, origin last).
    paths: Vec<Vec<Asn>>,
    /// The collector peers the view was assembled from.
    peers: Vec<Asn>,
}

impl CollectorView {
    /// Assemble the view: for every origination, record each collector
    /// peer's best AS path.
    pub fn collect(oracle: &RoutingOracle, collector_peers: &[Asn]) -> CollectorView {
        let mut ip2as: PrefixTrie<Vec<Asn>> = PrefixTrie::new();
        let mut links = BTreeSet::new();
        let mut path_set: HashMap<Vec<Asn>, ()> = HashMap::new();

        for o in oracle.origins().iter() {
            let tree = oracle.route_tree(o);
            let mut origins_seen: Vec<Asn> = Vec::new();
            for &peer in collector_peers {
                let Some(path) = tree.as_path(peer) else {
                    continue;
                };
                let origin = *path.last().expect("paths are non-empty");
                if !origins_seen.contains(&origin) {
                    origins_seen.push(origin);
                }
                for w in path.windows(2) {
                    let (a, b) = if w[0] < w[1] {
                        (w[0], w[1])
                    } else {
                        (w[1], w[0])
                    };
                    links.insert((a, b));
                }
                path_set.entry(path).or_insert(());
            }
            if !origins_seen.is_empty() {
                origins_seen.sort_unstable();
                ip2as.insert(o.prefix, origins_seen);
            }
        }

        let mut paths: Vec<Vec<Asn>> = path_set.into_keys().collect();
        paths.sort_unstable();
        CollectorView {
            ip2as,
            links,
            paths,
            peers: collector_peers.to_vec(),
        }
    }

    /// Longest-match origin ASes for an address, as observed publicly.
    pub fn origins_of(&self, a: Addr) -> Option<(Prefix, &[Asn])> {
        self.ip2as.lookup(a).map(|(p, v)| (p, v.as_slice()))
    }

    /// Exact-match origin ASes for a prefix.
    pub fn origins_of_prefix(&self, p: Prefix) -> Option<&[Asn]> {
        self.ip2as.get(p).map(|v| v.as_slice())
    }

    /// All publicly visible routed prefixes with observed origins.
    pub fn prefixes(&self) -> impl Iterator<Item = (Prefix, &[Asn])> {
        self.ip2as.iter().map(|(p, v)| (p, v.as_slice()))
    }

    /// Number of routed prefixes in the view.
    pub fn num_prefixes(&self) -> usize {
        self.ip2as.len()
    }

    /// True if the AS link {a, b} appears on any collected path.
    pub fn has_link(&self, a: Asn, b: Asn) -> bool {
        let k = if a < b { (a, b) } else { (b, a) };
        self.links.contains(&k)
    }

    /// All visible AS links (lower ASN first).
    pub fn links(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        self.links.iter().copied()
    }

    /// Neighbors of `a` visible in the public view.
    pub fn neighbors_of(&self, a: Asn) -> Vec<Asn> {
        let mut out: Vec<Asn> = self
            .links
            .iter()
            .filter_map(|&(x, y)| {
                if x == a {
                    Some(y)
                } else if y == a {
                    Some(x)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// The deduplicated AS paths (collector peer first).
    pub fn paths(&self) -> &[Vec<Asn>] {
        &self.paths
    }

    /// The collector peers used.
    pub fn collector_peers(&self) -> &[Asn] {
        &self.peers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AsGraph;
    use crate::origin::OriginTable;
    use bdrmap_types::Relationship;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// 1 (tier-1, collector peer) — customer 2 (access) — customer 4 (stub);
    /// 2 peers with 3; 3 customer of 1; 3 originates a prefix.
    fn fixture() -> RoutingOracle {
        let mut g = AsGraph::new();
        let a1 = g.add_as();
        let a2 = g.add_as();
        let a3 = g.add_as();
        let a4 = g.add_as();
        g.add_link(a1, a2, Relationship::Customer);
        g.add_link(a1, a3, Relationship::Customer);
        g.add_link(a2, a3, Relationship::Peer);
        g.add_link(a2, a4, Relationship::Customer);
        let mut t = OriginTable::new();
        t.announce(p("10.3.0.0/16"), a3);
        t.announce(p("10.4.0.0/16"), a4);
        RoutingOracle::new(g, t)
    }

    #[test]
    fn collector_sees_customer_chain_links() {
        let oracle = fixture();
        let view = CollectorView::collect(&oracle, &[Asn(1)]);
        // 1's best path to 10.4/16 is 1-2-4.
        assert!(view.has_link(Asn(1), Asn(2)));
        assert!(view.has_link(Asn(2), Asn(4)));
        assert!(view.has_link(Asn(1), Asn(3)));
    }

    #[test]
    fn peer_link_invisible_from_above() {
        let oracle = fixture();
        let view = CollectorView::collect(&oracle, &[Asn(1)]);
        // The 2-3 peer link never appears on AS1's best paths: peer routes
        // are not exported upward.
        assert!(!view.has_link(Asn(2), Asn(3)));
    }

    #[test]
    fn peer_link_visible_from_customer_cone() {
        let oracle = fixture();
        // A collector peer inside AS2's customer cone sees 2's peer route
        // toward AS3's prefix.
        let view = CollectorView::collect(&oracle, &[Asn(4)]);
        assert!(view.has_link(Asn(2), Asn(3)));
    }

    #[test]
    fn ip2as_longest_match() {
        let oracle = fixture();
        let view = CollectorView::collect(&oracle, &[Asn(1), Asn(4)]);
        let (pfx, origins) = view.origins_of("10.3.0.1".parse().unwrap()).unwrap();
        assert_eq!(pfx, p("10.3.0.0/16"));
        assert_eq!(origins, &[Asn(3)]);
        assert!(view.origins_of("172.16.0.1".parse().unwrap()).is_none());
        assert_eq!(view.num_prefixes(), 2);
    }

    #[test]
    fn neighbors_of_vp_as() {
        let oracle = fixture();
        let view = CollectorView::collect(&oracle, &[Asn(1), Asn(4)]);
        assert_eq!(view.neighbors_of(Asn(2)), vec![Asn(1), Asn(3), Asn(4)]);
    }

    #[test]
    fn paths_are_deduplicated_and_sorted() {
        let oracle = fixture();
        let view = CollectorView::collect(&oracle, &[Asn(1)]);
        let paths = view.paths();
        assert!(paths.windows(2).all(|w| w[0] < w[1]));
        assert!(paths.iter().all(|p| p.first() == Some(&Asn(1))));
    }
}
