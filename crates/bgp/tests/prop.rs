//! Property-based tests for the BGP substrate: valley-free invariants of
//! propagation over random AS hierarchies, collector-view consistency,
//! and the multipath tie set.

use bdrmap_bgp::{AdvertisementScope, AsGraph, CollectorView, OriginTable, RoutingOracle};
use bdrmap_types::{Asn, Prefix, Relationship};
use proptest::prelude::*;

/// A random but well-formed hierarchy: layer 0 = clique of tier-1s,
/// layers below pick providers from the layer above and peers within
/// their own layer. Provider→customer edges always point downward, so
/// the relation is acyclic by construction.
#[derive(Debug, Clone)]
struct RandomInternet {
    graph: AsGraph,
    origins: OriginTable,
    all: Vec<Asn>,
}

fn arb_internet() -> impl Strategy<Value = RandomInternet> {
    (
        2usize..=4,                               // tier-1s
        prop::collection::vec(1usize..=4, 1..=3), // per-layer sizes
        any::<u64>(),                             // decisions seed
    )
        .prop_map(|(t1, layers, seed)| {
            // Simple deterministic PRNG (xorshift) from the seed.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut g = AsGraph::new();
            let mut above: Vec<Asn> = (0..t1).map(|_| g.add_as()).collect();
            for i in 0..above.len() {
                for j in (i + 1)..above.len() {
                    g.add_link(above[i], above[j], Relationship::Peer);
                }
            }
            let mut all = above.clone();
            for layer in layers {
                let mut this: Vec<Asn> = Vec::new();
                for _ in 0..layer {
                    let a = g.add_as();
                    // 1-2 providers from the layer above.
                    let p1 = above[(next() as usize) % above.len()];
                    g.add_link(p1, a, Relationship::Customer);
                    if above.len() > 1 && next() % 2 == 0 {
                        let p2 = above[(next() as usize) % above.len()];
                        if g.relationship(p2, a).is_none() {
                            g.add_link(p2, a, Relationship::Customer);
                        }
                    }
                    // Peer with an earlier member of this layer sometimes.
                    if !this.is_empty() && next() % 3 == 0 {
                        let q = this[(next() as usize) % this.len()];
                        if g.relationship(q, a).is_none() {
                            g.add_link(q, a, Relationship::Peer);
                        }
                    }
                    this.push(a);
                }
                all.extend(this.iter().copied());
                above = this;
            }
            let mut origins = OriginTable::new();
            for (i, &a) in all.iter().enumerate() {
                let p: Prefix = format!("10.{}.0.0/16", i + 1).parse().unwrap();
                origins.announce(p, a);
            }
            RandomInternet {
                graph: g,
                origins,
                all,
            }
        })
}

/// Check the valley-free property of a path given ground-truth labels:
/// a sequence of uphill (customer→provider) steps, at most one peer
/// step, then downhill (provider→customer) steps.
fn valley_free(graph: &AsGraph, path: &[Asn]) -> bool {
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    enum Phase {
        Up,
        Peak,
        Down,
    }
    // Paths run collector → origin: the route was learned in the other
    // direction, so walk it reversed: origin exports upward first.
    let mut phase = Phase::Up;
    for w in path.windows(2).rev() {
        // Step from w[1] (closer to origin) to w[0].
        let rel = graph.relationship(w[1], w[0]);
        match rel {
            Some(Relationship::Provider) => {
                // Route moves origin→provider: only allowed while
                // ascending.
                if phase > Phase::Up {
                    return false;
                }
            }
            Some(Relationship::Peer) => {
                if phase > Phase::Up {
                    return false;
                }
                phase = Phase::Peak;
            }
            Some(Relationship::Customer) => {
                phase = Phase::Down;
            }
            None => return false,
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn propagation_is_valley_free(net in arb_internet()) {
        let oracle = RoutingOracle::new(net.graph.clone(), net.origins.clone());
        for o in net.origins.iter() {
            let tree = oracle.route_tree(o);
            for &a in &net.all {
                if let Some(path) = tree.as_path(a) {
                    prop_assert!(
                        valley_free(&net.graph, &path),
                        "valley in path {path:?}"
                    );
                    // Path ends at the origin and starts at a.
                    prop_assert_eq!(path[0], a);
                    prop_assert!(o.origins.contains(path.last().unwrap()));
                    // No AS repeats (loop-free).
                    let mut sorted = path.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), path.len());
                }
            }
        }
    }

    #[test]
    fn customer_prefixes_reach_everyone(net in arb_internet()) {
        // Valley-free propagation still guarantees global reachability
        // of every origination in a hierarchy where every AS has a
        // provider chain to the clique.
        let oracle = RoutingOracle::new(net.graph.clone(), net.origins.clone());
        for o in net.origins.iter() {
            let tree = oracle.route_tree(o);
            prop_assert_eq!(tree.reachable_count(), net.all.len());
        }
    }

    #[test]
    fn tied_next_hops_contains_best(net in arb_internet()) {
        let oracle = RoutingOracle::new(net.graph.clone(), net.origins.clone());
        for o in net.origins.iter() {
            let tree = oracle.route_tree(o);
            for &a in &net.all {
                let Some(best) = tree.route(a) else { continue };
                let Some(nh) = best.next_hop else { continue };
                let tied = oracle.tied_next_hops(a, o);
                prop_assert!(
                    tied.contains(&nh),
                    "{a}: best next hop {nh} missing from tie set {tied:?}"
                );
            }
        }
    }

    #[test]
    fn collector_view_paths_exist_and_start_at_peers(net in arb_internet()) {
        let peers: Vec<Asn> = net.all.iter().copied().take(3).collect();
        let oracle = RoutingOracle::new(net.graph.clone(), net.origins.clone());
        let view = CollectorView::collect(&oracle, &peers);
        for path in view.paths() {
            prop_assert!(peers.contains(&path[0]));
            prop_assert!(valley_free(&net.graph, path));
        }
        // Every origination is visible (hierarchy guarantees routes).
        prop_assert_eq!(view.num_prefixes(), net.origins.len());
    }

    #[test]
    fn scoped_advertisement_only_restricts(net in arb_internet()) {
        // Restricting an announcement to a neighbor subset can only
        // shrink the set of ASes with routes.
        let some_origin = net.all[net.all.len() - 1];
        let neighbors: Vec<Asn> = net
            .graph
            .neighbors(some_origin)
            .iter()
            .map(|&(n, _)| n)
            .collect();
        prop_assume!(!neighbors.is_empty());
        let p: Prefix = "172.20.0.0/16".parse().unwrap();
        let mut full = net.origins.clone();
        full.announce(p, some_origin);
        let mut scoped = net.origins.clone();
        scoped.announce_scoped(
            p,
            vec![some_origin],
            AdvertisementScope::Neighbors(vec![neighbors[0]]),
        );
        let o_full = full.get(p).unwrap().clone();
        let o_scoped = scoped.get(p).unwrap().clone();
        let oracle_full = RoutingOracle::new(net.graph.clone(), full);
        let oracle_scoped = RoutingOracle::new(net.graph.clone(), scoped);
        let r_full = oracle_full.route_tree(&o_full).reachable_count();
        let r_scoped = oracle_scoped.route_tree(&o_scoped).reachable_count();
        prop_assert!(r_scoped <= r_full, "scoped {r_scoped} > full {r_full}");
    }
}
