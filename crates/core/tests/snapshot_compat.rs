//! Cross-version snapshot compatibility: every query answer is
//! byte-identical whether it comes from a heap [`QueryIndex`] built
//! out of a v1/v2 parse or from the zero-copy [`V3View`] over v3 file
//! bytes — over a real pipeline-produced map and over crafted corner
//! cases. The hostile half of the suite pins the v3 decoder's blast
//! radius: truncation at every length and every single-bit flip are
//! rejected with an error, never a panic, and a file whose trie points
//! at an ownerless router (the old read-path `expect`) is refused at
//! open.

use bdrmap_bgp::{CollectorView, InferredRelationships};
use bdrmap_core::{
    flat, snapshot, BorderMap, Heuristic, InferredLink, InferredRouter, Input, QueryIndex,
    QueryRead, V3View,
};
use bdrmap_dataplane::DataPlane;
use bdrmap_probe::{run_traces, EngineConfig, ProbeEngine, RunOptions};
use bdrmap_topo::{generate, AsKind, TopoConfig};
use bdrmap_types::integrity::crc32c;
use bdrmap_types::{addr, addr_bits, Asn, Prefix};
use std::sync::Arc;

fn a(s: &str) -> bdrmap_types::Addr {
    s.parse().unwrap()
}

/// A real border map out of the full pipeline over a tiny topology.
fn pipeline_map(seed: u64) -> (BorderMap, Input) {
    let net = generate(&TopoConfig::tiny(seed));
    let dp = Arc::new(DataPlane::new(net));
    let mut peers: Vec<Asn> = dp
        .internet()
        .graph
        .ases()
        .filter(|&x| dp.internet().as_info(x).kind == AsKind::Tier1)
        .collect();
    peers.extend(
        dp.internet()
            .graph
            .ases()
            .filter(|&x| dp.internet().as_info(x).kind == AsKind::Stub)
            .take(6),
    );
    let view = CollectorView::collect(dp.oracle(), &peers);
    let rels = InferredRelationships::infer(&view);
    let input = Input {
        view,
        rels,
        ixp_prefixes: dp.internet().ixps.iter().map(|x| x.lan).collect(),
        rir: dp.internet().rir.clone(),
        vp_asns: dp.internet().vp_siblings.clone(),
    };
    let vp = dp.internet().vps[0].addr;
    let engine = ProbeEngine::new(Arc::clone(&dp), vp, EngineConfig::default());
    let targets = bdrmap_probe::target_blocks(&input.view, &input.vp_asns);
    let ip2as = input.ip2as_for_probing();
    let coll = run_traces(&engine, &targets, RunOptions::default(), |x| {
        ip2as.is_external(x)
    });
    let map = bdrmap_core::run_stages(&engine, &input, &Default::default(), coll).map;
    (map, input)
}

/// A small hand-built map with every corner the codecs care about: an
/// ownerless router, a silent neighbor, a missing near_addr, and one
/// interface fronting several links.
fn crafted_map() -> BorderMap {
    BorderMap {
        routers: vec![
            InferredRouter {
                addrs: vec![a("10.0.0.1")],
                other_addrs: vec![a("10.0.0.9")],
                owner: Some(Asn(100)),
                heuristic: Some(Heuristic::VpInternal),
                min_hop: 1,
            },
            InferredRouter {
                addrs: vec![a("203.0.113.1"), a("203.0.113.5")],
                other_addrs: vec![],
                owner: Some(Asn(200)),
                heuristic: Some(Heuristic::OneNet),
                min_hop: 2,
            },
            InferredRouter {
                addrs: vec![a("198.51.100.1")],
                other_addrs: vec![],
                owner: None,
                heuristic: None,
                min_hop: 4,
            },
        ],
        links: vec![
            InferredLink {
                near: 0,
                far: Some(1),
                far_as: Asn(200),
                near_addr: Some(a("10.0.0.1")),
                far_addr: Some(a("203.0.113.1")),
                heuristic: Heuristic::OneNet,
            },
            InferredLink {
                near: 0,
                far: None,
                far_as: Asn(300),
                near_addr: Some(a("10.0.0.1")),
                far_addr: None,
                heuristic: Heuristic::SilentNeighbor,
            },
            InferredLink {
                near: 0,
                far: Some(1),
                far_as: Asn(200),
                near_addr: None,
                far_addr: Some(a("203.0.113.5")),
                heuristic: Heuristic::ThirdParty,
            },
        ],
        packets: 7,
        elapsed_ms: 9,
    }
}

/// Every address worth probing on `map`: all interfaces, their
/// neighbors in address space, and a few guaranteed misses.
fn probe_addrs(map: &BorderMap) -> Vec<bdrmap_types::Addr> {
    let mut probes = Vec::new();
    for r in &map.routers {
        for &x in r.addrs.iter().chain(&r.other_addrs) {
            probes.push(x);
            probes.push(addr(addr_bits(x).wrapping_add(1)));
        }
    }
    for l in &map.links {
        probes.extend(l.near_addr);
        probes.extend(l.far_addr);
    }
    probes.extend([a("0.0.0.0"), a("255.255.255.255"), a("192.0.2.77")]);
    probes
}

/// The whole read contract, compared answer by answer.
fn assert_same_answers(want: &dyn QueryRead, got: &dyn QueryRead, map: &BorderMap, tag: &str) {
    assert_eq!(want.num_routers(), got.num_routers(), "{tag}: num_routers");
    assert_eq!(want.num_links(), got.num_links(), "{tag}: num_links");
    assert_eq!(
        want.num_prefixes(),
        got.num_prefixes(),
        "{tag}: num_prefixes"
    );
    assert_eq!(
        want.num_prefix_owners(),
        got.num_prefix_owners(),
        "{tag}: num_prefix_owners"
    );
    assert_eq!(
        want.neighbor_list(),
        got.neighbor_list(),
        "{tag}: neighbors"
    );
    for x in probe_addrs(map) {
        assert_eq!(want.owner_of(x), got.owner_of(x), "{tag}: owner_of({x})");
        assert_eq!(want.border_of(x), got.border_of(x), "{tag}: border_of({x})");
    }
    let mut asns = want.neighbor_list();
    asns.push(Asn(4_200_000_000));
    for asn in asns {
        assert_eq!(
            want.neighbor_links(asn),
            got.neighbor_links(asn),
            "{tag}: neighbor_links({asn:?})"
        );
    }
    for id in 0..want.num_links() + 2 {
        assert_eq!(
            want.link_answer(id),
            got.link_answer(id),
            "{tag}: link_answer({id})"
        );
        assert_eq!(want.link_rec(id), got.link_rec(id), "{tag}: link_rec({id})");
    }
    for id in 0..want.num_routers() + 2 {
        let (w, g) = (want.router_info(id), got.router_info(id));
        assert_eq!(w.is_some(), g.is_some(), "{tag}: router_info({id})");
        if let (Some((wr, wa)), Some((gr, ga))) = (w, g) {
            assert_eq!(
                (wr.owner, wr.heuristic, wr.min_hop),
                (gr.owner, gr.heuristic, gr.min_hop),
                "{tag}: router_info({id}) record"
            );
            assert_eq!(wa, ga, "{tag}: router_info({id}) addrs");
        }
    }
}

/// A prefix-owner overlay that exercises every merge case: a /32
/// exactly shadowed by an observed router, a coarse prefix under live
/// interfaces, and one covering otherwise-unknown space.
fn overlay(map: &BorderMap) -> Vec<(Prefix, Asn)> {
    let mut v = vec![(Prefix::new(a("192.0.2.0"), 24), Asn(64999))];
    if let Some(r) = map.routers.iter().find(|r| !r.addrs.is_empty()) {
        v.push((Prefix::new(r.addrs[0], 32), Asn(65000)));
        v.push((Prefix::new(r.addrs[0], 12), Asn(65001)));
    }
    v
}

#[test]
fn answers_identical_across_versions_on_a_pipeline_map() {
    let (map, _input) = pipeline_map(905);
    assert!(
        map.routers.len() > 4 && map.links.len() > 2,
        "map too small to mean much"
    );
    let over = overlay(&map);

    let reference = QueryIndex::build_with_prefixes(&map, over.iter().copied());
    for version in snapshot::MIN_VERSION..=snapshot::LATEST_VERSION {
        let bytes = snapshot::encode_as(&map, version).unwrap();
        assert_eq!(snapshot::version_of(&bytes), Some(version));
        let decoded = snapshot::decode(&bytes).unwrap();
        let heap = QueryIndex::build_with_prefixes(&decoded, over.iter().copied());
        assert_same_answers(&reference, &heap, &map, &format!("v{version} heap"));
        if version == flat::VERSION {
            let view = V3View::open(bytes, over.iter().copied()).unwrap();
            assert_same_answers(&reference, &view, &map, "v3 view");
        }
    }
}

#[test]
fn answers_identical_across_versions_on_the_crafted_map() {
    let map = crafted_map();
    let over = overlay(&map);
    let reference = QueryIndex::build_with_prefixes(&map, over.iter().copied());
    let view = V3View::open(snapshot::encode_v3(&map).unwrap(), over.iter().copied()).unwrap();
    assert_same_answers(&reference, &view, &map, "crafted v3 view");
    // And with no overlay at all.
    let bare = QueryIndex::build(&map);
    let bare_view = V3View::open(snapshot::encode_v3(&map).unwrap(), std::iter::empty()).unwrap();
    assert_same_answers(&bare, &bare_view, &map, "crafted bare view");
}

#[test]
fn every_version_round_trips_to_a_canonical_fixed_point() {
    let (map, _input) = pipeline_map(906);
    for version in snapshot::MIN_VERSION..=snapshot::LATEST_VERSION {
        let e1 = snapshot::encode_as(&map, version).unwrap();
        let m1 = snapshot::decode(&e1).unwrap();
        assert_eq!(
            snapshot::encode_as(&m1, version).unwrap(),
            e1,
            "v{version} re-encode is not a fixed point"
        );
        // Decoding through any version preserves the map exactly: its
        // encoding in every *other* version matches the original's.
        for other in snapshot::MIN_VERSION..=snapshot::LATEST_VERSION {
            assert_eq!(
                snapshot::encode_as(&m1, other).unwrap(),
                snapshot::encode_as(&map, other).unwrap(),
                "v{version} decode drifted when re-encoded as v{other}"
            );
        }
    }
}

#[test]
fn lowest_link_id_wins_on_heap_and_view_paths() {
    // 10.0.0.1 fronts links 0 and 1 (near side of both); 203.0.113.5
    // fronts only link 2 via its far side. Both read paths must hand
    // back the lowest link id for the shared interface.
    let map = crafted_map();
    let heap = QueryIndex::build(&map);
    let bytes = snapshot::encode_v3(&map).unwrap();
    let view = V3View::open(bytes.clone(), std::iter::empty()).unwrap();
    for (tag, got) in [
        ("heap", heap.border_of(a("10.0.0.1"))),
        ("view", view.border_of(a("10.0.0.1"))),
    ] {
        let b = got.expect("shared interface must resolve");
        assert_eq!(b.link, 0, "{tag}: lowest link id must win");
        assert_eq!(b.far_as, Asn(200), "{tag}: and carry link 0's answer");
    }
    // The v3 border section stores only the winning entry per address:
    // 3 distinct bordered addresses (10.0.0.1 fronts two links), not 4
    // rows.
    let lay = flat::verify_integrity(&bytes).unwrap();
    assert_eq!(
        lay.n_border, 3,
        "v3 border index must dedup to first-per-addr"
    );
}

#[test]
fn v3_truncation_at_every_length_is_rejected() {
    let bytes = snapshot::encode_v3(&crafted_map()).unwrap();
    for len in 0..bytes.len() {
        let cut = &bytes[..len];
        assert!(
            snapshot::decode(cut).is_err(),
            "truncation to {len}/{} bytes was accepted",
            bytes.len()
        );
        assert!(
            flat::verify_integrity(cut).is_err(),
            "verify_integrity accepted a {len}-byte prefix"
        );
    }
    assert!(
        snapshot::decode(&bytes).is_ok(),
        "the untruncated file must load"
    );
}

#[test]
fn v3_single_bit_flips_are_rejected() {
    let map = crafted_map();
    let bytes = snapshot::encode_v3(&map).unwrap();
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut m = bytes.clone();
            m[i] ^= 1 << bit;
            match snapshot::decode(&m) {
                // A flip in the 6-byte preamble may legitimately turn
                // the file into a claim of some other version; those
                // parses must still never resurrect the original map.
                Ok(got) if i < 6 => assert_ne!(
                    snapshot::encode_v3(&got).unwrap(),
                    bytes,
                    "preamble flip at byte {i} bit {bit} round-tripped silently"
                ),
                Ok(_) => panic!("body flip at byte {i} bit {bit} was accepted"),
                Err(_) => {}
            }
        }
    }
}

#[test]
fn trie_entry_at_ownerless_router_is_rejected_at_open() {
    // Two routers: 0 owned, 1 ownerless. The encoder only emits trie
    // entries for owned routers, so rewrite one to point at router 1 —
    // with section + footer CRCs recomputed so only the structural
    // validation pass can catch it. The old read path `expect`ed the
    // owner at query time; the contract now is rejection at open.
    let map = BorderMap {
        routers: vec![
            InferredRouter {
                addrs: vec![a("10.0.0.1")],
                other_addrs: vec![],
                owner: Some(Asn(100)),
                heuristic: Some(Heuristic::VpInternal),
                min_hop: 1,
            },
            InferredRouter {
                addrs: vec![a("10.0.0.2")],
                other_addrs: vec![],
                owner: None,
                heuristic: None,
                min_hop: 2,
            },
        ],
        links: vec![InferredLink {
            near: 0,
            far: Some(1),
            far_as: Asn(200),
            near_addr: Some(a("10.0.0.1")),
            far_addr: Some(a("10.0.0.2")),
            heuristic: Heuristic::OneNet,
        }],
        packets: 0,
        elapsed_ms: 0,
    };
    let bytes = snapshot::encode_v3(&map).unwrap();
    let lay = flat::verify_integrity(&bytes).unwrap();

    let mut evil = bytes.clone();
    let node = (0..lay.n_trie)
        .find(|i| {
            let at = lay.trie + i * 12 + 8;
            u32::from_le_bytes(evil[at..at + 4].try_into().unwrap()) != u32::MAX
        })
        .expect("an owned router must have a trie entry");
    let at = lay.trie + node * 12 + 8;
    evil[at..at + 4].copy_from_slice(&1u32.to_le_bytes());

    // Re-seal the file: trie section CRC, then the whole-file footer.
    let trie_end = lay.trie + lay.n_trie * 12;
    let crc = crc32c(&evil[lay.trie..trie_end]);
    evil[trie_end..trie_end + 4].copy_from_slice(&crc.to_le_bytes());
    let foot = evil.len() - 4;
    let crc = crc32c(&evil[..foot]);
    evil[foot..].copy_from_slice(&crc.to_le_bytes());

    // Checksums now pass — the integrity stage must accept the bytes —
    // but the structural stage refuses the file, and no panic escapes.
    assert!(flat::verify_integrity(&evil).is_ok());
    assert!(matches!(
        V3View::open(evil.clone(), std::iter::empty()),
        Err(snapshot::SnapshotError::Malformed)
    ));
    assert!(snapshot::decode(&evil).is_err());
}
