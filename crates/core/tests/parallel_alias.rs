//! Parallel alias resolution is byte-identical to the serial run.
//!
//! Each alias pair test is an isolated task: it probes through a fresh
//! dataplane runtime on a private virtual timeline keyed on its
//! canonical task id, so its verdict cannot depend on worker
//! interleaving. These tests pin the consequence: the alias outcome —
//! and the final border map built from it — is the same at any
//! parallelism, and staging strictly reduces the executed pair tests.

use bdrmap_bgp::{CollectorView, InferredRelationships};
use bdrmap_core::{aliases, snapshot, AliasConfig, BdrmapConfig, Input};
use bdrmap_dataplane::DataPlane;
use bdrmap_probe::{run_traces, EngineConfig, ProbeEngine, RunOptions, TraceCollection};
use bdrmap_topo::{generate, AsKind, Internet, TopoConfig};
use bdrmap_types::Asn;
use std::sync::Arc;

fn build_input(net: &Internet, dp: &DataPlane) -> Input {
    let mut peers: Vec<Asn> = net
        .graph
        .ases()
        .filter(|&a| net.as_info(a).kind == AsKind::Tier1)
        .collect();
    peers.extend(
        net.graph
            .ases()
            .filter(|&a| net.as_info(a).kind == AsKind::Stub)
            .take(6),
    );
    let view = CollectorView::collect(dp.oracle(), &peers);
    let rels = InferredRelationships::infer(&view);
    Input {
        view,
        rels,
        ixp_prefixes: net.ixps.iter().map(|x| x.lan).collect(),
        rir: net.rir.clone(),
        vp_asns: net.vp_siblings.clone(),
    }
}

/// Generate a topology and probe it once; alias runs at different
/// parallelism levels then reuse the same trace collection.
fn probed_world(seed: u64) -> (Arc<DataPlane>, Input, TraceCollection) {
    let net = generate(&TopoConfig::tiny(seed));
    let dp = Arc::new(DataPlane::new(net));
    let input = build_input(dp.internet(), &dp);
    let vp = dp.internet().vps[0].addr;
    let engine = ProbeEngine::new(Arc::clone(&dp), vp, EngineConfig::default());
    let targets = bdrmap_probe::target_blocks(&input.view, &input.vp_asns);
    let ip2as = input.ip2as_for_probing();
    let coll = run_traces(&engine, &targets, RunOptions::default(), |a| {
        ip2as.is_external(a)
    });
    (dp, input, coll)
}

/// A fresh engine per run keeps the probe budget comparable: it carries
/// only the alias traffic of that run.
fn fresh_engine(dp: &Arc<DataPlane>) -> ProbeEngine {
    let vp = dp.internet().vps[0].addr;
    ProbeEngine::new(Arc::clone(dp), vp, EngineConfig::default())
}

#[test]
fn alias_data_and_border_map_identical_at_any_parallelism() {
    let (dp, input, coll) = probed_world(314);

    let mut runs = Vec::new();
    for parallelism in [1usize, 4, 8] {
        let engine = fresh_engine(&dp);
        let cfg = BdrmapConfig {
            alias_parallelism: parallelism,
            ..BdrmapConfig::default()
        };
        let run = bdrmap_core::run_stages(&engine, &input, &cfg, coll.clone());
        let map_bytes = snapshot::encode(&run.map).unwrap();
        runs.push((parallelism, run, map_bytes));
    }

    let (_, serial, serial_map) = &runs[0];
    for (parallelism, run, map_bytes) in &runs[1..] {
        assert_eq!(
            serial.alias_bytes, run.alias_bytes,
            "alias outcome diverged at parallelism {parallelism}"
        );
        assert_eq!(
            serial_map, map_bytes,
            "border map diverged at parallelism {parallelism}"
        );
        // Even the traffic totals match: each task's cost is a pure
        // function of its id, and budgets are commutative sums.
        assert_eq!(
            serial.stages.alias.packets, run.stages.alias.packets,
            "alias packet totals diverged at parallelism {parallelism}"
        );
    }
    // The parallel runs actually sharded the work.
    assert!(runs[2].1.stages.alias.shards.len() > 1);
}

#[test]
fn staged_engine_executes_fewer_pair_tests_than_naive() {
    let (dp, input, coll) = probed_world(316);
    let ip2as = input.ip2as_with_estimation(&coll.traces);

    let naive = aliases::resolve(
        &fresh_engine(&dp),
        &coll.traces,
        &ip2as,
        &AliasConfig {
            staged: false,
            ..AliasConfig::default()
        },
    );
    let staged = aliases::resolve(
        &fresh_engine(&dp),
        &coll.traces,
        &ip2as,
        &AliasConfig::default(),
    );

    assert!(
        staged.pairs_tested < naive.pairs_tested,
        "staging must shrink the executed pair-test set: staged {} vs naive {}",
        staged.pairs_tested,
        naive.pairs_tested
    );
    let skipped =
        staged.stats.ally_staged_out + staged.stats.ally_deduped + staged.stats.prefixscan_deduped;
    assert!(skipped > 0, "no pair was deduplicated or staged out");
}
