//! The durable-watch contract: a watch loop killed at any point and
//! recovered from its write-ahead journal (checkpoint + tail replay)
//! publishes maps byte-identical to an uninterrupted run — at any
//! alias parallelism — and `--expire-after`-style retraction windows
//! behave exactly at their boundaries.

use bdrmap_bgp::{CollectorView, InferredRelationships};
use bdrmap_core::{
    snapshot, Batch, BdrmapConfig, IncrementalEngine, Input, Journal, JournalCheckpoint,
    JournalConfig,
};
use bdrmap_dataplane::DataPlane;
use bdrmap_obs::Registry;
use bdrmap_probe::{run_traces, EngineConfig, ProbeEngine, RunOptions, TraceCollection};
use bdrmap_topo::{generate, AsKind, Internet, TopoConfig};
use bdrmap_types::{Asn, ChaosFsConfig, ChaosVfs, FsFaultBudget, Vfs};
use std::path::PathBuf;
use std::sync::Arc;

/// Per-packet virtual pacing of `EngineConfig::default()` (100 pps).
const TICK_US: u64 = 1_000_000 / 100;

fn build_input(net: &Internet, dp: &DataPlane) -> Input {
    let mut peers: Vec<Asn> = net
        .graph
        .ases()
        .filter(|&a| net.as_info(a).kind == AsKind::Tier1)
        .collect();
    peers.extend(
        net.graph
            .ases()
            .filter(|&a| net.as_info(a).kind == AsKind::Stub)
            .take(6),
    );
    let view = CollectorView::collect(dp.oracle(), &peers);
    let rels = InferredRelationships::infer(&view);
    Input {
        view,
        rels,
        ixp_prefixes: net.ixps.iter().map(|x| x.lan).collect(),
        rir: net.rir.clone(),
        vp_asns: net.vp_siblings.clone(),
    }
}

fn probed_world(seed: u64) -> (Arc<DataPlane>, Input, TraceCollection) {
    let net = generate(&TopoConfig::tiny(seed));
    let dp = Arc::new(DataPlane::new(net));
    let input = build_input(dp.internet(), &dp);
    let vp = dp.internet().vps[0].addr;
    let engine = ProbeEngine::new(Arc::clone(&dp), vp, EngineConfig::default());
    let targets = bdrmap_probe::target_blocks(&input.view, &input.vp_asns);
    let ip2as = input.ip2as_for_probing();
    let coll = run_traces(&engine, &targets, RunOptions::default(), |a| {
        ip2as.is_external(a)
    });
    (dp, input, coll)
}

fn fresh_engine(dp: &Arc<DataPlane>) -> ProbeEngine {
    let vp = dp.internet().vps[0].addr;
    ProbeEngine::new(Arc::clone(dp), vp, EngineConfig::default())
}

/// From-scratch reference: `run_stages` with a fresh engine over the
/// engine's cumulative collection.
fn shadow_bytes(
    dp: &Arc<DataPlane>,
    input: &Input,
    cfg: &BdrmapConfig,
    coll: TraceCollection,
) -> Vec<u8> {
    let engine = fresh_engine(dp);
    snapshot::encode(&bdrmap_core::run_stages(&engine, input, cfg, coll).map).unwrap()
}

fn tmp(tag: &str, n: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bdrmap-journal-it-{tag}-{n}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn open(dir: &PathBuf) -> (Journal, bdrmap_core::journal::Recovered) {
    Journal::open_with(dir, Vfs::real(), Registry::new(), JournalConfig::default()).unwrap()
}

/// Kill the watch loop after two journaled passes, recover by tail
/// replay, and the recovered engine's next map is byte-identical both
/// to an uninterrupted incremental run and to a from-scratch rebuild —
/// at alias parallelism 1 and 4.
#[test]
fn replay_after_kill_is_byte_identical_at_parallelism_1_and_4() {
    let (dp, input, coll) = probed_world(313);
    let pool = coll.traces;
    assert!(pool.len() >= 6, "need a few traces to batch");
    let third = pool.len() / 3;
    let batches = [
        Batch::upserts(pool[..third].to_vec()),
        Batch::upserts(pool[third..2 * third].to_vec()),
        Batch::upserts(pool[2 * third..].to_vec()),
    ];

    for &par in &[1usize, 4] {
        let cfg = BdrmapConfig {
            alias_parallelism: par,
            ..BdrmapConfig::default()
        };
        let dir = tmp("replay", par as u64);
        let (mut journal, rec) = open(&dir);
        assert!(rec.checkpoint.is_none() && rec.tail.is_empty());
        let prober = fresh_engine(&dp);
        let mut engine = IncrementalEngine::new(cfg, TICK_US);
        for b in &batches[..2] {
            journal.append(7, b).unwrap();
            engine.apply(&prober, &input, b.clone());
        }
        // Kill: both the journal handle and the engine die mid-run.
        drop(journal);
        drop(engine);

        let (mut journal, rec) = open(&dir);
        assert_eq!(rec.tail.len(), 2, "both acked batches must replay");
        assert_eq!(journal.lsn(), 2);
        let mut engine = IncrementalEngine::new(cfg, TICK_US);
        for r in &rec.tail {
            engine.apply(&prober, &input, r.batch.clone());
        }

        // The recovered engine's next pass, against both references.
        journal.append(7, &batches[2]).unwrap();
        let (map, report) = engine.apply(&prober, &input, batches[2].clone());
        assert_eq!(report.pass, 3);
        let bytes = snapshot::encode(&map).unwrap();
        let mut uninterrupted = IncrementalEngine::new(cfg, TICK_US);
        let mut reference = None;
        for b in &batches {
            reference = Some(uninterrupted.apply(&prober, &input, b.clone()).0);
        }
        assert_eq!(
            bytes,
            snapshot::encode(&reference.unwrap()).unwrap(),
            "recovered pass 3 diverged from the uninterrupted run at parallelism {par}"
        );
        assert_eq!(
            bytes,
            shadow_bytes(&dp, &input, &cfg, engine.shadow_collection()),
            "recovered pass 3 diverged from the from-scratch rebuild at parallelism {par}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A torn checkpoint rename is detected at compaction time, leaves no
/// evidence behind, and recovery falls back to the previous checkpoint
/// plus a tail replay — byte-identically.
#[test]
fn torn_compaction_falls_back_to_previous_checkpoint() {
    let (dp, input, coll) = probed_world(509);
    let pool = coll.traces;
    assert!(pool.len() >= 6, "need a few traces to batch");
    let third = pool.len() / 3;
    let b1 = Batch::upserts(pool[..third].to_vec());
    let b2 = Batch::upserts(pool[third..2 * third].to_vec());
    let b3 = Batch::upserts(pool[2 * third..].to_vec());
    let cfg = BdrmapConfig::default();
    let dir = tmp("torn-ckpt", 0);

    let (mut journal, _) = open(&dir);
    let prober = fresh_engine(&dp);
    let mut engine = IncrementalEngine::new(cfg, TICK_US);
    for b in [&b1, &b2] {
        journal.append(7, b).unwrap();
        engine.apply(&prober, &input, b.clone());
    }
    journal
        .checkpoint(&JournalCheckpoint {
            lsn: journal.lsn(),
            generation: 2,
            pass: engine.passes(),
            entries: engine.checkpoint_entries(),
        })
        .unwrap();
    journal.append(7, &b3).unwrap();
    engine.apply(&prober, &input, b3.clone());

    // Compaction through a seam whose one fault is a silent torn
    // rename: the read-back verify must catch it and fail loudly.
    let chaos = ChaosVfs::new(ChaosFsConfig {
        seed: 11,
        fault_rate: 1.0,
        budget: FsFaultBudget {
            torn_rename: 1,
            ..Default::default()
        },
    });
    let (mut cj, _) =
        Journal::open_with(&dir, chaos.vfs(), Registry::new(), JournalConfig::default()).unwrap();
    let torn = JournalCheckpoint {
        lsn: cj.lsn(),
        generation: 3,
        pass: 3,
        entries: engine.checkpoint_entries(),
    };
    assert!(
        cj.checkpoint(&torn).is_err(),
        "a torn checkpoint rename must not pass verification"
    );
    drop(journal);
    drop(engine);

    // Recovery: the pass-2 checkpoint survives, pass 3 replays.
    let (journal, rec) = open(&dir);
    let c = rec.checkpoint.expect("previous checkpoint must survive");
    assert_eq!((c.lsn, c.pass, c.generation), (2, 2, 2));
    assert_eq!(rec.tail.len(), 1);
    assert_eq!(journal.lsn(), 3);
    let (mut engine, _) = IncrementalEngine::restore(cfg, TICK_US, &prober, &input, &c.entries, 2);
    for r in &rec.tail {
        engine.apply(&prober, &input, r.batch.clone());
    }
    assert_eq!(engine.passes(), 3);

    // The recovered engine's next map (a retraction, to stress the
    // non-trivial path) is byte-identical to an uninterrupted run.
    let retract = Batch {
        upserts: Vec::new(),
        retractions: vec![b1.upserts[0].dst],
    };
    let (map, _) = engine.apply(&prober, &input, retract.clone());
    let mut uninterrupted = IncrementalEngine::new(cfg, TICK_US);
    let mut reference = None;
    for b in [&b1, &b2, &b3, &retract] {
        reference = Some(uninterrupted.apply(&prober, &input, b.clone()).0);
    }
    assert_eq!(
        snapshot::encode(&map).unwrap(),
        snapshot::encode(&reference.unwrap()).unwrap(),
        "post-recovery retraction diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--expire-after` boundary semantics: a trace refreshed at pass P is
/// alive through pass P+n-1, expires exactly when the clock reads
/// P+n, a refresh resets its clock, and retraction removes it from
/// both the checkpoint image and the expiry clock.
#[test]
fn expire_after_boundaries_refresh_and_retraction() {
    let (dp, input, coll) = probed_world(601);
    let pool = coll.traces;
    assert!(pool.len() >= 4, "need a few traces to expire");
    let cfg = BdrmapConfig::default();
    let prober = fresh_engine(&dp);
    let mut engine = IncrementalEngine::new(cfg, TICK_US);
    let (a, rest) = pool.split_at(2);

    engine.apply(&prober, &input, Batch::upserts(a.to_vec())); // pass 1
    assert!(
        engine.expired(1).is_empty(),
        "nothing expires inside its own pass"
    );

    engine.apply(&prober, &input, Batch::upserts(rest.to_vec())); // pass 2
    let mut want: Vec<_> = a.iter().map(|t| t.dst).collect();
    want.sort_unstable();
    // Exactly-n boundary: clock 2 - refresh 1 == 1.
    assert_eq!(engine.expired(1), want);
    assert!(engine.expired(2).is_empty());

    // A refresh resets the clock: only the unrefreshed half of the
    // first batch is stale two passes later.
    engine.apply(&prober, &input, Batch::upserts(vec![a[0].clone()])); // pass 3
    assert_eq!(engine.expired(2), vec![a[1].dst]);
    let entries = engine.checkpoint_entries();
    assert_eq!(
        entries.iter().find(|(t, _)| t.dst == a[0].dst).unwrap().1,
        3,
        "checkpoint entries must carry the refreshed pass"
    );

    // Retracting the expired set is byte-identical to a from-scratch
    // rebuild without those traces, and erases them from the
    // checkpoint image and the expiry clock alike.
    let batch = Batch {
        upserts: Vec::new(),
        retractions: engine.expired(2),
    };
    let (map, report) = engine.apply(&prober, &input, batch); // pass 4
    assert_eq!(report.retracted, 1);
    assert_eq!(
        snapshot::encode(&map).unwrap(),
        shadow_bytes(&dp, &input, &cfg, engine.shadow_collection()),
        "retraction of expired traces diverged from the rebuild"
    );
    assert!(engine
        .checkpoint_entries()
        .iter()
        .all(|(t, _)| t.dst != a[1].dst));
    assert!(engine.expired(1).iter().all(|&d| d != a[1].dst));
}
